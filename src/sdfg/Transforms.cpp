//===- sdfg/Transforms.cpp - NestDim, MapFission, extraction ------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sdfg/Transforms.h"

#include "frontend/SemanticAnalysis.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace stencilflow;
using namespace stencilflow::sdfg;

namespace {

/// Finds (or creates) an access node for \p Data outside any scope.
AccessNode *findOrAddAccess(State &S, const std::set<int> &ScopeNodes,
                            const std::string &Data) {
  for (const std::unique_ptr<Node> &N : S.nodes())
    if (auto *Access = dyn_cast<AccessNode>(N.get()))
      if (Access->data() == Data && !ScopeNodes.count(Access->id()))
        return const_cast<AccessNode *>(Access);
  return S.addAccess(Data);
}

/// The containers read by library node \p LibId within the scope of
/// \p EntryId: from in-edges of the node (scope-internal access nodes or
/// annotated edges from the map entry).
std::vector<std::string> libraryInputs(const State &S, int LibId,
                                       int EntryId) {
  std::vector<std::string> Inputs;
  for (const Memlet &Edge : S.edges()) {
    if (Edge.Dst != LibId)
      continue;
    std::string Data;
    if (Edge.Src == EntryId) {
      Data = Edge.Data;
    } else if (const auto *Access =
                   dyn_cast<AccessNode>(S.findNode(Edge.Src))) {
      Data = Access->data();
    }
    if (!Data.empty() &&
        std::find(Inputs.begin(), Inputs.end(), Data) == Inputs.end())
      Inputs.push_back(Data);
  }
  return Inputs;
}

/// The container written by library node \p LibId (through a
/// scope-internal access node or an annotated edge to the map exit).
std::string libraryOutput(const State &S, int LibId, int ExitId) {
  for (const Memlet &Edge : S.edges()) {
    if (Edge.Src != LibId)
      continue;
    if (Edge.Dst == ExitId && !Edge.Data.empty())
      return Edge.Data;
    if (const auto *Access = dyn_cast<AccessNode>(S.findNode(Edge.Dst)))
      return Access->data();
  }
  return "";
}

/// Raises the rank of \p Stencil: accesses to containers spanning
/// \p DimIndex get a 0 offset component inserted at the dimension's
/// position among the container's spanned dimensions.
void raiseStencilRank(SDFG &G, StencilNode &Stencil, size_t DimIndex) {
  auto rewrite = [&](ExprPtr &E) {
    auto *Access = dyn_cast<FieldAccessExpr>(E.get());
    if (!Access)
      return;
    const Container *C = G.findContainer(Access->field());
    if (!C || DimIndex >= C->DimensionMask.size() ||
        !C->DimensionMask[DimIndex])
      return;
    size_t Position = 0;
    for (size_t Dim = 0; Dim != DimIndex; ++Dim)
      if (C->DimensionMask[Dim])
        ++Position;
    Offset Off = Access->offset();
    Off.insert(Off.begin() + static_cast<long>(Position), 0);
    Access->setOffset(std::move(Off));
  };
  for (Assignment &Stmt : Stencil.Code.Statements)
    walkExprMutable(Stmt.Value, rewrite);
  // Access metadata is recovered by semantic analysis after extraction.
  Stencil.Accesses.clear();
}

} // namespace

Error sdfg::applyMapFission(SDFG &G, size_t StateIndex, int MapEntryId,
                            size_t DimIndex) {
  if (StateIndex >= G.states().size())
    return makeError("applyMapFission: state index out of range");
  State &S = G.states()[StateIndex];
  Node *EntryRaw = S.findNode(MapEntryId);
  if (!EntryRaw || !isa<MapEntryNode>(EntryRaw))
    return makeError("applyMapFission: not a map entry node");
  auto *Entry = cast<MapEntryNode>(EntryRaw);
  int ExitId = Entry->exitId();
  std::string Param = Entry->param();
  int64_t Begin = Entry->begin(), End = Entry->end();

  std::vector<int> Contents = S.scopeContents(MapEntryId);
  std::set<int> ScopeNodes(Contents.begin(), Contents.end());
  ScopeNodes.insert(MapEntryId);
  ScopeNodes.insert(ExitId);

  // Collect library nodes in dataflow order within the scope and the
  // transient access nodes between them.
  std::vector<int> LibraryIds;
  for (int Id : Contents)
    if (isa<StencilLibraryNode>(S.findNode(Id)))
      LibraryIds.push_back(Id);
  if (LibraryIds.empty())
    return makeError("applyMapFission: map contains no stencil nodes");

  // Record each library node's reads/writes before surgery.
  struct Piece {
    StencilNode Payload;
    std::vector<std::string> Inputs;
    std::string Output;
  };
  std::vector<Piece> Pieces;
  for (int LibId : LibraryIds) {
    Piece P;
    P.Payload = cast<StencilLibraryNode>(S.findNode(LibId))->stencil().clone();
    P.Inputs = libraryInputs(S, LibId, MapEntryId);
    P.Output = libraryOutput(S, LibId, ExitId);
    if (P.Output.empty())
      return makeError("applyMapFission: stencil '" + P.Payload.Name +
                       "' writes no container");
    Pieces.push_back(std::move(P));
  }

  // Scope-internal transients now cross scope boundaries: they gain the
  // map's dimension (each map iteration wrote one slice; the temporary
  // materializes all of them).
  for (int Id : Contents) {
    const auto *Access = dyn_cast<AccessNode>(S.findNode(Id));
    if (!Access)
      continue;
    Container *C = G.findContainer(Access->data());
    if (C && C->Transient && DimIndex < C->DimensionMask.size())
      C->DimensionMask[DimIndex] = true;
  }

  // Remove the old scope (entry, exit, and everything inside).
  for (int Id : Contents)
    S.removeNode(Id);
  S.removeNode(MapEntryId);
  S.removeNode(ExitId);

  // Rebuild: one map per stencil, fed from and writing to access nodes
  // outside any scope.
  std::set<int> Outside; // Freshly created nodes are all outside scopes.
  for (const Piece &P : Pieces) {
    auto [NewEntry, NewExit] = S.addMap(Param, Begin, End);
    StencilLibraryNode *Lib = S.addStencil(P.Payload.clone());
    for (const std::string &Input : P.Inputs) {
      AccessNode *In = findOrAddAccess(S, Outside, Input);
      S.connect(In, NewEntry, Input);
      S.connect(NewEntry, Lib, Input);
    }
    AccessNode *Out = findOrAddAccess(S, Outside, P.Output);
    S.connect(Lib, NewExit, P.Output);
    S.connect(NewExit, Out, P.Output);
  }
  return G.validate();
}

Error sdfg::applyNestDim(SDFG &G, size_t StateIndex, int MapEntryId,
                         size_t DimIndex) {
  if (StateIndex >= G.states().size())
    return makeError("applyNestDim: state index out of range");
  State &S = G.states()[StateIndex];
  Node *EntryRaw = S.findNode(MapEntryId);
  if (!EntryRaw || !isa<MapEntryNode>(EntryRaw))
    return makeError("applyNestDim: not a map entry node");
  auto *Entry = cast<MapEntryNode>(EntryRaw);
  int ExitId = Entry->exitId();

  std::vector<int> Contents = S.scopeContents(MapEntryId);
  std::vector<int> LibraryIds;
  for (int Id : Contents)
    if (isa<StencilLibraryNode>(S.findNode(Id)))
      LibraryIds.push_back(Id);
  if (LibraryIds.size() != 1)
    return makeError(formatString(
        "applyNestDim: map must contain exactly one stencil node, found "
        "%zu (apply MapFission first)",
        LibraryIds.size()));

  auto *Lib = cast<StencilLibraryNode>(S.findNode(LibraryIds[0]));
  std::vector<std::string> Inputs = libraryInputs(S, Lib->id(), MapEntryId);
  std::string Output = libraryOutput(S, Lib->id(), ExitId);
  if (Output.empty())
    return makeError("applyNestDim: stencil writes no container");

  // The output container must span the nested dimension (the map wrote
  // one slice per iteration).
  if (Container *C = G.findContainer(Output))
    if (DimIndex < C->DimensionMask.size())
      C->DimensionMask[DimIndex] = true;

  raiseStencilRank(G, Lib->stencil(), DimIndex);

  // Splice the library node out of the scope: inputs connect directly,
  // the output flows to the exit's successors.
  StencilNode Payload = Lib->stencil().clone();
  std::vector<int> ExitSuccs = S.successors(ExitId);
  S.removeNode(Lib->id());
  S.removeNode(MapEntryId);
  S.removeNode(ExitId);
  std::set<int> Outside;
  StencilLibraryNode *NewLib = S.addStencil(std::move(Payload));
  for (const std::string &Input : Inputs) {
    AccessNode *In = findOrAddAccess(S, Outside, Input);
    S.connect(In, NewLib, Input);
  }
  // Reuse the old output access node when it survived; otherwise make one.
  AccessNode *Out = nullptr;
  for (int Succ : ExitSuccs)
    if (Node *N = S.findNode(Succ))
      if (auto *Access = dyn_cast<AccessNode>(N))
        if (Access->data() == Output)
          Out = const_cast<AccessNode *>(Access);
  if (!Out)
    Out = findOrAddAccess(S, Outside, Output);
  S.connect(NewLib, Out, Output);
  return G.validate();
}

Error sdfg::canonicalize(SDFG &G) {
  std::vector<std::string> DimNames =
      StencilProgram::dimensionNames(G.Domain.rank());
  auto dimIndexOf = [&](const std::string &Param) -> int {
    for (size_t Dim = 0; Dim != DimNames.size(); ++Dim)
      if (DimNames[Dim] == Param)
        return static_cast<int>(Dim);
    return -1;
  };

  for (size_t StateIndex = 0; StateIndex != G.states().size();
       ++StateIndex) {
    while (true) {
      State &S = G.states()[StateIndex];
      MapEntryNode *Target = nullptr;
      for (const std::unique_ptr<Node> &N : S.nodes())
        if (auto *Map = dyn_cast<MapEntryNode>(N.get())) {
          Target = const_cast<MapEntryNode *>(Map);
          break;
        }
      if (!Target)
        break;
      int DimIndex = dimIndexOf(Target->param());
      if (DimIndex < 0)
        return makeError("canonicalize: map parameter '" + Target->param() +
                         "' is not a domain dimension");
      // Count library nodes in the scope to pick the transformation.
      size_t LibraryCount = 0;
      for (int Id : S.scopeContents(Target->id()))
        LibraryCount += isa<StencilLibraryNode>(S.findNode(Id));
      Error Err =
          LibraryCount > 1
              ? applyMapFission(G, StateIndex, Target->id(),
                                static_cast<size_t>(DimIndex))
              : applyNestDim(G, StateIndex, Target->id(),
                             static_cast<size_t>(DimIndex));
      if (Err)
        return Err;
    }
  }
  return Error::success();
}

Expected<StencilProgram> sdfg::extractStencilProgram(const SDFG &G) {
  StencilProgram Program;
  Program.Name = G.name();
  Program.IterationSpace = G.Domain;

  // Gather the stencil payloads and the container each one writes.
  std::set<std::string> Written;
  for (const State &S : G.states()) {
    for (const std::unique_ptr<Node> &N : S.nodes()) {
      const auto *Lib = dyn_cast<StencilLibraryNode>(N.get());
      if (!Lib)
        continue;
      // Output container: the access node the stencil writes.
      std::string Output;
      for (int Succ : S.successors(Lib->id()))
        if (const auto *Access = dyn_cast<AccessNode>(S.findNode(Succ)))
          Output = Access->data();
      if (Output.empty())
        return makeError("extraction: stencil '" + Lib->stencil().Name +
                         "' writes no container");
      StencilNode Node = Lib->stencil().clone();
      // Canonical form: the node and its final statement are named after
      // the container it produces.
      if (Node.Name != Output) {
        assert(!Node.Code.Statements.empty());
        Node.Code.Statements.back().Target = Output;
        Node.Name = Output;
      }
      Written.insert(Output);
      Program.Nodes.push_back(std::move(Node));
    }
  }

  // Containers never written by a stencil are program inputs; give them a
  // deterministic data source derived from the name.
  for (const Container &C : G.containers()) {
    if (Written.count(C.Name) || C.Kind == ContainerKind::Stream)
      continue;
    Field Input;
    Input.Name = C.Name;
    Input.Type = C.Type;
    Input.DimensionMask = C.DimensionMask.empty()
                              ? std::vector<bool>(G.Domain.rank(), true)
                              : C.DimensionMask;
    uint64_t Seed = 0;
    for (char Ch : C.Name)
      Seed = Seed * 131 + static_cast<uint64_t>(Ch);
    Input.Source = DataSource::random(Seed);
    Program.Inputs.push_back(std::move(Input));
  }

  // Non-transient written containers are program outputs.
  for (const Container &C : G.containers())
    if (Written.count(C.Name) && !C.Transient)
      Program.Outputs.push_back(C.Name);

  if (Error Err = analyzeProgram(Program)) {
    // Fall back: if no non-transient outputs exist, export the sinks.
    if (!Program.Outputs.empty())
      return Err;
    for (StencilNode &Node : Program.Nodes)
      if (Error NodeErr = analyzeNode(Program, Node))
        return NodeErr;
    for (const StencilNode &Node : Program.Nodes)
      if (Program.consumersOf(Node.Name).empty())
        Program.Outputs.push_back(Node.Name);
    if (Error RetryErr = Program.validate())
      return RetryErr;
  }
  return Program;
}
