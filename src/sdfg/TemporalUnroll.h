//===- sdfg/TemporalUnroll.h - Temporal blocking unroll -----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Temporal blocking as a graph transformation: unroll T timesteps of an
/// iterative stencil program into one T-deep dataflow chain, so T
/// generations flow through the chip per off-chip round trip (Zohouri et
/// al., "Combined Spatial and Temporal Blocking ..."; paper Sec. VIII-C
/// notes the equivalence with long chained programs).
///
/// Each `IterationBinding` output -> input feedback edge through off-chip
/// memory is rewired into an on-chip channel: step s > 0 reads the
/// renamed copy of step s-1's producer instead of the bound input field.
/// The final step keeps the original node names, so `Outputs` (and the
/// program's `TimeLoop`) are unchanged and the result composes:
/// iterating the unrolled program K times computes T*K generations.
///
/// Legality rules (violations are typed `ErrorCode::InvalidInput`):
///  - T >= 1; T > 1 requires at least one binding;
///  - every binding source is a stencil node listed in `Outputs` and does
///    not shrink its output;
///  - every binding target is a full-rank input field of the source's
///    element type, bound at most once.
///
/// The unrolled program is re-analyzed and re-validated like any
/// hand-written chain, so the existing buffer-sizing and deadlock
/// analyses apply unchanged. `iterateReference` is the parity oracle:
/// running it for T steps is bit-identical to evaluating the unrolled
/// program once.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SDFG_TEMPORALUNROLL_H
#define STENCILFLOW_SDFG_TEMPORALUNROLL_H

#include "ir/StencilProgram.h"
#include "support/Error.h"

namespace stencilflow {
namespace sdfg {

/// Unrolls \p Steps timesteps of \p Program into one chained program,
/// rewiring the \p Bindings feedback edges into on-chip channels.
/// Intermediate copies are renamed (`<node>__t<s>`); copies of outputs
/// that feed nothing are pruned. The result carries \p Bindings as its
/// `TimeLoop` and passes `validate()`.
Expected<StencilProgram>
unrollTimeSteps(const StencilProgram &Program,
                const std::vector<IterationBinding> &Bindings, int Steps);

/// Convenience overload using the program's own `TimeLoop` bindings.
Expected<StencilProgram> unrollTimeSteps(const StencilProgram &Program,
                                         int Steps);

} // namespace sdfg
} // namespace stencilflow

#endif // STENCILFLOW_SDFG_TEMPORALUNROLL_H
