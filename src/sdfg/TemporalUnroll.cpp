//===- sdfg/TemporalUnroll.cpp - Temporal blocking unroll --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sdfg/TemporalUnroll.h"

#include "frontend/SemanticAnalysis.h"
#include "support/StringUtils.h"

#include <map>
#include <set>
#include <string>
#include <vector>

using namespace stencilflow;

static Error validateBindings(const StencilProgram &Program,
                              const std::vector<IterationBinding> &Bindings) {
  std::set<std::string> BoundInputs;
  for (const IterationBinding &Binding : Bindings) {
    const StencilNode *Producer = Program.findNode(Binding.Output);
    if (!Producer || !Program.isProgramOutput(Binding.Output))
      return makeError(ErrorCode::InvalidInput,
                       "iteration binding source '" + Binding.Output +
                           "' is not a program output");
    if (Producer->ShrinkOutput)
      return makeError(ErrorCode::InvalidInput,
                       "iteration binding source '" + Binding.Output +
                           "' shrinks its output and cannot be fed back");
    const Field *Consumer = Program.findInput(Binding.Input);
    if (!Consumer)
      return makeError(ErrorCode::InvalidInput,
                       "iteration binding target '" + Binding.Input +
                           "' is not a program input");
    if (!Consumer->isFullRank())
      return makeError(ErrorCode::InvalidInput,
                       "iteration binding target '" + Binding.Input +
                           "' must be a full-rank field");
    if (Consumer->Type != Producer->Type)
      return makeError(ErrorCode::InvalidInput,
                       "iteration binding '" + Binding.Output + "' -> '" +
                           Binding.Input + "' mixes element types");
    if (!BoundInputs.insert(Binding.Input).second)
      return makeError(ErrorCode::InvalidInput,
                       "iteration binding target '" + Binding.Input +
                           "' is bound more than once");
  }
  return Error::success();
}

/// Renames every field reference of \p Node according to \p Subst: the
/// access lists, the boundary-condition keys, and the code block's field
/// accesses. \p NewName replaces the node's own name (and the final
/// statement's target).
static void renameNodeFields(StencilNode &Node, const std::string &NewName,
                             const std::map<std::string, std::string> &Subst) {
  for (Assignment &St : Node.Code.Statements) {
    if (St.Target == Node.Name)
      St.Target = NewName;
    walkExprMutable(St.Value, [&](ExprPtr &E) {
      if (auto *FA = dyn_cast<FieldAccessExpr>(E.get())) {
        auto It = Subst.find(FA->field());
        if (It != Subst.end())
          FA->setField(It->second);
      }
    });
  }
  for (FieldAccesses &FA : Node.Accesses) {
    auto It = Subst.find(FA.Field);
    if (It != Subst.end())
      FA.Field = It->second;
  }
  std::map<std::string, BoundaryCondition> NewBoundaries;
  for (auto &[FieldName, Boundary] : Node.Boundaries) {
    auto It = Subst.find(FieldName);
    NewBoundaries.emplace(It == Subst.end() ? FieldName : It->second,
                          Boundary);
  }
  Node.Boundaries = std::move(NewBoundaries);
  Node.Name = NewName;
}

Expected<StencilProgram>
stencilflow::sdfg::unrollTimeSteps(const StencilProgram &Program,
                                   const std::vector<IterationBinding> &Bindings,
                                   int Steps) {
  if (Steps < 1)
    return makeError(ErrorCode::InvalidInput,
                     formatString("temporal degree must be positive, got %d",
                                  Steps));
  if (Error Err = validateBindings(Program, Bindings))
    return Err;

  StencilProgram Result = Program.clone();
  Result.TimeLoop = Bindings;
  if (Steps == 1)
    return Result;
  if (Bindings.empty())
    return makeError(ErrorCode::InvalidInput,
                     "temporal unrolling requires time-loop bindings "
                     "(program '" +
                         Program.Name + "' has none)");

  // Names that renamed copies must avoid: every field name and every local
  // temporary (analysis rejects locals that shadow fields).
  std::set<std::string> UsedNames;
  for (const Field &Input : Program.Inputs)
    UsedNames.insert(Input.Name);
  for (const StencilNode &Node : Program.Nodes) {
    UsedNames.insert(Node.Name);
    for (const Assignment &St : Node.Code.Statements)
      UsedNames.insert(St.Target);
  }

  // Step s of the chain names node N `N__t<s>`; the final step keeps the
  // original names so Outputs and the TimeLoop boundary are unchanged.
  std::vector<std::map<std::string, std::string>> StepNames(
      static_cast<size_t>(Steps));
  for (int Step = 0; Step != Steps; ++Step) {
    for (const StencilNode &Node : Program.Nodes) {
      if (Step + 1 == Steps) {
        StepNames[Step][Node.Name] = Node.Name;
        continue;
      }
      std::string Candidate = formatString("%s__t%d", Node.Name.c_str(), Step);
      while (!UsedNames.insert(Candidate).second)
        Candidate += "_";
      StepNames[Step][Node.Name] = Candidate;
    }
  }

  Result.Nodes.clear();
  Result.Nodes.reserve(Program.Nodes.size() * static_cast<size_t>(Steps));
  for (int Step = 0; Step != Steps; ++Step) {
    // Reads of sibling nodes stay within the step; reads of a bound input
    // become the on-chip channel from the previous step's producer.
    std::map<std::string, std::string> Subst = StepNames[Step];
    if (Step > 0)
      for (const IterationBinding &Binding : Bindings)
        Subst[Binding.Input] = StepNames[Step - 1].at(Binding.Output);
    for (const StencilNode &Node : Program.Nodes) {
      StencilNode Copy = Node.clone();
      renameNodeFields(Copy, StepNames[Step].at(Node.Name), Subst);
      Result.Nodes.push_back(std::move(Copy));
    }
  }

  // Prune copies that feed nothing: an output that is not a binding source
  // only matters in the final step; its earlier copies are dead. Keep
  // exactly the nodes reachable backwards from the program outputs.
  std::set<std::string> Live;
  std::vector<std::string> Worklist(Result.Outputs.begin(),
                                    Result.Outputs.end());
  while (!Worklist.empty()) {
    std::string Name = Worklist.back();
    Worklist.pop_back();
    if (!Live.insert(Name).second)
      continue;
    if (const StencilNode *Node = Result.findNode(Name))
      for (const FieldAccesses &FA : Node->Accesses)
        Worklist.push_back(FA.Field);
  }
  std::vector<StencilNode> Kept;
  Kept.reserve(Result.Nodes.size());
  for (StencilNode &Node : Result.Nodes)
    if (Live.count(Node.Name))
      Kept.push_back(std::move(Node));
  Result.Nodes = std::move(Kept);

  // Verified like any hand-written chain: re-run semantic analysis (which
  // rebuilds the access lists) and full validation.
  if (Error Err = analyzeProgram(Result))
    return Err.addContext(
        formatString("unrolling %d timesteps of program '%s'", Steps,
                     Program.Name.c_str()));
  if (Error Err = Result.validate())
    return Err.addContext(
        formatString("unrolling %d timesteps of program '%s'", Steps,
                     Program.Name.c_str()));
  return Result;
}

Expected<StencilProgram>
stencilflow::sdfg::unrollTimeSteps(const StencilProgram &Program, int Steps) {
  return unrollTimeSteps(Program, Program.TimeLoop, Steps);
}
