//===- sdfg/StencilFusion.h - Spatial stencil fusion --------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The StencilFusion transformation (paper Sec. V-B). Unlike load/store
/// fusion, spatial fusion does not change the schedule — all operators
/// already run fully pipelined in parallel. Its effects are:
///
///  - the critical path through the program shrinks when the fused nodes
///    lie on it (initialization phases combine instead of chaining);
///  - internal buffers for the same input field merge;
///  - smaller delay buffers combine into fewer, larger ones;
///  - combined code sections expose more common subexpressions;
///  - coarser stencil nodes improve the useful-logic ratio.
///
/// Fusion conditions (the paper's heuristics): the two stencils operate on
/// the same data shape with the same boundary-condition definitions, are
/// connected by one data container u with deg(u) = 2 (one producer, one
/// consumer), and u is not used elsewhere (so it can be removed without an
/// extra off-chip write). Additionally, inlining a producer at a non-zero
/// offset is only exact when the producer's inputs use constant boundary
/// conditions (copy boundaries are anchored to the shifted center).
///
/// Boundary semantics: fusing introduces redundant computation at the
/// domain boundary — where the consumer would have read its boundary
/// value for an out-of-bounds producer element, the fused node instead
/// *computes through the halo* (evaluating the producer's formula at the
/// virtual out-of-domain point, with the producer's own boundary handling
/// on the raw inputs). This matches how spatially fused pipelines behave
/// in hardware. Consequently, fused and unfused programs agree exactly on
/// the interior region (all transitive accesses in bounds) and may differ
/// on the boundary fringe; the unit tests pin down both behaviours.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SDFG_STENCILFUSION_H
#define STENCILFLOW_SDFG_STENCILFUSION_H

#include "ir/StencilProgram.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace stencilflow {

/// Checks whether the node producing \p Producer can be fused into its
/// consumer. Returns the consumer's name, or an error explaining which
/// condition fails.
Expected<std::string> canFuseInto(const StencilProgram &Program,
                                  const std::string &Producer);

/// Fuses \p Producer into its single consumer: the producer's statements
/// are instantiated once per offset at which the consumer reads it, with
/// all field accesses shifted accordingly, and the producer node (and its
/// connecting container) is removed. The program remains analyzed/valid.
Error fusePair(StencilProgram &Program, const std::string &Producer);

/// Summary of an aggressive fusion pass.
struct FusionReport {
  int FusedPairs = 0;
  std::vector<std::string> Log;
};

/// Aggressively fuses until no legal pair remains (the setting used for
/// the paper's experiments: "we perform aggressive stencil fusion of input
/// programs").
Expected<FusionReport> fuseAllStencils(StencilProgram &Program);

/// Fuses at most \p MaxPairs legal pairs, in the same deterministic order
/// \c fuseAllStencils uses, then stops. \c MaxPairs = 0 is a no-op; a
/// large value degenerates to aggressive fusion. This is the fusion
/// "grouping" knob of the mapping autotuner (tuner/DesignSpace.h): level k
/// reproduces the first k steps of the aggressive pass, so every level is
/// a prefix of the same trajectory and levels are comparable.
Expected<FusionReport> fuseStencilsUpTo(StencilProgram &Program,
                                        int MaxPairs);

} // namespace stencilflow

#endif // STENCILFLOW_SDFG_STENCILFUSION_H
