//===- sdfg/StencilFusion.cpp - Spatial stencil fusion ------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sdfg/StencilFusion.h"

#include "frontend/SemanticAnalysis.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;

Expected<std::string> stencilflow::canFuseInto(const StencilProgram &Program,
                                               const std::string &Producer) {
  const StencilNode *ProducerNode = Program.findNode(Producer);
  if (!ProducerNode)
    return makeError("'" + Producer + "' is not a stencil node");

  // Condition: the connecting container has degree 2 — one producer and
  // exactly one consumer — and no other uses (in particular it is not a
  // program output, which would force an off-chip write).
  if (Program.isProgramOutput(Producer))
    return makeError("'" + Producer + "' is a program output");
  std::vector<size_t> Consumers = Program.consumersOf(Producer);
  if (Consumers.size() != 1)
    return makeError(formatString(
        "'%s' has %zu consumers (fusion requires exactly one)",
        Producer.c_str(), Consumers.size()));
  const StencilNode &ConsumerNode = Program.Nodes[Consumers[0]];

  // Condition: same data shape — all stencils here share the iteration
  // space by construction, but element types must match.
  if (ConsumerNode.Type != ProducerNode->Type)
    return makeError("'" + Producer + "' and '" + ConsumerNode.Name +
                     "' have different element types");

  // Condition: identical boundary-condition definitions on shared fields.
  for (const FieldAccesses &FA : ProducerNode->Accesses) {
    if (!ConsumerNode.accessesFor(FA.Field))
      continue;
    if (!(ProducerNode->boundaryFor(FA.Field) ==
          ConsumerNode.boundaryFor(FA.Field)))
      return makeError("'" + Producer + "' and '" + ConsumerNode.Name +
                       "' disagree on the boundary condition of '" +
                       FA.Field + "'");
  }

  // Condition: inlining at a shifted offset keeps semantics only for
  // constant boundary conditions (copy is anchored to the shifted
  // center).
  const FieldAccesses *ProducerAccesses =
      ConsumerNode.accessesFor(Producer);
  assert(ProducerAccesses && "consumer does not read the producer");

  // Condition: bounded code growth. The producer is instantiated once per
  // offset the consumer reads it at, so repeated fusion of deep chains
  // grows the code exponentially; stop when the fused block would become
  // unreasonably large (a compile-time/ALM blow-up on real hardware too).
  constexpr size_t MaxFusedStatements = 768;
  size_t FusedStatements = ConsumerNode.Code.Statements.size() +
                           ProducerAccesses->Offsets.size() *
                               ProducerNode->Code.Statements.size();
  if (FusedStatements > MaxFusedStatements)
    return makeError(formatString(
        "fusing '%s' would grow the consumer to %zu statements "
        "(limit %zu)",
        Producer.c_str(), FusedStatements, MaxFusedStatements));
  bool OnlyCenter =
      ProducerAccesses->Offsets.size() == 1 &&
      std::all_of(ProducerAccesses->Offsets[0].begin(),
                  ProducerAccesses->Offsets[0].end(),
                  [](int O) { return O == 0; });
  if (!OnlyCenter) {
    for (const auto &[Field, Boundary] : ProducerNode->Boundaries)
      if (Boundary.Kind == BoundaryKind::Copy)
        return makeError("'" + Producer +
                         "' uses a copy boundary on '" + Field +
                         "' and is read at a non-zero offset");
  }
  return ConsumerNode.Name;
}

namespace {

/// Shifts \p Off (given in the field's own rank) by the producer-read
/// offset \p Shift (full program rank), respecting the field's dimension
/// mask.
Offset shiftOffset(const Offset &Off, const Offset &Shift,
                   const std::vector<bool> &Mask) {
  Offset Result = Off;
  size_t Component = 0;
  for (size_t Dim = 0; Dim != Mask.size(); ++Dim) {
    if (!Mask[Dim])
      continue;
    Result[Component] += Shift[Dim];
    ++Component;
  }
  return Result;
}

} // namespace

Error stencilflow::fusePair(StencilProgram &Program,
                            const std::string &Producer) {
  Expected<std::string> Consumer = canFuseInto(Program, Producer);
  if (!Consumer)
    return Consumer.takeError();

  StencilNode &ProducerNode = *Program.findNode(Producer);
  StencilNode &ConsumerNode = *Program.findNode(*Consumer);
  const FieldAccesses *Reads = ConsumerNode.accessesFor(Producer);
  std::vector<Offset> Shifts = Reads->Offsets;

  // Instantiate the producer once per offset the consumer reads it at.
  std::vector<Assignment> NewStatements;
  std::vector<std::string> InstanceOutputs;
  for (size_t Instance = 0; Instance != Shifts.size(); ++Instance) {
    const Offset &Shift = Shifts[Instance];
    std::string Prefix =
        formatString("%s__f%zu__", Producer.c_str(), Instance);
    for (const Assignment &Stmt : ProducerNode.Code.Statements) {
      Assignment Copy = Stmt.clone();
      // Rename the target into the instance namespace.
      Copy.Target = Prefix + Copy.Target;
      // Rewrite the right-hand side: locals get the prefix, field accesses
      // are shifted by the consumer's read offset.
      walkExprMutable(Copy.Value, [&](ExprPtr &E) {
        if (auto *Ref = dyn_cast<LocalRefExpr>(E.get())) {
          Ref->setName(Prefix + Ref->name());
          return;
        }
        if (auto *Access = dyn_cast<FieldAccessExpr>(E.get())) {
          std::vector<bool> Mask =
              Program.fieldDimensionMask(Access->field());
          Access->setOffset(shiftOffset(Access->offset(), Shift, Mask));
        }
      });
      NewStatements.push_back(std::move(Copy));
    }
    InstanceOutputs.push_back(Prefix + Producer);
  }

  // Rewrite the consumer: references to the producer become references to
  // the instantiated outputs.
  for (Assignment &Stmt : ConsumerNode.Code.Statements) {
    walkExprMutable(Stmt.Value, [&](ExprPtr &E) {
      auto *Access = dyn_cast<FieldAccessExpr>(E.get());
      if (!Access || Access->field() != Producer)
        return;
      for (size_t Instance = 0; Instance != Shifts.size(); ++Instance) {
        if (Access->offset() == Shifts[Instance]) {
          E = std::make_unique<LocalRefExpr>(InstanceOutputs[Instance]);
          return;
        }
      }
      assert(false && "producer read at an unrecorded offset");
    });
    NewStatements.push_back(std::move(Stmt));
  }
  ConsumerNode.Code.Statements = std::move(NewStatements);

  // Merge boundary conditions: carry over the producer's for fields the
  // consumer did not previously read.
  ConsumerNode.Boundaries.erase(Producer);
  for (const auto &[Field, Boundary] : ProducerNode.Boundaries)
    ConsumerNode.Boundaries.emplace(Field, Boundary);

  // Remove the producer node (and with it the connecting container).
  int ProducerIndex = Program.nodeIndex(Producer);
  assert(ProducerIndex >= 0);
  Program.Nodes.erase(Program.Nodes.begin() + ProducerIndex);

  // Re-analyze the fused node; boundary declarations for fields that no
  // longer appear (fully folded away) would now be rejected, so drop them.
  StencilNode &Fused = *Program.findNode(*Consumer);
  if (Error Err = analyzeNode(Program, Fused))
    return Err;
  for (auto It = Fused.Boundaries.begin(); It != Fused.Boundaries.end();) {
    if (!Fused.accessesFor(It->first))
      It = Fused.Boundaries.erase(It);
    else
      ++It;
  }
  return Program.validate();
}

Expected<FusionReport>
stencilflow::fuseAllStencils(StencilProgram &Program) {
  return fuseStencilsUpTo(Program,
                          static_cast<int>(Program.Nodes.size()) + 1);
}

Expected<FusionReport>
stencilflow::fuseStencilsUpTo(StencilProgram &Program, int MaxPairs) {
  FusionReport Report;
  bool Changed = true;
  while (Changed && Report.FusedPairs < MaxPairs) {
    Changed = false;
    for (const StencilNode &Node : Program.Nodes) {
      Expected<std::string> Consumer = canFuseInto(Program, Node.Name);
      if (!Consumer)
        continue;
      std::string Producer = Node.Name;
      if (Error Err = fusePair(Program, Producer))
        return Err;
      Report.Log.push_back("fused '" + Producer + "' into '" + *Consumer +
                           "'");
      ++Report.FusedPairs;
      Changed = true;
      break; // Node list mutated; restart the scan.
    }
  }
  return Report;
}
