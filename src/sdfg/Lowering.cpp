//===- sdfg/Lowering.cpp - Program -> SDFG and library-node expansion ---------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sdfg/Lowering.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;
using namespace stencilflow::sdfg;

namespace {

/// Stream container name for the edge Source -> Consumer.
std::string streamName(const std::string &Source,
                       const std::string &Consumer) {
  return Source + "__to__" + Consumer;
}

} // namespace

Expected<SDFG> sdfg::buildSDFG(const CompiledProgram &Compiled,
                               const DataflowAnalysis &Dataflow) {
  const StencilProgram &Program = Compiled.program();
  SDFG G(Program.Name);
  G.Domain = Program.IterationSpace;

  // Containers: program inputs and outputs are arrays; every streamed
  // edge becomes a stream container carrying its delay-buffer depth.
  for (const Field &Input : Program.Inputs) {
    Container C;
    C.Name = Input.Name;
    C.Type = Input.Type;
    C.DimensionMask = Input.DimensionMask;
    C.Kind = ContainerKind::Array;
    C.Transient = false;
    if (Error Err = G.addContainer(std::move(C)))
      return Err;
  }
  for (const std::string &Output : Program.Outputs) {
    Container C;
    C.Name = Output;
    C.Type = Program.fieldType(Output);
    C.DimensionMask = std::vector<bool>(Program.IterationSpace.rank(), true);
    C.Kind = ContainerKind::Array;
    C.Transient = false;
    if (Error Err = G.addContainer(std::move(C)))
      return Err;
  }
  for (const DataflowEdge &Edge : Dataflow.Edges) {
    Container C;
    C.Name = streamName(Edge.Source, Edge.Consumer);
    C.Type = Program.fieldType(Edge.Source);
    C.DimensionMask = std::vector<bool>(Program.IterationSpace.rank(), true);
    C.Kind = ContainerKind::Stream;
    C.BufferDepth = Edge.BufferDepth;
    C.Transient = true;
    if (Error Err = G.addContainer(std::move(C)))
      return Err;
  }

  State &S = G.addState("dataflow");

  // Library nodes plus input/output access nodes.
  std::map<std::string, StencilLibraryNode *> NodeOf;
  for (size_t Index : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[Index];
    NodeOf[Node.Name] = S.addStencil(Node.clone());
  }

  std::map<std::string, AccessNode *> InputAccess;
  for (const Field &Input : Program.Inputs)
    if (!Program.consumersOf(Input.Name).empty())
      InputAccess[Input.Name] = S.addAccess(Input.Name);

  for (size_t Index : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[Index];
    StencilLibraryNode *Lib = NodeOf.at(Node.Name);
    for (const FieldAccesses &FA : Node.Accesses) {
      if (Program.findInput(FA.Field)) {
        // Lower-rank inputs connect directly; streamed inputs through the
        // edge's stream container access node.
        const DataflowEdge *Edge = Dataflow.findEdge(FA.Field, Node.Name);
        if (!Edge) {
          S.connect(InputAccess.at(FA.Field), Lib, FA.Field);
          continue;
        }
        AccessNode *Stream = S.addAccess(streamName(FA.Field, Node.Name));
        S.connect(InputAccess.at(FA.Field), Stream, FA.Field);
        S.connect(Stream, Lib, Stream->data());
      } else {
        AccessNode *Stream = S.addAccess(streamName(FA.Field, Node.Name));
        S.connect(NodeOf.at(FA.Field), Stream, Stream->data());
        S.connect(Stream, Lib, Stream->data());
      }
    }
    if (Program.isProgramOutput(Node.Name)) {
      AccessNode *Out = S.addAccess(Node.Name);
      S.connect(Lib, Out, Node.Name);
    }
  }

  if (Error Err = G.validate())
    return Err;
  return G;
}

Error sdfg::expandStencilNode(SDFG &G, State &S, int NodeId,
                              const CompiledProgram &Compiled,
                              const DataflowAnalysis &Dataflow) {
  Node *Raw = S.findNode(NodeId);
  if (!Raw || !isa<StencilLibraryNode>(Raw))
    return makeError("expandStencilNode: not a stencil library node");
  auto *Lib = cast<StencilLibraryNode>(Raw);
  const StencilProgram &Program = Compiled.program();
  const std::string Name = Lib->stencil().Name;
  int NodeIndex = Program.nodeIndex(Name);
  if (NodeIndex < 0)
    return makeError("expandStencilNode: unknown stencil '" + Name + "'");
  const NodeBuffers &Buffers =
      Dataflow.Buffers[static_cast<size_t>(NodeIndex)];

  // Remember the library node's payload and neighborhood before removing
  // it (removal destroys the node).
  std::string ComputeCode = Lib->stencil().Code.toString();
  std::vector<int> Preds = S.predecessors(NodeId);
  std::vector<int> Succs = S.successors(NodeId);
  S.removeNode(NodeId);
  Lib = nullptr;

  int64_t W = Program.VectorWidth;
  int64_t Iterations = Program.IterationSpace.numCells() / W;

  // The pipeline scope over the stencil's iteration space, annotated with
  // its initialization (buffer fill) and draining phases.
  auto [Pipeline, PipelineEnd] = S.addPipeline(
      "it", Iterations + Buffers.InitCycles, Buffers.InitCycles,
      Buffers.InitCycles);

  // Shift phase: one fully unrolled map per buffered field, shifting the
  // shift-register contents by the vector width (Fig. 12 left).
  const Node *Previous = Pipeline;
  for (const InternalBuffer &Buffer : Buffers.Buffers) {
    if (!Buffer.NeedsShiftRegister)
      continue;
    std::string RegName = Name + "__sreg__" + Buffer.Field;
    Container Reg;
    Reg.Name = RegName;
    Reg.Type = Program.fieldType(Buffer.Field);
    Reg.DimensionMask = {}; // 1D shift register; sized in elements.
    Reg.Kind = ContainerKind::Array;
    Reg.Transient = true;
    Reg.BufferDepth = Buffer.SizeElements;
    if (Error Err = G.addContainer(std::move(Reg)))
      return Err;

    auto [Shift, ShiftEnd] = S.addMap(
        "s", 0, Buffer.SizeElements - W, /*Unrolled=*/true);
    TaskletNode *Mover = S.addTasklet(
        "shift_" + Buffer.Field,
        formatString("%s[s] = %s[s + %lld]", RegName.c_str(),
                     RegName.c_str(), static_cast<long long>(W)));
    AccessNode *RegIn = S.addAccess(RegName);
    AccessNode *RegOut = S.addAccess(RegName);
    S.connect(Previous, Shift);
    S.connect(RegIn, Shift, RegName);
    S.connect(Shift, Mover, RegName, "s + W");
    S.connect(Mover, ShiftEnd, RegName, "s");
    S.connect(ShiftEnd, RegOut, RegName);
    Previous = ShiftEnd;
  }

  // Update phase: read one vector from each input stream into the front
  // of its register (suppressed while draining).
  for (const InternalBuffer &Buffer : Buffers.Buffers) {
    TaskletNode *Update = S.addTasklet(
        "update_" + Buffer.Field,
        formatString("%s__sreg__%s[back] = read(%s)", Name.c_str(),
                     Buffer.Field.c_str(), Buffer.Field.c_str()));
    S.connect(Previous, Update);
    Previous = Update;
  }

  // Compute phase: parametrically unrolled over the vector lanes, each
  // lane applying its own boundary predication, then a conditional write
  // that drops results during the initialization phase.
  auto [Lanes, LanesEnd] = S.addMap("w", 0, W, /*Unrolled=*/true);
  TaskletNode *Compute = S.addTasklet("compute_" + Name, ComputeCode);
  TaskletNode *Guard = S.addTasklet(
      "write_" + Name, "if (it >= init) write(" + Name + ")");
  S.connect(Previous, Lanes);
  S.connect(Lanes, Compute);
  S.connect(Compute, Guard, Name);
  S.connect(Guard, LanesEnd, Name);
  S.connect(LanesEnd, PipelineEnd, Name);

  // Reconnect the stencil's neighborhood: inputs feed the pipeline scope,
  // outputs leave through its exit.
  for (int Pred : Preds)
    if (const Node *N = S.findNode(Pred))
      S.connect(N, Pipeline, isa<AccessNode>(N)
                                 ? cast<AccessNode>(N)->data()
                                 : "");
  for (int Succ : Succs)
    if (const Node *N = S.findNode(Succ))
      S.connect(PipelineEnd, N, isa<AccessNode>(N)
                                    ? cast<AccessNode>(N)->data()
                                    : "");
  return Error::success();
}

Error sdfg::expandAllStencilNodes(SDFG &G, const CompiledProgram &Compiled,
                                  const DataflowAnalysis &Dataflow) {
  for (State &S : G.states()) {
    // Collect first: expansion mutates the node list.
    std::vector<int> LibraryNodes;
    for (const std::unique_ptr<Node> &N : S.nodes())
      if (isa<StencilLibraryNode>(N.get()))
        LibraryNodes.push_back(N->id());
    for (int Id : LibraryNodes)
      if (Error Err = expandStencilNode(G, S, Id, Compiled, Dataflow))
        return Err;
  }
  return G.validate();
}
