//===- sdfg/Graph.cpp - SDFG-lite dataflow IR ---------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sdfg/Graph.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace stencilflow;
using namespace stencilflow::sdfg;

// Out-of-line virtual anchor.
Node::~Node() = default;

//===----------------------------------------------------------------------===//
// State
//===----------------------------------------------------------------------===//

AccessNode *State::addAccess(const std::string &Data) {
  auto N = std::make_unique<AccessNode>(NextId++, Data);
  AccessNode *Ptr = N.get();
  Nodes.push_back(std::move(N));
  return Ptr;
}

TaskletNode *State::addTasklet(const std::string &Label,
                               const std::string &Code) {
  auto N = std::make_unique<TaskletNode>(NextId++, Label, Code);
  TaskletNode *Ptr = N.get();
  Nodes.push_back(std::move(N));
  return Ptr;
}

std::pair<MapEntryNode *, MapExitNode *>
State::addMap(const std::string &Param, int64_t Begin, int64_t End,
              bool Unrolled) {
  auto Entry =
      std::make_unique<MapEntryNode>(NextId++, Param, Begin, End, Unrolled);
  auto Exit = std::make_unique<MapExitNode>(NextId++, Entry->id());
  Entry->setExitId(Exit->id());
  MapEntryNode *EntryPtr = Entry.get();
  MapExitNode *ExitPtr = Exit.get();
  Nodes.push_back(std::move(Entry));
  Nodes.push_back(std::move(Exit));
  return {EntryPtr, ExitPtr};
}

std::pair<PipelineEntryNode *, PipelineExitNode *>
State::addPipeline(const std::string &Param, int64_t Iterations,
                   int64_t InitIterations, int64_t DrainIterations) {
  auto Entry = std::make_unique<PipelineEntryNode>(
      NextId++, Param, Iterations, InitIterations, DrainIterations);
  auto Exit = std::make_unique<PipelineExitNode>(NextId++, Entry->id());
  Entry->setExitId(Exit->id());
  PipelineEntryNode *EntryPtr = Entry.get();
  PipelineExitNode *ExitPtr = Exit.get();
  Nodes.push_back(std::move(Entry));
  Nodes.push_back(std::move(Exit));
  return {EntryPtr, ExitPtr};
}

StencilLibraryNode *State::addStencil(StencilNode Stencil) {
  auto N = std::make_unique<StencilLibraryNode>(NextId++, std::move(Stencil));
  StencilLibraryNode *Ptr = N.get();
  Nodes.push_back(std::move(N));
  return Ptr;
}

void State::connect(const Node *Src, const Node *Dst, std::string Data,
                    std::string Subset) {
  assert(Src && Dst && "connecting null nodes");
  Memlet Edge;
  Edge.Src = Src->id();
  Edge.Dst = Dst->id();
  Edge.Data = std::move(Data);
  Edge.Subset = std::move(Subset);
  Edges.push_back(std::move(Edge));
}

void State::removeNode(int Id) {
  Edges.erase(std::remove_if(Edges.begin(), Edges.end(),
                             [&](const Memlet &Edge) {
                               return Edge.Src == Id || Edge.Dst == Id;
                             }),
              Edges.end());
  Nodes.erase(std::remove_if(Nodes.begin(), Nodes.end(),
                             [&](const std::unique_ptr<Node> &N) {
                               return N->id() == Id;
                             }),
              Nodes.end());
}

Node *State::findNode(int Id) {
  for (const std::unique_ptr<Node> &N : Nodes)
    if (N->id() == Id)
      return N.get();
  return nullptr;
}

const Node *State::findNode(int Id) const {
  return const_cast<State *>(this)->findNode(Id);
}

std::vector<int> State::predecessors(int Id) const {
  std::vector<int> Result;
  for (const Memlet &Edge : Edges)
    if (Edge.Dst == Id)
      Result.push_back(Edge.Src);
  return Result;
}

std::vector<int> State::successors(int Id) const {
  std::vector<int> Result;
  for (const Memlet &Edge : Edges)
    if (Edge.Src == Id)
      Result.push_back(Edge.Dst);
  return Result;
}

std::vector<int> State::scopeContents(int EntryId) const {
  const Node *Entry = findNode(EntryId);
  assert(Entry && "scopeContents() of an unknown node");
  int ExitId = -1;
  if (const auto *Map = dyn_cast<MapEntryNode>(Entry))
    ExitId = Map->exitId();
  else if (const auto *Pipeline = dyn_cast<PipelineEntryNode>(Entry))
    ExitId = Pipeline->exitId();
  assert(ExitId >= 0 && "scopeContents() of a non-scope node");

  // BFS from the entry, stopping at the exit.
  std::set<int> Visited;
  std::vector<int> Frontier = successors(EntryId);
  std::vector<int> Result;
  while (!Frontier.empty()) {
    int Id = Frontier.back();
    Frontier.pop_back();
    if (Id == ExitId || !Visited.insert(Id).second)
      continue;
    Result.push_back(Id);
    for (int Succ : successors(Id))
      Frontier.push_back(Succ);
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

//===----------------------------------------------------------------------===//
// SDFG
//===----------------------------------------------------------------------===//

Error SDFG::addContainer(Container C) {
  if (findContainer(C.Name))
    return makeError("duplicate container '" + C.Name + "'");
  Containers.push_back(std::move(C));
  return Error::success();
}

const Container *SDFG::findContainer(const std::string &Name) const {
  for (const Container &C : Containers)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

Container *SDFG::findContainer(const std::string &Name) {
  for (Container &C : Containers)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

State &SDFG::addState(const std::string &Name) {
  States.emplace_back(Name);
  return States.back();
}

Error SDFG::validate() const {
  for (const State &S : States) {
    for (const Memlet &Edge : S.edges()) {
      if (!S.findNode(Edge.Src) || !S.findNode(Edge.Dst))
        return makeError("state '" + S.name() +
                         "' has an edge to a missing node");
      if (!Edge.Data.empty() && !findContainer(Edge.Data))
        return makeError("state '" + S.name() +
                         "' moves undeclared container '" + Edge.Data + "'");
    }
    for (const std::unique_ptr<Node> &N : S.nodes()) {
      if (const auto *Access = dyn_cast<AccessNode>(N.get()))
        if (!findContainer(Access->data()))
          return makeError("access node references undeclared container '" +
                           Access->data() + "'");
      if (const auto *Map = dyn_cast<MapEntryNode>(N.get()))
        if (!S.findNode(Map->exitId()))
          return makeError("map entry without matching exit in state '" +
                           S.name() + "'");
      if (const auto *Pipeline = dyn_cast<PipelineEntryNode>(N.get()))
        if (!S.findNode(Pipeline->exitId()))
          return makeError("pipeline entry without matching exit in state '" +
                           S.name() + "'");
    }
  }
  return Error::success();
}

std::string SDFG::toDot() const {
  std::string Dot = "digraph \"" + Name + "\" {\n";
  for (size_t StateIndex = 0; StateIndex != States.size(); ++StateIndex) {
    const State &S = States[StateIndex];
    Dot += formatString("  subgraph cluster_%zu {\n    label=\"%s\";\n",
                        StateIndex, S.name().c_str());
    for (const std::unique_ptr<Node> &N : S.nodes()) {
      const char *Shape = "box";
      switch (N->kind()) {
      case NodeKind::Access:
        Shape = "oval";
        break;
      case NodeKind::Tasklet:
        Shape = "octagon";
        break;
      case NodeKind::MapEntry:
      case NodeKind::MapExit:
      case NodeKind::PipelineEntry:
      case NodeKind::PipelineExit:
        Shape = "trapezium";
        break;
      case NodeKind::StencilLibrary:
        Shape = "component";
        break;
      }
      Dot += formatString("    n%zu_%d [label=\"%s\", shape=%s];\n",
                          StateIndex, N->id(), N->label().c_str(), Shape);
    }
    for (const Memlet &Edge : S.edges()) {
      std::string Label = Edge.Data;
      if (!Edge.Subset.empty())
        Label += "[" + Edge.Subset + "]";
      Dot += formatString("    n%zu_%d -> n%zu_%d [label=\"%s\"];\n",
                          StateIndex, Edge.Src, StateIndex, Edge.Dst,
                          Label.c_str());
    }
    Dot += "  }\n";
  }
  Dot += "}\n";
  return Dot;
}
