//===- sdfg/Lowering.h - Program -> SDFG and library-node expansion -*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering from the analyzed stencil program to the dataflow (SDFG)
/// representation, and the expansion of stencil library nodes into the
/// shift / update / compute structure of Fig. 12.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SDFG_LOWERING_H
#define STENCILFLOW_SDFG_LOWERING_H

#include "core/DataflowAnalysis.h"
#include "sdfg/Graph.h"
#include "support/Error.h"

namespace stencilflow {
namespace sdfg {

/// Builds the dataflow SDFG of \p Compiled: one stencil library node per
/// stencil, stream containers (with the analysis' delay-buffer depths) on
/// every inter-stencil edge, array containers and access nodes for
/// off-chip inputs/outputs.
Expected<SDFG> buildSDFG(const CompiledProgram &Compiled,
                         const DataflowAnalysis &Dataflow);

/// Expands the stencil library node \p NodeId inside \p S into its
/// implementation subgraph (Fig. 12): a pipeline scope containing a fully
/// unrolled shift phase over the internal buffers, an update phase reading
/// the input streams, and a compute phase with boundary predication and a
/// conditional output write. The library node is removed.
Error expandStencilNode(SDFG &G, State &S, int NodeId,
                        const CompiledProgram &Compiled,
                        const DataflowAnalysis &Dataflow);

/// Expands every stencil library node in \p G.
Error expandAllStencilNodes(SDFG &G, const CompiledProgram &Compiled,
                            const DataflowAnalysis &Dataflow);

} // namespace sdfg
} // namespace stencilflow

#endif // STENCILFLOW_SDFG_LOWERING_H
