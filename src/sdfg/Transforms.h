//===- sdfg/Transforms.h - NestDim, MapFission, extraction --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graph transformations of paper Sec. V-A and the stencil-program
/// extraction of Sec. VII (Fig. 13, "external programs" path):
///
///  - \b MapFission (general purpose): splits a parallel map scope that
///    contains several stencil library nodes into one map scope per node,
///    introducing temporary storage between the components. Transients
///    that cross the new scope boundaries are extended with the map's
///    dimension.
///  - \b NestDim (domain specific): folds a parametric map over one domain
///    dimension into the stencil library node it wraps, raising the
///    stencil's rank by one (offsets into containers spanning the mapped
///    dimension get a 0 component prepended).
///  - \b extractStencilProgram: reads a canonicalized SDFG (full-rank
///    stencil library nodes over array containers) back into the standard
///    stencil-program description, ready for StencilFlow analysis.
///
/// Together these implement the case-study workflow: a Dawn-style SDFG of
/// 2D stencils nested in a vertical map (Fig. 17a) is fissioned and
/// nested into canonical 3D stencils (Fig. 17b), extracted, and then
/// aggressively fused (Fig. 17c).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_SDFG_TRANSFORMS_H
#define STENCILFLOW_SDFG_TRANSFORMS_H

#include "ir/StencilProgram.h"
#include "sdfg/Graph.h"
#include "support/Error.h"

namespace stencilflow {
namespace sdfg {

/// Splits the map scope \p MapEntryId in \p State (which must contain one
/// or more stencil library nodes connected through transient access
/// nodes) into one map scope per library node. \p DimIndex is the domain
/// dimension the map iterates over; transient containers crossing scope
/// boundaries gain that dimension.
Error applyMapFission(SDFG &G, size_t StateIndex, int MapEntryId,
                      size_t DimIndex);

/// Folds the map scope \p MapEntryId (which must contain exactly one
/// stencil library node) into that node, raising its rank: accesses to
/// containers spanning \p DimIndex get a 0 offset component prepended.
Error applyNestDim(SDFG &G, size_t StateIndex, int MapEntryId,
                   size_t DimIndex);

/// Full canonicalization: fissions every map containing multiple library
/// nodes, then nests every single-node map. The resulting SDFG contains
/// only full-rank stencil library nodes and array access nodes.
Error canonicalize(SDFG &G);

/// Extracts the canonical stencil program from \p G: non-transient
/// containers written by no stencil become inputs, containers written and
/// not consumed (or non-transient) become outputs, and each library node
/// becomes a stencil. The result is fully analyzed.
Expected<StencilProgram> extractStencilProgram(const SDFG &G);

} // namespace sdfg
} // namespace stencilflow

#endif // STENCILFLOW_SDFG_TRANSFORMS_H
