//===- runtime/Validation.h - Result comparison -------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validation of simulated results against the reference execution
/// (paper Sec. VII: the framework transparently executes "... execution of
/// the program, and validation of results").
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_VALIDATION_H
#define STENCILFLOW_RUNTIME_VALIDATION_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace stencilflow {

/// Outcome of comparing one field.
struct ValidationReport {
  bool Passed = true;
  int64_t Mismatches = 0;
  int64_t FirstMismatch = -1;
  double MaxAbsoluteError = 0.0;
  std::string Summary;
};

/// Compares \p Actual against \p Expected. \p Tolerance is an absolute
/// bound; 0 demands bit-equality (the simulator evaluates the same
/// bytecode as the reference, so exact agreement is expected).
ValidationReport validateField(const std::string &Name,
                               const std::vector<double> &Actual,
                               const std::vector<double> &Expected,
                               double Tolerance = 0.0);

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_VALIDATION_H
