//===- runtime/SpatialTiling.cpp - Tiled execution ------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/SpatialTiling.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace stencilflow;

std::vector<int64_t>
stencilflow::computeTransitiveHalo(const CompiledProgram &Compiled) {
  const StencilProgram &Program = Compiled.program();
  size_t Rank = Program.IterationSpace.rank();

  // Reach of each field from the raw inputs, per dimension.
  std::map<std::string, std::vector<int64_t>> Reach;
  for (const Field &Input : Program.Inputs)
    Reach[Input.Name] = std::vector<int64_t>(Rank, 0);

  for (size_t Index : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[Index];
    std::vector<int64_t> NodeReach(Rank, 0);
    for (const FieldAccesses &FA : Node.Accesses) {
      const std::vector<int64_t> &Upstream = Reach.at(FA.Field);
      std::vector<bool> Mask = Program.fieldDimensionMask(FA.Field);
      for (const Offset &Off : FA.Offsets) {
        size_t Component = 0;
        for (size_t Dim = 0; Dim != Rank; ++Dim) {
          if (!Mask[Dim])
            continue;
          NodeReach[Dim] = std::max(
              NodeReach[Dim],
              Upstream[Dim] + std::abs(
                                  static_cast<int64_t>(Off[Component])));
          ++Component;
        }
      }
    }
    Reach[Node.Name] = std::move(NodeReach);
  }

  std::vector<int64_t> Halo(Rank, 0);
  for (const std::string &Output : Program.Outputs)
    for (size_t Dim = 0; Dim != Rank; ++Dim)
      Halo[Dim] = std::max(Halo[Dim], Reach.at(Output)[Dim]);
  return Halo;
}

namespace {

/// Copies the region [Lo, Lo+Extent) of a row-major array with shape
/// \p SrcShape into a dense array of shape \p Extent.
std::vector<double> sliceRegion(const std::vector<double> &Src,
                                const std::vector<int64_t> &SrcShape,
                                const std::vector<int64_t> &Lo,
                                const std::vector<int64_t> &Extent) {
  size_t Rank = SrcShape.size();
  int64_t Cells = 1;
  for (int64_t E : Extent)
    Cells *= E;
  std::vector<double> Dst(static_cast<size_t>(Cells));
  std::vector<int64_t> Index(Rank, 0);
  std::vector<int64_t> SrcStride(Rank, 1);
  for (size_t Dim = Rank; Dim-- > 1;)
    SrcStride[Dim - 1] = SrcStride[Dim] * SrcShape[Dim];
  for (int64_t Cell = 0; Cell != Cells; ++Cell) {
    int64_t SrcLinear = 0;
    for (size_t Dim = 0; Dim != Rank; ++Dim)
      SrcLinear += (Lo[Dim] + Index[Dim]) * SrcStride[Dim];
    Dst[static_cast<size_t>(Cell)] = Src[static_cast<size_t>(SrcLinear)];
    for (size_t Dim = Rank; Dim-- > 0;) {
      if (++Index[Dim] < Extent[Dim])
        break;
      Index[Dim] = 0;
    }
  }
  return Dst;
}

} // namespace

Expected<TiledExecution> stencilflow::runTiledReference(
    const CompiledProgram &Compiled,
    const std::map<std::string, std::vector<double>> &Inputs,
    const std::vector<int64_t> &TileExtents) {
  const StencilProgram &Program = Compiled.program();
  size_t Rank = Program.IterationSpace.rank();
  if (TileExtents.size() != Rank)
    return makeError("tile extents must match the program rank");
  for (int64_t Extent : TileExtents)
    if (Extent < 1)
      return makeError("tile extents must be positive");

  std::vector<int64_t> Halo = computeTransitiveHalo(Compiled);
  const std::vector<int64_t> &Domain = Program.IterationSpace.extents();

  TiledExecution Result;
  for (const std::string &Output : Program.Outputs)
    Result.Outputs[Output] = std::vector<double>(
        static_cast<size_t>(Program.IterationSpace.numCells()), 0.0);

  // Tile grid.
  std::vector<int64_t> TilesPerDim(Rank);
  int64_t TotalTiles = 1;
  for (size_t Dim = 0; Dim != Rank; ++Dim) {
    int64_t Core = std::min(TileExtents[Dim], Domain[Dim]);
    TilesPerDim[Dim] = (Domain[Dim] + Core - 1) / Core;
    TotalTiles *= TilesPerDim[Dim];
  }

  int64_t ComputedCells = 0;
  std::vector<int64_t> Tile(Rank, 0);
  for (int64_t TileIndex = 0; TileIndex != TotalTiles; ++TileIndex) {
    // Core region and clamped extended region of this tile.
    std::vector<int64_t> CoreLo(Rank), CoreHi(Rank), ExtLo(Rank),
        ExtHi(Rank), ExtShape(Rank);
    for (size_t Dim = 0; Dim != Rank; ++Dim) {
      int64_t Core = std::min(TileExtents[Dim], Domain[Dim]);
      CoreLo[Dim] = Tile[Dim] * Core;
      CoreHi[Dim] = std::min(Domain[Dim], CoreLo[Dim] + Core);
      ExtLo[Dim] = std::max<int64_t>(0, CoreLo[Dim] - Halo[Dim]);
      ExtHi[Dim] = std::min(Domain[Dim], CoreHi[Dim] + Halo[Dim]);
      ExtShape[Dim] = ExtHi[Dim] - ExtLo[Dim];
    }

    // Build the tile subprogram: same DAG over the extended tile.
    StencilProgram TileProgram = Program.clone();
    TileProgram.Name = formatString("%s_tile%lld", Program.Name.c_str(),
                                    static_cast<long long>(TileIndex));
    TileProgram.IterationSpace = Shape(ExtShape);
    TileProgram.VectorWidth = 1; // Tiles need not preserve W divisibility.
    Expected<CompiledProgram> TileCompiled =
        CompiledProgram::compile(std::move(TileProgram));
    if (!TileCompiled)
      return TileCompiled.takeError().addContext("tile compilation");

    // Slice the inputs to the extended tile.
    std::map<std::string, std::vector<double>> TileInputs;
    for (const Field &Input : Program.Inputs) {
      auto It = Inputs.find(Input.Name);
      if (It == Inputs.end())
        return makeError("missing data for input field '" + Input.Name +
                         "'");
      std::vector<int64_t> FieldShape, FieldLo, FieldExtent;
      for (size_t Dim = 0; Dim != Rank; ++Dim) {
        if (!Input.DimensionMask[Dim])
          continue;
        FieldShape.push_back(Domain[Dim]);
        FieldLo.push_back(ExtLo[Dim]);
        FieldExtent.push_back(ExtShape[Dim]);
      }
      TileInputs[Input.Name] =
          sliceRegion(It->second, FieldShape, FieldLo, FieldExtent);
    }

    Expected<ExecutionResult> TileResult =
        runReference(*TileCompiled, TileInputs);
    if (!TileResult)
      return TileResult.takeError().addContext("tile execution");

    // Stitch the core region into the global outputs.
    Shape ExtSpace(ExtShape);
    for (const std::string &Output : Program.Outputs) {
      const std::vector<double> &TileData = TileResult->field(Output);
      std::vector<double> &Global = Result.Outputs[Output];
      std::vector<int64_t> Index = CoreLo;
      bool Done = false;
      while (!Done) {
        std::vector<int64_t> Local(Rank);
        for (size_t Dim = 0; Dim != Rank; ++Dim)
          Local[Dim] = Index[Dim] - ExtLo[Dim];
        Global[static_cast<size_t>(
            Program.IterationSpace.linearizeIndex(Index))] =
            TileData[static_cast<size_t>(ExtSpace.linearizeIndex(Local))];
        Done = true;
        for (size_t Dim = Rank; Dim-- > 0;) {
          if (++Index[Dim] < CoreHi[Dim]) {
            Done = false;
            break;
          }
          Index[Dim] = CoreLo[Dim];
        }
      }
    }

    int64_t TileCells = 1;
    for (int64_t E : ExtShape)
      TileCells *= E;
    ComputedCells += TileCells;
    Result.MaxTileCells = std::max(Result.MaxTileCells, TileCells);

    // Advance the tile grid index.
    for (size_t Dim = Rank; Dim-- > 0;) {
      if (++Tile[Dim] < TilesPerDim[Dim])
        break;
      Tile[Dim] = 0;
    }
  }

  Result.Tiles = TotalTiles;
  Result.RedundancyFactor =
      static_cast<double>(ComputedCells) /
      static_cast<double>(Program.IterationSpace.numCells());
  return Result;
}
