//===- runtime/Session.cpp - Stable facade API ---------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Session.h"

#include "frontend/ProgramLoader.h"

using namespace stencilflow;

Expected<Session> Session::fromFile(const std::string &Path) {
  Expected<StencilProgram> Program = loadProgramFile(Path);
  if (!Program)
    return Program.takeError().addContext("session");
  return Session(Program.takeValue());
}

Expected<Session> Session::fromJsonText(std::string_view Json) {
  Expected<StencilProgram> Program = programFromJsonText(Json);
  if (!Program)
    return Program.takeError().addContext("session");
  return Session(Program.takeValue());
}

Session Session::fromProgram(StencilProgram Program) {
  return Session(std::move(Program));
}

Session &Session::trace(int64_t SampleStride) {
  OwnedTracer = std::make_unique<sim::Tracer>(SampleStride);
  return *this;
}

/// Materializes the effective option block: the stored options plus the
/// session-owned fault plan and tracer wired in, validated up front so
/// inconsistent settings fail with a typed error instead of deep inside
/// the pipeline.
Expected<PipelineOptions> Session::effectiveOptions() const {
  PipelineOptions O = Opts;
  if (OwnedFaults)
    O.Simulator.Faults = &*OwnedFaults;
  if (OwnedTracer)
    O.Simulator.Trace = OwnedTracer.get();
  if (Error Err = O.Simulator.validate())
    return Err.addContext("session");
  if (O.Simulator.Faults)
    if (Error Err = O.Simulator.Faults->validate())
      return Err.addContext("session fault plan");
  return O;
}

Expected<PipelineResult> Session::run() {
  // Fail fast on inconsistent state, before any expensive phase runs.
  if (Error Err = Program.validate())
    return Err.addContext("session program");
  Expected<PipelineOptions> O = effectiveOptions();
  if (!O)
    return O.takeError();

  // The pipeline consumes its program; hand it a clone so the session
  // stays runnable (option sweeps over one loaded program).
  return runPipeline(Program.clone(), *O);
}

Expected<CompiledPlan> Session::compilePlan() {
  if (Error Err = Program.validate())
    return Err.addContext("session program");
  Expected<PipelineOptions> O = effectiveOptions();
  if (!O)
    return O.takeError();
  return compilePipeline(Program.clone(), *O);
}

Expected<PlanExecution, sim::SimFailure>
Session::runPlan(const CompiledPlan &Plan) {
  Expected<PipelineOptions> O = effectiveOptions();
  if (!O)
    return O.takeError();
  return executePlan(Plan, *O);
}
