//===- runtime/Iterate.cpp - Iterative (time-loop) execution -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Iterate.h"

using namespace stencilflow;

Expected<ExecutionResult> stencilflow::iterateReference(
    const CompiledProgram &Compiled,
    std::map<std::string, std::vector<double>> Inputs,
    const std::vector<IterationBinding> &Bindings, int Steps) {
  const StencilProgram &Program = Compiled.program();
  if (Steps < 1)
    return makeError("iterative execution requires at least one step");
  for (const IterationBinding &Binding : Bindings) {
    const StencilNode *Producer = Program.findNode(Binding.Output);
    if (!Producer || !Program.isProgramOutput(Binding.Output))
      return makeError("iteration binding source '" + Binding.Output +
                       "' is not a program output");
    const Field *Consumer = Program.findInput(Binding.Input);
    if (!Consumer)
      return makeError("iteration binding target '" + Binding.Input +
                       "' is not a program input");
    if (!Consumer->isFullRank())
      return makeError("iteration binding target '" + Binding.Input +
                       "' must be a full-rank field");
    if (Consumer->Type != Producer->Type)
      return makeError("iteration binding '" + Binding.Output + "' -> '" +
                       Binding.Input + "' mixes element types");
  }

  ExecutionResult Last;
  for (int Step = 0; Step != Steps; ++Step) {
    Expected<ExecutionResult> Result = runReference(Compiled, Inputs);
    if (!Result)
      return Result;
    Last = Result.takeValue();
    if (Step + 1 == Steps)
      break;
    for (const IterationBinding &Binding : Bindings)
      Inputs[Binding.Input] = Last.field(Binding.Output);
  }
  return Last;
}
