//===- runtime/SpatialTiling.h - Tiled execution -------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Spatial tiling (paper Sec. IX-D, left as future work there): when the
/// domain grows beyond what internal and delay buffers can hold on chip,
/// the iteration space is split into tiles that are evaluated
/// independently, "introducing redundant computation at the domain
/// boundaries proportional to the DAG depth and the tile
/// surface-to-volume ratio".
///
/// Each tile is extended by the program's *transitive halo* — the
/// per-dimension reach of every output through the whole DAG — and
/// clamped to the global domain. Evaluating the extended tile reproduces
/// the untiled values exactly on the tile core (seam cells never read out
/// of the local region; cells at the global boundary see the real
/// boundary conditions because of the clamping), so tiled execution is
/// bit-identical to the untiled program while every tile's buffer
/// footprint shrinks to the tile width.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_SPATIALTILING_H
#define STENCILFLOW_RUNTIME_SPATIALTILING_H

#include "core/CompiledProgram.h"
#include "runtime/ReferenceExecutor.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Per-dimension transitive halo of \p Compiled: how far, in cells, any
/// program output depends on the inputs through the full DAG. The
/// redundant work of tiling grows with this (it is proportional to the
/// DAG depth for chained stencils).
std::vector<int64_t> computeTransitiveHalo(const CompiledProgram &Compiled);

/// Result of a tiled execution.
struct TiledExecution {
  /// Program outputs, identical to the untiled execution.
  std::map<std::string, std::vector<double>> Outputs;

  /// Number of tiles evaluated.
  int64_t Tiles = 0;

  /// Cells actually computed (sum of extended-tile volumes) divided by
  /// the domain volume: the redundant-computation factor of Sec. IX-D.
  double RedundancyFactor = 1.0;

  /// Largest extended-tile cell count: the buffer-footprint proxy (tile
  /// buffers scale with the extended tile's (D-1)-dimensional slices
  /// instead of the full domain's).
  int64_t MaxTileCells = 0;
};

/// Executes \p Compiled tile by tile with the reference executor.
/// \p TileExtents gives the core tile size per dimension (entries larger
/// than the domain run untiled in that dimension). The result is
/// bit-identical to runReference on the whole domain.
Expected<TiledExecution>
runTiledReference(const CompiledProgram &Compiled,
                  const std::map<std::string, std::vector<double>> &Inputs,
                  const std::vector<int64_t> &TileExtents);

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_SPATIALTILING_H
