//===- runtime/Pipeline.h - End-to-end driver ---------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end StencilFlow pipeline (paper Sec. VII): from a program
/// description, transparently executes parsing/validation, optional
/// aggressive stencil fusion, dependency and buffering analysis, resource
/// estimation and device partitioning, code generation, simulated hardware
/// execution, and validation against the reference executor — the software
/// equivalent of the paper's "run the stencil program from the input
/// description" workflow.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_PIPELINE_H
#define STENCILFLOW_RUNTIME_PIPELINE_H

#include "codegen/OpenCLEmitter.h"
#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "core/ResourceModel.h"
#include "core/RuntimeModel.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"
#include "sim/Machine.h"
#include "support/Error.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stencilflow {

/// Pipeline configuration.
struct PipelineOptions {
  /// Temporal blocking degree T: unroll T timesteps of the program's
  /// time loop into the dataflow graph before any other transformation
  /// (sdfg/TemporalUnroll.h), so T generations flow through per off-chip
  /// round trip. Requires `StencilProgram::TimeLoop` bindings when > 1.
  int TemporalDegree = 1;

  /// Apply aggressive stencil fusion before analysis (Sec. V-B).
  bool FuseStencils = false;

  /// Apply algebraic simplification to every node before analysis
  /// (prunes identity operations the optimizing HLS compiler would strip;
  /// see compute/Simplify.h for the NaN/Inf caveats).
  bool SimplifyCode = false;

  /// Simulate execution and validate against the reference executor.
  bool Simulate = true;
  bool Validate = true;

  /// Allow spanning multiple devices when one does not suffice.
  bool AllowMultiDevice = true;

  /// Emit OpenCL kernel sources.
  bool EmitCode = false;

  compute::KernelOptions Kernel;
  compute::LatencyTable Latencies;
  PartitionOptions Partitioning;
  sim::SimConfig Simulator;

  /// Graceful degradation: when the simulation aborts with
  /// ErrorCode::DeviceLost, the failed node leaves the testbed's device
  /// pool (Partitioning.MaxDevices shrinks by one), the DAG is
  /// re-partitioned across the survivors — a spare takes the failed
  /// node's place when the pool has slack — the machine is rebuilt, and
  /// the run retried. Permanent device-failure events are stripped from
  /// the fault plan on the retry (the failed node is gone; the survivors'
  /// transient faults stay in force). Unrecoverable once the pool is
  /// exhausted or MaxSimAttempts is reached.
  bool RecoverFromDeviceLoss = true;

  /// Total simulation attempts (first run plus device-loss re-runs).
  int MaxSimAttempts = 3;

  /// Resume the first simulation attempt from this snapshot file, or from
  /// the most recent snapshot in this directory (sim/Checkpoint.h). Empty
  /// — the default — starts from cycle zero. Unlike the automatic
  /// checkpoint reload on device loss, an unreadable or incompatible
  /// snapshot here is a hard failure: the user explicitly asked for it.
  std::string ResumeFrom;

  /// Validation tolerance: fused programs compute through the halo, so
  /// boundary cells may differ; interior cells must match exactly.
  double Tolerance = 0.0;
};

/// What the pipeline's resilience policy did across simulation attempts.
struct RecoveryReport {
  /// Simulation attempts performed (1 = no recovery needed).
  int Attempts = 1;

  /// Devices lost (and recovered from) across attempts.
  int DevicesLost = 0;

  /// Transient faults the reliable transport absorbed on the final,
  /// successful attempt (summed over all remote streams).
  int64_t Retransmissions = 0;
  int64_t CorruptedVectors = 0;

  /// Cycles the successful attempt did NOT replay because it resumed from
  /// a snapshot instead of cycle zero — the work a checkpoint saved. Zero
  /// when every attempt started fresh.
  int64_t CyclesSavedByCheckpoint = 0;

  /// Human-readable narrative, one line per recovery action.
  std::vector<std::string> Log;
};

/// Everything the pipeline produced.
struct PipelineResult {
  CompiledProgram Compiled;
  DataflowAnalysis Dataflow;
  RuntimeEstimate Runtime;
  ResourceUsage Resources;   ///< Single-device aggregate estimate.
  double FrequencyMHz = 0.0; ///< From the utilization model.
  Partition Placement;
  std::vector<GeneratedSource> Sources; ///< When EmitCode.
  sim::SimResult Simulation;            ///< When Simulate.
  std::vector<ValidationReport> Validations;
  bool ValidationPassed = true;
  int FusedPairs = 0;
  RecoveryReport Recovery; ///< When Simulate, what resilience absorbed.

  /// Simulated wall-clock seconds at the modeled frequency.
  double simulatedSeconds() const {
    return static_cast<double>(Simulation.Stats.Cycles) /
           (FrequencyMHz * 1e6);
  }

  /// Simulated performance in Op/s.
  double simulatedOpsPerSecond() const {
    return static_cast<double>(Runtime.TotalFlops) / simulatedSeconds();
  }
};

/// The reusable product of the pipeline's *compile half*: everything
/// derived from the program description alone — fusion, kernel
/// compilation, dataflow/buffer analysis, the runtime/resource/frequency
/// estimates, optional code generation, and the device placement. A plan
/// holds no per-run simulator state, so one plan can be executed many
/// times concurrently via \c executePlan; the serving layer caches plans
/// across requests (serve/PlanCache.h) so repeat traffic skips this half
/// entirely. Move-only (kernels own their tapes).
struct CompiledPlan {
  CompiledProgram Compiled;
  DataflowAnalysis Dataflow;
  RuntimeEstimate Runtime;
  ResourceUsage Resources;   ///< Single-device aggregate estimate.
  double FrequencyMHz = 0.0; ///< From the utilization model.
  Partition Placement;
  std::vector<GeneratedSource> Sources; ///< When EmitCode.
  int FusedPairs = 0;
};

/// What one execution of a compiled plan produced: the simulation, its
/// validation against the reference executor, and the resilience
/// narrative. The compile-side artifacts stay with the (shared, possibly
/// cached) \c CompiledPlan rather than being copied per run.
struct PlanExecution {
  sim::SimResult Simulation;
  std::vector<ValidationReport> Validations;
  bool ValidationPassed = true;
  RecoveryReport Recovery;
  /// The placement the successful attempt actually ran on — differs from
  /// the plan's when device-loss recovery re-partitioned onto survivors.
  Partition Placement;
};

/// The compile half: temporal unrolling, fusion and simplification,
/// kernel compilation, dataflow analysis, model estimates, optional code
/// generation, and partitioning. Only \p Options fields consumed before
/// simulation are read (TemporalDegree, FuseStencils, SimplifyCode,
/// Kernel, Latencies, Partitioning, AllowMultiDevice, EmitCode).
Expected<CompiledPlan> compilePipeline(StencilProgram Program,
                                       const PipelineOptions &Options = {});

/// The execute half: simulation with graceful device-loss degradation,
/// then validation. \p Plan is shared-read-only — concurrent executions
/// of one plan are safe — and per-run knobs (Simulator, ResumeFrom,
/// Validate, Tolerance, recovery policy) come from \p Options. Honors
/// Options.Simulate == false by returning an empty execution. Failures
/// are \c sim::SimFailure so the structured \c FailureReport travels to
/// callers (the serving layer forwards it in error responses); it
/// converts to plain \c Error for generic propagation.
Expected<PlanExecution, sim::SimFailure>
executePlan(const CompiledPlan &Plan, const PipelineOptions &Options = {});

/// Runs the full pipeline on \p Program: \c compilePipeline composed with
/// \c executePlan, assembled into the all-in-one \c PipelineResult.
Expected<PipelineResult> runPipeline(StencilProgram Program,
                                     const PipelineOptions &Options = {});

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_PIPELINE_H
