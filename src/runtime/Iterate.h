//===- runtime/Iterate.h - Iterative (time-loop) execution --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative execution of a stencil program: outputs are fed back as
/// inputs for the next time step, the way production solvers invoke the
/// horizontal-diffusion kernel every timestep. Two execution styles honor
/// the same `StencilProgram::TimeLoop` bindings:
///
///  1. The host loop below (`iterateReference`): every step is a full
///     off-chip round trip — outputs are written back to memory and
///     re-read as inputs. Simple, but each generation pays the full
///     memory-bandwidth cost.
///  2. On-chip temporal blocking (`sdfg::unrollTimeSteps`, selected via
///     `PipelineOptions::TemporalDegree` / `Session::temporalDegree`):
///     T copies of the single-step graph are chained back-to-back in the
///     dataflow graph, so T generations flow through per round trip.
///     This is the paper's Sec. VIII-C observation ("chaining together
///     long linear sequences of stencils ... analogous to time-tiled
///     iterative stencils") turned into a transformation.
///
/// The two are bit-identical: iterating a single-step program T times is
/// exactly evaluating the T-deep chained program once. The tests use this
/// function as the parity oracle for the unroll transformation.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_ITERATE_H
#define STENCILFLOW_RUNTIME_ITERATE_H

#include "core/CompiledProgram.h"
#include "runtime/ReferenceExecutor.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Runs \p Compiled for \p Steps time steps with the reference executor,
/// applying \p Bindings (see ir/StencilProgram.h) between consecutive
/// steps. Returns the final step's execution result.
Expected<ExecutionResult>
iterateReference(const CompiledProgram &Compiled,
                 std::map<std::string, std::vector<double>> Inputs,
                 const std::vector<IterationBinding> &Bindings, int Steps);

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_ITERATE_H
