//===- runtime/Iterate.h - Iterative (time-loop) execution --------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative execution of a stencil program: outputs are fed back as
/// inputs for the next time step, the way production solvers invoke the
/// horizontal-diffusion kernel every timestep. This is the load/store
/// execution style that the paper's chained programs unroll spatially —
/// "chaining together long linear sequences of stencils ... analogous to
/// time-tiled iterative stencils" (Sec. VIII-C). The tests exploit the
/// equivalence: iterating a single-step program T times is bit-identical
/// to evaluating the T-deep chained program once.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_ITERATE_H
#define STENCILFLOW_RUNTIME_ITERATE_H

#include "core/CompiledProgram.h"
#include "runtime/ReferenceExecutor.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Feeds program output \p Output into input field \p Input at the start
/// of the next time step. Both must be full-rank fields of the same type.
struct IterationBinding {
  std::string Output;
  std::string Input;
};

/// Runs \p Compiled for \p Steps time steps with the reference executor,
/// applying \p Bindings between consecutive steps. Returns the final
/// step's execution result.
Expected<ExecutionResult>
iterateReference(const CompiledProgram &Compiled,
                 std::map<std::string, std::vector<double>> Inputs,
                 const std::vector<IterationBinding> &Bindings, int Steps);

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_ITERATE_H
