//===- runtime/Session.h - Stable facade API ----------------------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stable front door of the library: \c stencilflow::Session wraps the
/// whole parse -> analyze -> partition -> simulate -> validate pipeline
/// behind a small, chainable configuration surface, and owns the
/// cross-cutting state (fault plan, tracer) whose raw-pointer lifetimes the
/// lower layers deliberately do not manage:
///
/// \code
///   auto Session = stencilflow::Session::fromFile("diamond.json");
///   if (!Session)
///     return report(Session.takeError());
///   Session->unconstrainedMemory(true)
///           .engine(sim::SimEngine::Parallel)
///           .faults(Plan);                      // owned copy, no dangling
///   Expected<PipelineResult> Result = Session->run();
/// \endcode
///
/// \c run() may be called repeatedly (each run works on a fresh copy of the
/// program), so one Session can sweep configurations — engines, fault
/// plans, vector widths — over one loaded program.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_SESSION_H
#define STENCILFLOW_RUNTIME_SESSION_H

#include "runtime/Pipeline.h"
#include "sim/Fault.h"
#include "sim/Trace.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace stencilflow {

namespace tuner {
struct TuneOptions;
struct TuningOutcome;
} // namespace tuner

/// A loaded stencil program plus the pipeline configuration to run it
/// under. Movable, not copyable (it may own a tracer recording).
class Session {
public:
  //===--------------------------------------------------------------------===//
  // Construction
  //===--------------------------------------------------------------------===//

  /// Loads a program description from a JSON file.
  static Expected<Session> fromFile(const std::string &Path);

  /// Parses a program description from JSON text.
  static Expected<Session> fromJsonText(std::string_view Json);

  /// Wraps an already-built program.
  static Session fromProgram(StencilProgram Program);

  //===--------------------------------------------------------------------===//
  // Chainable configuration
  //===--------------------------------------------------------------------===//

  /// Replaces the entire option block (escape hatch; the named setters
  /// below cover the common knobs).
  Session &options(PipelineOptions O) {
    Opts = std::move(O);
    return *this;
  }
  /// Mutable access to the full option block.
  PipelineOptions &pipelineOptions() { return Opts; }

  /// Aggressive stencil fusion before analysis (paper Sec. V-B).
  Session &fuseStencils(bool Enable = true) {
    Opts.FuseStencils = Enable;
    return *this;
  }
  /// Algebraic simplification of every node's code before analysis.
  Session &simplifyCode(bool Enable = true) {
    Opts.SimplifyCode = Enable;
    return *this;
  }
  /// Emit OpenCL kernel sources into the result.
  Session &emitCode(bool Enable = true) {
    Opts.EmitCode = Enable;
    return *this;
  }
  /// Simulate execution (on by default).
  Session &simulate(bool Enable = true) {
    Opts.Simulate = Enable;
    return *this;
  }
  /// Validate simulated outputs against the reference executor.
  Session &validate(bool Enable = true) {
    Opts.Validate = Enable;
    return *this;
  }
  /// Allow spanning multiple devices when one does not suffice.
  Session &allowMultiDevice(bool Enable = true) {
    Opts.AllowMultiDevice = Enable;
    return *this;
  }
  /// Overrides the program's vectorization width.
  Session &vectorize(int Width) {
    Program.VectorWidth = Width;
    return *this;
  }
  /// Temporal blocking: unroll \p Degree timesteps of the program's time
  /// loop into the dataflow graph (sdfg/TemporalUnroll.h), so that many
  /// generations flow on-chip per off-chip round trip. Requires the
  /// program to declare `TimeLoop` bindings when > 1.
  Session &temporalDegree(int Degree) {
    Opts.TemporalDegree = Degree;
    return *this;
  }

  /// Replaces the simulator configuration wholesale.
  Session &simulator(sim::SimConfig Config) {
    Opts.Simulator = std::move(Config);
    return *this;
  }
  /// Ideal (infinite-bandwidth) memory controller toggle.
  Session &unconstrainedMemory(bool Enable = true) {
    Opts.Simulator.UnconstrainedMemory = Enable;
    return *this;
  }
  /// Selects the simulation engine; \p Threads > 0 pins the parallel
  /// engine's worker count (0 = one per hardware thread).
  Session &engine(sim::SimEngine Engine, int Threads = 0) {
    Opts.Simulator.Engine = Engine;
    Opts.Simulator.Threads = Threads;
    return *this;
  }
  /// Progress watchdog threshold (0 disables).
  Session &stallTimeout(int64_t Cycles) {
    Opts.Simulator.StallTimeoutCycles = Cycles;
    return *this;
  }
  /// Selects the kernel execution tier (compute/Engine.h). All tiers are
  /// bit-exact; Scalar is the reference interpreter, Specialized is the
  /// default, Jit compiles each unit's tape to native code via the host
  /// toolchain (falling back to Specialized when none is available), and
  /// Auto picks a tier per unit. SimStats::UnitKernelTiers reports what
  /// actually ran.
  Session &kernelEngine(compute::KernelEngine Engine) {
    Opts.Simulator.KernelExec = Engine;
    return *this;
  }

  /// Enables crash-safe checkpointing (sim/Checkpoint.h): snapshots land
  /// in \p Dir every \p EveryCycles completed cycles, keeping the most
  /// recent \p Keep files. Cycle- and bit-exact resume is guaranteed for
  /// any kill point.
  Session &checkpointEvery(int64_t EveryCycles, std::string Dir,
                           int Keep = 3) {
    Opts.Simulator.CheckpointDir = std::move(Dir);
    Opts.Simulator.CheckpointEveryCycles = EveryCycles;
    Opts.Simulator.CheckpointKeep = Keep;
    return *this;
  }
  /// Wall-clock checkpoint cadence (seconds between snapshots); may be
  /// combined with \c checkpointEvery — whichever fires first wins.
  Session &checkpointEverySeconds(double Seconds, std::string Dir,
                                  int Keep = 3) {
    Opts.Simulator.CheckpointDir = std::move(Dir);
    Opts.Simulator.CheckpointEverySeconds = Seconds;
    Opts.Simulator.CheckpointKeep = Keep;
    return *this;
  }
  /// Granular checkpoint knobs, one setter per SimConfig field, for
  /// callers (CLIs) that assemble the cadence piecemeal instead of via
  /// the combined \c checkpointEvery* overloads above.
  Session &checkpointDir(std::string Dir) {
    Opts.Simulator.CheckpointDir = std::move(Dir);
    return *this;
  }
  Session &checkpointEveryCycles(int64_t Cycles) {
    Opts.Simulator.CheckpointEveryCycles = Cycles;
    return *this;
  }
  Session &checkpointEverySeconds(double Seconds) {
    Opts.Simulator.CheckpointEverySeconds = Seconds;
    return *this;
  }
  Session &checkpointKeep(int Keep) {
    Opts.Simulator.CheckpointKeep = Keep;
    return *this;
  }
  /// Crash-consistency test hook: SIGKILL after the N-th snapshot.
  Session &checkpointCrashAfter(int Count) {
    Opts.Simulator.CheckpointCrashAfter = Count;
    return *this;
  }
  /// Resumes the first simulation attempt from \p PathOrDir: a snapshot
  /// file, or a checkpoint directory (the latest snapshot wins). An
  /// unreadable or incompatible snapshot fails the run with
  /// SnapshotInvalid / SnapshotIncompatible.
  Session &resumeFrom(std::string PathOrDir) {
    Opts.ResumeFrom = std::move(PathOrDir);
    return *this;
  }

  /// Attaches an owned copy of \p Plan (an attached plan — even an empty
  /// one — switches remote streams to the reliable transport). The copy
  /// removes the SimConfig::Faults raw-pointer lifetime hazard.
  Session &faults(sim::FaultPlan Plan) {
    OwnedFaults = std::move(Plan);
    return *this;
  }
  /// Detaches any owned fault plan.
  Session &clearFaults() {
    OwnedFaults.reset();
    return *this;
  }

  /// Enables tracing with a Session-owned tracer sampling counters every
  /// \p SampleStride cycles. The recording of the most recent run is
  /// available via \c tracer(). Tracing requires the serial engine
  /// (SimConfig::Builder rejects the combination).
  Session &trace(int64_t SampleStride = 16);
  /// The owned tracer, or null when \c trace() was never called.
  sim::Tracer *tracer() { return OwnedTracer.get(); }

  /// Autotuner knobs, mirrored from tuner::TuneOptions so they chain like
  /// every other Session setter (the option struct itself stays
  /// forward-declared here — sf_runtime does not depend on sf_tuner).
  /// They seed the no-argument \c tune() overload; \c tune(Options) takes
  /// a fully-formed option block and ignores them.
  Session &tuneBudget(int Candidates) {
    Tuning.Budget = Candidates;
    return *this;
  }
  Session &tuneSeed(uint64_t Seed) {
    Tuning.Seed = Seed;
    Tuning.HaveSeed = true;
    return *this;
  }
  Session &tuneTopK(int K) {
    Tuning.TopK = K;
    return *this;
  }
  Session &tuneWorkers(int Workers) {
    Tuning.Workers = Workers;
    return *this;
  }
  Session &tuneSimulate(bool Enable = true) {
    Tuning.Simulate = Enable;
    return *this;
  }

  //===--------------------------------------------------------------------===//
  // Introspection and execution
  //===--------------------------------------------------------------------===//

  /// The loaded program.
  const StencilProgram &program() const { return Program; }
  /// The current option block.
  const PipelineOptions &pipelineOptions() const { return Opts; }

  /// Runs the full pipeline under the current configuration. Validates
  /// the program and the simulator configuration up front, so
  /// inconsistent settings fail here with a typed error instead of deep
  /// inside the pipeline. Repeatable: each call runs a fresh copy of the
  /// program.
  Expected<PipelineResult> run();

  /// Runs only the compile half (runtime/Pipeline.h compilePipeline)
  /// under the current configuration: fusion, kernel compilation,
  /// dataflow analysis, estimates, partitioning. The returned plan is
  /// independent of this session and reusable across many \c runPlan
  /// calls — the serving layer caches plans across requests.
  Expected<CompiledPlan> compilePlan();

  /// Runs only the execute half on a previously compiled plan: simulation
  /// with device-loss recovery, then validation. The plan is read-only;
  /// concurrent \c runPlan calls on one shared plan are safe. Per-run
  /// knobs (engine, faults, checkpointing, validation) come from this
  /// session's current configuration, validated up front like \c run().
  /// Failures carry the structured \c sim::FailureReport (convertible to
  /// plain \c Error for generic propagation).
  Expected<PlanExecution, sim::SimFailure> runPlan(const CompiledPlan &Plan);

  /// Runs the mapping autotuner (tuner/Tuner.h) over this session's
  /// program and base configuration: searches vectorization width x
  /// fusion x device count x target utilization, validates the top
  /// candidates on the simulator, and returns the chosen plan plus the
  /// full report. Defined in sf_tuner (link it to use this). The no-arg
  /// overload assembles its options from the fluent tune* setters above;
  /// the explicit overload takes a fully-formed option block for axis
  /// overrides the setters do not cover.
  Expected<tuner::TuningOutcome> tune(const tuner::TuneOptions &Options);
  Expected<tuner::TuningOutcome> tune();

private:
  explicit Session(StencilProgram Program) : Program(std::move(Program)) {}

  /// Stored options + owned fault plan/tracer, validated.
  Expected<PipelineOptions> effectiveOptions() const;

  /// Stored autotuner knobs (the fluent tune* setters); folded into a
  /// tuner::TuneOptions by the no-argument tune() overload (Tuner.cpp).
  struct TuneKnobs {
    int Budget = 64;
    uint64_t Seed = 0;
    bool HaveSeed = false;
    int TopK = 3;
    int Workers = 0;
    bool Simulate = true;
  };

  StencilProgram Program;
  PipelineOptions Opts;
  std::optional<sim::FaultPlan> OwnedFaults;
  std::unique_ptr<sim::Tracer> OwnedTracer;
  TuneKnobs Tuning;
};

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_SESSION_H
