//===- runtime/InputData.h - Input field materialization ----------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic materialization of input fields from their data sources.
/// Both the reference executor and the hardware simulator obtain inputs
/// through this function, so their results are directly comparable.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_INPUTDATA_H
#define STENCILFLOW_RUNTIME_INPUTDATA_H

#include "ir/Field.h"
#include "ir/StencilProgram.h"

#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Materializes one field within \p IterationSpace. Values are rounded to
/// the field's data type.
std::vector<double> materializeField(const Field &Input,
                                     const Shape &IterationSpace);

/// Materializes every input of \p Program, keyed by field name.
std::map<std::string, std::vector<double>>
materializeInputs(const StencilProgram &Program);

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_INPUTDATA_H
