//===- runtime/ReferenceExecutor.cpp - Sequential CPU reference --------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ReferenceExecutor.h"

#include "core/ValidRegion.h"

#include <thread>

using namespace stencilflow;

namespace {

/// Precomputed access plan for one kernel input slot.
struct SlotPlan {
  const std::vector<double> *Data = nullptr;
  /// Program dimensions the field spans.
  std::vector<size_t> SpannedDims;
  /// Offset per spanned dimension.
  std::vector<int64_t> Offsets;
  /// Extents and row-major strides of the field's own shape.
  std::vector<int64_t> Extents;
  std::vector<int64_t> Strides;
  /// Boundary handling.
  BoundaryKind Boundary = BoundaryKind::Constant;
  double BoundaryValue = 0.0;

  /// Reads the slot's value for center \p Index (program-rank index).
  double read(const std::vector<int64_t> &Index) const {
    int64_t Linear = 0;
    bool InBounds = true;
    for (size_t Dim = 0, E = SpannedDims.size(); Dim != E; ++Dim) {
      int64_t Component = Index[SpannedDims[Dim]] + Offsets[Dim];
      if (Component < 0 || Component >= Extents[Dim]) {
        InBounds = false;
        break;
      }
      Linear += Component * Strides[Dim];
    }
    if (InBounds)
      return (*Data)[static_cast<size_t>(Linear)];
    if (Boundary == BoundaryKind::Constant)
      return BoundaryValue;
    // Copy: the value at offset 0 in all dimensions. The projected center
    // is always in bounds.
    int64_t Center = 0;
    for (size_t Dim = 0, E = SpannedDims.size(); Dim != E; ++Dim)
      Center += Index[SpannedDims[Dim]] * Strides[Dim];
    return (*Data)[static_cast<size_t>(Center)];
  }
};

/// Builds the slot plans for one node against the current field arrays.
std::vector<SlotPlan>
buildPlans(const StencilProgram &Program, const StencilNode &Node,
           const compute::Kernel &Kernel,
           const std::map<std::string, std::vector<double>> &Fields) {
  std::vector<SlotPlan> Plans;
  Plans.reserve(Kernel.inputs().size());
  for (const compute::KernelInput &Slot : Kernel.inputs()) {
    SlotPlan Plan;
    auto It = Fields.find(Slot.Field);
    assert(It != Fields.end() && "topological execution order violated");
    Plan.Data = &It->second;

    std::vector<bool> Mask = Program.fieldDimensionMask(Slot.Field);
    for (size_t Dim = 0; Dim != Mask.size(); ++Dim)
      if (Mask[Dim])
        Plan.SpannedDims.push_back(Dim);
    assert(Slot.Off.size() == Plan.SpannedDims.size() &&
           "offset rank mismatch survived validation");
    for (int Component : Slot.Off)
      Plan.Offsets.push_back(Component);

    Shape FieldShape = Program.fieldShape(Slot.Field);
    Plan.Extents = FieldShape.extents();
    Plan.Strides.assign(Plan.Extents.size(), 1);
    for (size_t Dim = Plan.Extents.size(); Dim-- > 1;)
      Plan.Strides[Dim - 1] = Plan.Strides[Dim] * Plan.Extents[Dim];

    BoundaryCondition Boundary = Node.boundaryFor(Slot.Field);
    Plan.Boundary = Boundary.Kind;
    Plan.BoundaryValue = Boundary.Value;
    Plans.push_back(std::move(Plan));
  }
  return Plans;
}

/// Evaluates node cells in [Begin, End) (linear cell range).
void evaluateRange(const StencilProgram &Program, const StencilNode &Node,
                   const compute::Kernel &Kernel,
                   const std::vector<SlotPlan> &Plans,
                   const ValidRegion &Region, int64_t Begin, int64_t End,
                   std::vector<double> &Output) {
  const Shape &Space = Program.IterationSpace;
  std::vector<int64_t> Index = Space.delinearize(Begin);
  std::vector<double> InputValues(Plans.size());
  std::vector<double> Scratch(Kernel.instructions().size());

  for (int64_t Cell = Begin; Cell != End; ++Cell) {
    for (size_t Slot = 0, E = Plans.size(); Slot != E; ++Slot)
      InputValues[Slot] = Plans[Slot].read(Index);
    double Value = Kernel.evaluate(InputValues.data(), Scratch.data());
    if (!Node.ShrinkOutput || Region.contains(Index))
      Output[static_cast<size_t>(Cell)] = Value;

    // Increment the multi-dimensional index (row-major).
    for (size_t Dim = Space.rank(); Dim-- > 0;) {
      if (++Index[Dim] < Space.extent(Dim))
        break;
      Index[Dim] = 0;
    }
  }
}

Expected<ExecutionResult>
run(const CompiledProgram &Compiled,
    const std::map<std::string, std::vector<double>> &Inputs, int Threads) {
  const StencilProgram &Program = Compiled.program();
  ExecutionResult Result;

  for (const Field &Input : Program.Inputs) {
    auto It = Inputs.find(Input.Name);
    if (It == Inputs.end())
      return makeError("missing data for input field '" + Input.Name + "'");
    int64_t ExpectedCells =
        Input.shapeWithin(Program.IterationSpace).numCells();
    if (static_cast<int64_t>(It->second.size()) != ExpectedCells)
      return makeError("input field '" + Input.Name +
                       "' has the wrong number of cells");
    Result.Fields[Input.Name] = It->second;
  }

  int64_t Cells = Program.IterationSpace.numCells();
  for (size_t NodeIndex : Compiled.topologicalOrder()) {
    const StencilNode &Node = Program.Nodes[NodeIndex];
    const compute::Kernel &Kernel = Compiled.kernel(NodeIndex);
    std::vector<SlotPlan> Plans =
        buildPlans(Program, Node, Kernel, Result.Fields);
    ValidRegion Region = computeValidRegion(Program, Node);
    std::vector<double> Output(static_cast<size_t>(Cells), 0.0);

    if (Threads <= 1) {
      evaluateRange(Program, Node, Kernel, Plans, Region, 0, Cells, Output);
    } else {
      std::vector<std::thread> Workers;
      int64_t Chunk = (Cells + Threads - 1) / Threads;
      for (int T = 0; T < Threads; ++T) {
        int64_t Begin = T * Chunk;
        int64_t End = std::min(Cells, Begin + Chunk);
        if (Begin >= End)
          break;
        Workers.emplace_back([&, Begin, End] {
          evaluateRange(Program, Node, Kernel, Plans, Region, Begin, End,
                        Output);
        });
      }
      for (std::thread &Worker : Workers)
        Worker.join();
    }
    Result.Fields[Node.Name] = std::move(Output);
  }
  return Result;
}

} // namespace

Expected<ExecutionResult> stencilflow::runReference(
    const CompiledProgram &Compiled,
    const std::map<std::string, std::vector<double>> &Inputs) {
  return run(Compiled, Inputs, 1);
}

Expected<ExecutionResult> stencilflow::runReferenceParallel(
    const CompiledProgram &Compiled,
    const std::map<std::string, std::vector<double>> &Inputs, int Threads) {
  return run(Compiled, Inputs, Threads);
}
