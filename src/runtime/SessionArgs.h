//===- runtime/SessionArgs.h - Flags -> Session configuration -----*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appliers that turn the shared flag packs (support/Args.h) into fluent
/// \c Session configuration. One place maps a flag name to the Session
/// setter it drives, so every CLI exposing `--fuse`, `--kernel-engine`,
/// `--checkpoint-every` or `--tune-budget` behaves identically. Lives in
/// the runtime layer because support cannot depend on Session.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_SESSIONARGS_H
#define STENCILFLOW_RUNTIME_SESSIONARGS_H

#include "compute/Engine.h"
#include "runtime/Session.h"
#include "support/Args.h"

namespace stencilflow {
namespace cli {

/// Applies the session flag pack (\c sessionFlagSpecs). The tracing
/// conflict rule lives with the caller: tools that also take --trace
/// should suppress --parallel themselves before calling this.
inline Error applySessionArgs(Session &S, const CommandLine &Args) {
  if (Args.has("vectorize"))
    S.vectorize(static_cast<int>(Args.getInt("vectorize", 1)));
  if (Args.has("temporal-degree"))
    S.temporalDegree(static_cast<int>(Args.getInt("temporal-degree", 1)));
  S.fuseStencils(Args.has("fuse"))
      .simplifyCode(Args.has("simplify"))
      .unconstrainedMemory(!Args.has("constrained-memory"))
      .stallTimeout(Args.getInt("stall-timeout", 0));
  if (Args.has("kernel-engine")) {
    Expected<compute::KernelEngine> Engine =
        compute::parseKernelEngine(Args.getString("kernel-engine"));
    if (!Engine)
      return Engine.takeError();
    S.kernelEngine(*Engine);
  }
  if (Args.has("parallel"))
    S.engine(sim::SimEngine::Parallel,
             static_cast<int>(Args.getInt("threads", 0)));
  return Error::success();
}

/// Applies the checkpoint flag pack (\c checkpointFlagSpecs) through the
/// granular fluent setters.
inline Error applyCheckpointArgs(Session &S, const CommandLine &Args) {
  if (Args.has("checkpoint-dir")) {
    S.checkpointDir(Args.getString("checkpoint-dir"))
        .checkpointEveryCycles(Args.getInt("checkpoint-every", 0))
        .checkpointEverySeconds(static_cast<double>(
            Args.getInt("checkpoint-every-seconds", 0)))
        .checkpointKeep(static_cast<int>(Args.getInt("checkpoint-keep", 3)))
        .checkpointCrashAfter(
            static_cast<int>(Args.getInt("crash-after-checkpoints", 0)));
  }
  if (Args.has("resume"))
    S.resumeFrom(Args.getString("resume"));
  return Error::success();
}

/// Applies the autotuner flag pack (\c tuneFlagSpecs) through the fluent
/// tune* setters, seeding the no-argument \c Session::tune() overload.
/// (--tune-beam is a search-axis override outside the fluent surface;
/// tools that expose it fold it into an explicit TuneOptions instead.)
inline Error applyTuneArgs(Session &S, const CommandLine &Args) {
  S.tuneBudget(static_cast<int>(Args.getInt("tune-budget", 64)))
      .tuneTopK(static_cast<int>(Args.getInt("tune-top-k", 3)))
      .tuneWorkers(static_cast<int>(Args.getInt("tune-workers", 0)))
      .tuneSimulate(!Args.has("no-simulate"));
  if (Args.has("tune-seed"))
    S.tuneSeed(static_cast<uint64_t>(Args.getInt("tune-seed", 0)));
  return Error::success();
}

} // namespace cli
} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_SESSIONARGS_H
