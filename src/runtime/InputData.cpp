//===- runtime/InputData.cpp - Input field materialization -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/InputData.h"

#include "support/Random.h"

using namespace stencilflow;

std::vector<double> stencilflow::materializeField(const Field &Input,
                                                  const Shape &IterationSpace) {
  Shape FieldShape = Input.shapeWithin(IterationSpace);
  int64_t Cells = FieldShape.numCells();
  std::vector<double> Data(static_cast<size_t>(Cells));

  auto round = [&](double Value) {
    if (Input.Type == DataType::Float32)
      return static_cast<double>(static_cast<float>(Value));
    return Value;
  };

  switch (Input.Source.SourceKind) {
  case DataSource::Kind::Zero:
    break;
  case DataSource::Kind::Constant:
    for (double &Cell : Data)
      Cell = round(Input.Source.Value);
    break;
  case DataSource::Kind::Random: {
    Random Rng(Input.Source.Seed);
    for (double &Cell : Data)
      Cell = round(Rng.nextDouble());
    break;
  }
  case DataSource::Kind::Ramp:
    for (int64_t Cell = 0; Cell != Cells; ++Cell)
      Data[static_cast<size_t>(Cell)] =
          round(static_cast<double>(Cell) * Input.Source.Value);
    break;
  }
  return Data;
}

std::map<std::string, std::vector<double>>
stencilflow::materializeInputs(const StencilProgram &Program) {
  std::map<std::string, std::vector<double>> Inputs;
  for (const Field &Input : Program.Inputs)
    Inputs[Input.Name] = materializeField(Input, Program.IterationSpace);
  return Inputs;
}
