//===- runtime/ReferenceExecutor.h - Sequential CPU reference -----*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference CPU execution of stencil programs (paper Sec. VI-C): stencil
/// evaluations are executed sequentially in topological order — no fusion
/// or parallelism between stencil evaluations — over full arrays, and are
/// used to verify the generated hardware (here: simulated) kernels.
///
/// A multi-threaded variant parallelizing over the outermost dimension is
/// provided as the load/store-architecture comparator for the application
/// study (Tab. II "Xeon 12C" row).
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_RUNTIME_REFERENCEEXECUTOR_H
#define STENCILFLOW_RUNTIME_REFERENCEEXECUTOR_H

#include "core/CompiledProgram.h"
#include "support/Error.h"

#include <map>
#include <string>
#include <vector>

namespace stencilflow {

/// Results of a program execution: one array per field (inputs and all
/// node outputs), in row-major memory order.
struct ExecutionResult {
  std::map<std::string, std::vector<double>> Fields;

  /// Returns the array for \p Name; it must exist.
  const std::vector<double> &field(const std::string &Name) const {
    auto It = Fields.find(Name);
    assert(It != Fields.end() && "field() of an unknown field");
    return It->second;
  }
};

/// Executes \p Compiled sequentially with the given inputs (from
/// materializeInputs or custom data). Missing inputs are an error.
Expected<ExecutionResult>
runReference(const CompiledProgram &Compiled,
             const std::map<std::string, std::vector<double>> &Inputs);

/// Multi-threaded execution: each stencil is still evaluated in topological
/// order, but its iteration space is split over \p Threads worker threads
/// along the outermost dimension. Results are bit-identical to
/// runReference.
Expected<ExecutionResult>
runReferenceParallel(const CompiledProgram &Compiled,
                     const std::map<std::string, std::vector<double>> &Inputs,
                     int Threads);

} // namespace stencilflow

#endif // STENCILFLOW_RUNTIME_REFERENCEEXECUTOR_H
