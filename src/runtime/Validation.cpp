//===- runtime/Validation.cpp - Result comparison -----------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Validation.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace stencilflow;

ValidationReport stencilflow::validateField(const std::string &Name,
                                            const std::vector<double> &Actual,
                                            const std::vector<double> &Expected,
                                            double Tolerance) {
  ValidationReport Report;
  if (Actual.size() != Expected.size()) {
    Report.Passed = false;
    Report.Summary = formatString(
        "field '%s': size mismatch (%zu vs %zu cells)", Name.c_str(),
        Actual.size(), Expected.size());
    return Report;
  }
  for (size_t Cell = 0, E = Actual.size(); Cell != E; ++Cell) {
    double A = Actual[Cell], B = Expected[Cell];
    bool Equal = (A == B) || (std::isnan(A) && std::isnan(B));
    double AbsErr = Equal ? 0.0 : std::fabs(A - B);
    if (!Equal && AbsErr > Tolerance) {
      if (Report.FirstMismatch < 0)
        Report.FirstMismatch = static_cast<int64_t>(Cell);
      ++Report.Mismatches;
      Report.MaxAbsoluteError = std::max(Report.MaxAbsoluteError, AbsErr);
    }
  }
  Report.Passed = Report.Mismatches == 0;
  if (Report.Passed)
    Report.Summary =
        formatString("field '%s': OK (%zu cells)", Name.c_str(),
                     Actual.size());
  else
    Report.Summary = formatString(
        "field '%s': %lld mismatching cell(s), first at %lld, max abs "
        "error %g",
        Name.c_str(), static_cast<long long>(Report.Mismatches),
        static_cast<long long>(Report.FirstMismatch),
        Report.MaxAbsoluteError);
  return Report;
}
