//===- runtime/Pipeline.cpp - End-to-end driver --------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Pipeline.h"

#include "core/ValidRegion.h"
#include "runtime/InputData.h"
#include "sim/Checkpoint.h"
#include "compute/Simplify.h"
#include "frontend/SemanticAnalysis.h"
#include "sdfg/StencilFusion.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;

Expected<PipelineResult>
stencilflow::runPipeline(StencilProgram Program,
                         const PipelineOptions &Options) {
  PipelineResult Result;

  // Domain-specific optimization: aggressive stencil fusion (Sec. V-B).
  if (Options.FuseStencils) {
    Expected<FusionReport> Fusion = fuseAllStencils(Program);
    if (!Fusion)
      return Fusion.takeError().addContext("stencil fusion");
    Result.FusedPairs = Fusion->FusedPairs;
  }

  // Algebraic simplification (after fusion, which exposes identities).
  if (Options.SimplifyCode) {
    for (StencilNode &Node : Program.Nodes)
      compute::simplifyNodeCode(Node);
    if (Error Err = analyzeProgram(Program))
      return Err.addContext("post-simplification analysis");
  }

  // Compilation and dataflow analysis.
  Expected<CompiledProgram> Compiled =
      CompiledProgram::compile(std::move(Program), Options.Kernel);
  if (!Compiled)
    return Compiled.takeError().addContext("compilation");
  Result.Compiled = Compiled.takeValue();

  Expected<DataflowAnalysis> Dataflow =
      analyzeDataflow(Result.Compiled, Options.Latencies);
  if (!Dataflow)
    return Dataflow.takeError().addContext("dataflow analysis");
  Result.Dataflow = Dataflow.takeValue();

  Result.Runtime = computeRuntimeEstimate(Result.Compiled, Result.Dataflow);
  Result.Resources = estimateProgramResources(
      Result.Compiled, Result.Dataflow, Options.Partitioning.ResourceConfig);
  Result.FrequencyMHz =
      estimateFrequencyMHz(Result.Resources, Options.Partitioning.Device,
                           Options.Partitioning.ResourceConfig);

  // Device mapping.
  PartitionOptions PartOptions = Options.Partitioning;
  if (!Options.AllowMultiDevice)
    PartOptions.MaxDevices = 1;
  Expected<Partition> Placement =
      partitionProgram(Result.Compiled, Result.Dataflow, PartOptions);
  if (!Placement)
    return Placement.takeError().addContext("partitioning");
  Result.Placement = Placement.takeValue();

  // Code generation.
  if (Options.EmitCode) {
    Expected<std::vector<GeneratedSource>> Sources = emitOpenCL(
        Result.Compiled, Result.Dataflow,
        Result.Placement.numDevices() > 1 ? &Result.Placement : nullptr);
    if (!Sources)
      return Sources.takeError().addContext("code generation");
    Result.Sources = Sources.takeValue();
  }

  // Simulated execution and validation, with graceful degradation: a
  // permanent device loss re-partitions the DAG across the survivors and
  // re-runs (paper Sec. VI-B fabrics must outlive single-node failures).
  if (Options.Simulate) {
    auto Inputs = materializeInputs(Result.Compiled.program());
    sim::SimConfig SimConfig = Options.Simulator;
    sim::FaultPlan SurvivorPlan; // Retry plan: device failures stripped.

    // Explicit resume: the user pointed at a snapshot (or a directory of
    // them); failing to load it is a hard error, unlike the best-effort
    // automatic reload on device loss below.
    sim::MachineSnapshot ResumeSnap;
    bool HaveResume = false;
    if (!Options.ResumeFrom.empty()) {
      Expected<std::string> Latest =
          sim::findLatestSnapshot(Options.ResumeFrom);
      if (!Latest)
        return Latest.takeError().addContext("resolving --resume");
      Expected<sim::MachineSnapshot> Snap =
          sim::readSnapshotFile((*Latest));
      if (!Snap)
        return Snap.takeError().addContext("loading resume snapshot");
      ResumeSnap = Snap.takeValue();
      HaveResume = true;
      Result.Recovery.Log.push_back(formatString(
          "resuming from snapshot '%s' at cycle %lld",
          (*Latest).c_str(),
          static_cast<long long>(ResumeSnap.Cycle)));
    }

    for (int Attempt = 1;; ++Attempt) {
      Result.Recovery.Attempts = Attempt;
      Expected<sim::Machine> M = sim::Machine::build(
          Result.Compiled, Result.Dataflow,
          Result.Placement.numDevices() > 1 ? &Result.Placement : nullptr,
          SimConfig);
      if (!M)
        return M.takeError().addContext("simulator construction");
      Expected<sim::SimResult, sim::SimFailure> Sim =
          M->run(Inputs, HaveResume ? &ResumeSnap : nullptr);
      if (Sim) {
        Result.Simulation = Sim.takeValue();
        if (Result.Simulation.Stats.ResumedFromCycle >= 0)
          Result.Recovery.CyclesSavedByCheckpoint =
              Result.Simulation.Stats.ResumedFromCycle;
        for (const auto &[Name, Link] : Result.Simulation.Stats.Links) {
          Result.Recovery.Retransmissions += Link.Retransmissions;
          Result.Recovery.CorruptedVectors += Link.CorruptedVectors;
        }
        if (Attempt > 1 || Result.Recovery.Retransmissions > 0 ||
            Result.Recovery.CorruptedVectors > 0)
          Result.Recovery.Log.push_back(formatString(
              "attempt %d: completed on %zu device(s), absorbing %lld "
              "corrupted vector(s) via %lld retransmission(s)",
              Attempt, Result.Placement.numDevices(),
              static_cast<long long>(Result.Recovery.CorruptedVectors),
              static_cast<long long>(Result.Recovery.Retransmissions)));
        break;
      }
      // The structured report travels with the failure itself.
      sim::SimFailure Fail = Sim.takeError();
      const sim::FailureReport &Failure = Fail.report();
      Error Err = Fail;
      // Each lost node shrinks the testbed's device pool by one; the
      // program is re-partitioned across the survivors (a spare takes the
      // failed node's place when the pool still has slack). Unrecoverable
      // when the pool is exhausted.
      int Survivors = PartOptions.MaxDevices -
                      (Result.Recovery.DevicesLost + 1);
      bool Recoverable = Err.code() == ErrorCode::DeviceLost &&
                         Options.RecoverFromDeviceLoss &&
                         Attempt < Options.MaxSimAttempts &&
                         Survivors >= 1;
      if (!Recoverable)
        return Err.addContext("simulation");

      ++Result.Recovery.DevicesLost;
      Result.Recovery.Log.push_back(formatString(
          "attempt %d: device %d lost at cycle %lld; re-partitioning "
          "across a pool of %d surviving device(s)",
          Attempt, Failure.FailedDevice,
          static_cast<long long>(Failure.Cycle), Survivors));

      // Incremental recovery: when the run was checkpointing, reload the
      // latest snapshot and rehydrate it onto the survivor placement so
      // the retry replays only the tail since that snapshot instead of
      // the whole run. Best-effort — a missing or unreadable snapshot
      // falls back to the pre-checkpoint behavior (restart from zero).
      HaveResume = false;
      if (!SimConfig.CheckpointDir.empty()) {
        Expected<std::string> Latest =
            sim::findLatestSnapshot(SimConfig.CheckpointDir);
        Expected<sim::MachineSnapshot> Snap =
            Latest ? sim::readSnapshotFile((*Latest))
                   : Expected<sim::MachineSnapshot>(Latest.takeError());
        if (Snap) {
          ResumeSnap = Snap.takeValue();
          HaveResume = true;
          Result.Recovery.Log.push_back(formatString(
              "attempt %d: rehydrating survivors from checkpoint at "
              "cycle %lld (skipping %lld completed cycle(s))",
              Attempt + 1, static_cast<long long>(ResumeSnap.Cycle),
              static_cast<long long>(ResumeSnap.Cycle)));
        } else {
          Error Why = Snap.takeError();
          Result.Recovery.Log.push_back(formatString(
              "attempt %d: no usable checkpoint (%s); restarting from "
              "cycle zero",
              Attempt + 1, Why.message().c_str()));
        }
      }

      PartitionOptions Degraded = PartOptions;
      Degraded.MaxDevices = Survivors;
      Expected<Partition> Replacement =
          partitionProgram(Result.Compiled, Result.Dataflow, Degraded);
      if (!Replacement)
        return Replacement.takeError().addContext(formatString(
            "re-partitioning after losing device %d",
            Failure.FailedDevice));
      Result.Placement = Replacement.takeValue();

      // The failed node is gone; keep only the survivors' faults.
      if (SimConfig.Faults) {
        SurvivorPlan = *SimConfig.Faults;
        SurvivorPlan.Events.erase(
            std::remove_if(SurvivorPlan.Events.begin(),
                           SurvivorPlan.Events.end(),
                           [](const sim::FaultEvent &E) {
                             return E.Kind == sim::FaultKind::DeviceFailure;
                           }),
            SurvivorPlan.Events.end());
        SimConfig.Faults = &SurvivorPlan;
      }
    }

    if (Options.Validate) {
      Expected<ExecutionResult> Reference =
          runReference(Result.Compiled, Inputs);
      if (!Reference)
        return Reference.takeError().addContext("reference execution");
      for (const std::string &Output :
           Result.Compiled.program().Outputs) {
        ValidationReport Report = validateField(
            Output, Result.Simulation.Outputs.at(Output),
            Reference->field(Output), Options.Tolerance);
        Result.ValidationPassed &= Report.Passed;
        Result.Validations.push_back(std::move(Report));
      }
    }
  }
  return Result;
}
