//===- runtime/Pipeline.cpp - End-to-end driver --------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Pipeline.h"

#include "core/ValidRegion.h"
#include "runtime/InputData.h"
#include "compute/Simplify.h"
#include "frontend/SemanticAnalysis.h"
#include "sdfg/StencilFusion.h"

using namespace stencilflow;

Expected<PipelineResult>
stencilflow::runPipeline(StencilProgram Program,
                         const PipelineOptions &Options) {
  PipelineResult Result;

  // Domain-specific optimization: aggressive stencil fusion (Sec. V-B).
  if (Options.FuseStencils) {
    Expected<FusionReport> Fusion = fuseAllStencils(Program);
    if (!Fusion)
      return Fusion.takeError().addContext("stencil fusion");
    Result.FusedPairs = Fusion->FusedPairs;
  }

  // Algebraic simplification (after fusion, which exposes identities).
  if (Options.SimplifyCode) {
    for (StencilNode &Node : Program.Nodes)
      compute::simplifyNodeCode(Node);
    if (Error Err = analyzeProgram(Program))
      return Err.addContext("post-simplification analysis");
  }

  // Compilation and dataflow analysis.
  Expected<CompiledProgram> Compiled =
      CompiledProgram::compile(std::move(Program), Options.Kernel);
  if (!Compiled)
    return Compiled.takeError().addContext("compilation");
  Result.Compiled = Compiled.takeValue();

  Expected<DataflowAnalysis> Dataflow =
      analyzeDataflow(Result.Compiled, Options.Latencies);
  if (!Dataflow)
    return Dataflow.takeError().addContext("dataflow analysis");
  Result.Dataflow = Dataflow.takeValue();

  Result.Runtime = computeRuntimeEstimate(Result.Compiled, Result.Dataflow);
  Result.Resources = estimateProgramResources(
      Result.Compiled, Result.Dataflow, Options.Partitioning.ResourceConfig);
  Result.FrequencyMHz =
      estimateFrequencyMHz(Result.Resources, Options.Partitioning.Device,
                           Options.Partitioning.ResourceConfig);

  // Device mapping.
  PartitionOptions PartOptions = Options.Partitioning;
  if (!Options.AllowMultiDevice)
    PartOptions.MaxDevices = 1;
  Expected<Partition> Placement =
      partitionProgram(Result.Compiled, Result.Dataflow, PartOptions);
  if (!Placement)
    return Placement.takeError().addContext("partitioning");
  Result.Placement = Placement.takeValue();

  // Code generation.
  if (Options.EmitCode) {
    Expected<std::vector<GeneratedSource>> Sources = emitOpenCL(
        Result.Compiled, Result.Dataflow,
        Result.Placement.numDevices() > 1 ? &Result.Placement : nullptr);
    if (!Sources)
      return Sources.takeError().addContext("code generation");
    Result.Sources = Sources.takeValue();
  }

  // Simulated execution and validation.
  if (Options.Simulate) {
    Expected<sim::Machine> M = sim::Machine::build(
        Result.Compiled, Result.Dataflow,
        Result.Placement.numDevices() > 1 ? &Result.Placement : nullptr,
        Options.Simulator);
    if (!M)
      return M.takeError().addContext("simulator construction");
    auto Inputs = materializeInputs(Result.Compiled.program());
    Expected<sim::SimResult> Sim = M->run(Inputs);
    if (!Sim)
      return Sim.takeError().addContext("simulation");
    Result.Simulation = Sim.takeValue();

    if (Options.Validate) {
      Expected<ExecutionResult> Reference =
          runReference(Result.Compiled, Inputs);
      if (!Reference)
        return Reference.takeError().addContext("reference execution");
      for (const std::string &Output :
           Result.Compiled.program().Outputs) {
        ValidationReport Report = validateField(
            Output, Result.Simulation.Outputs.at(Output),
            Reference->field(Output), Options.Tolerance);
        Result.ValidationPassed &= Report.Passed;
        Result.Validations.push_back(std::move(Report));
      }
    }
  }
  return Result;
}
