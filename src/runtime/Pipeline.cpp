//===- runtime/Pipeline.cpp - End-to-end driver --------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Pipeline.h"

#include "core/ValidRegion.h"
#include "runtime/InputData.h"
#include "sim/Checkpoint.h"
#include "compute/Simplify.h"
#include "frontend/SemanticAnalysis.h"
#include "sdfg/StencilFusion.h"
#include "sdfg/TemporalUnroll.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace stencilflow;

Expected<CompiledPlan>
stencilflow::compilePipeline(StencilProgram Program,
                             const PipelineOptions &Options) {
  CompiledPlan Plan;

  // Temporal blocking first: unroll T timesteps into one chained graph.
  // Fusion and the width knob then see an ordinary (longer) program.
  if (Options.TemporalDegree != 1) {
    Expected<StencilProgram> Unrolled =
        sdfg::unrollTimeSteps(Program, Options.TemporalDegree);
    if (!Unrolled)
      return Unrolled.takeError().addContext("temporal unrolling");
    Program = Unrolled.takeValue();
  }

  // Domain-specific optimization: aggressive stencil fusion (Sec. V-B).
  if (Options.FuseStencils) {
    Expected<FusionReport> Fusion = fuseAllStencils(Program);
    if (!Fusion)
      return Fusion.takeError().addContext("stencil fusion");
    Plan.FusedPairs = Fusion->FusedPairs;
  }

  // Algebraic simplification (after fusion, which exposes identities).
  if (Options.SimplifyCode) {
    for (StencilNode &Node : Program.Nodes)
      compute::simplifyNodeCode(Node);
    if (Error Err = analyzeProgram(Program))
      return Err.addContext("post-simplification analysis");
  }

  // Compilation and dataflow analysis.
  Expected<CompiledProgram> Compiled =
      CompiledProgram::compile(std::move(Program), Options.Kernel);
  if (!Compiled)
    return Compiled.takeError().addContext("compilation");
  Plan.Compiled = Compiled.takeValue();

  Expected<DataflowAnalysis> Dataflow =
      analyzeDataflow(Plan.Compiled, Options.Latencies);
  if (!Dataflow)
    return Dataflow.takeError().addContext("dataflow analysis");
  Plan.Dataflow = Dataflow.takeValue();

  Plan.Runtime = computeRuntimeEstimate(Plan.Compiled, Plan.Dataflow);
  Plan.Resources = estimateProgramResources(
      Plan.Compiled, Plan.Dataflow, Options.Partitioning.ResourceConfig);
  Plan.FrequencyMHz =
      estimateFrequencyMHz(Plan.Resources, Options.Partitioning.Device,
                           Options.Partitioning.ResourceConfig);

  // Device mapping.
  PartitionOptions PartOptions = Options.Partitioning;
  if (!Options.AllowMultiDevice)
    PartOptions.MaxDevices = 1;
  Expected<Partition> Placement =
      partitionProgram(Plan.Compiled, Plan.Dataflow, PartOptions);
  if (!Placement)
    return Placement.takeError().addContext("partitioning");
  Plan.Placement = Placement.takeValue();

  // Code generation.
  if (Options.EmitCode) {
    Expected<std::vector<GeneratedSource>> Sources = emitOpenCL(
        Plan.Compiled, Plan.Dataflow,
        Plan.Placement.numDevices() > 1 ? &Plan.Placement : nullptr);
    if (!Sources)
      return Sources.takeError().addContext("code generation");
    Plan.Sources = Sources.takeValue();
  }
  return Plan;
}

Expected<PlanExecution, sim::SimFailure>
stencilflow::executePlan(const CompiledPlan &Plan,
                         const PipelineOptions &Options) {
  PlanExecution Exec;
  Exec.Placement = Plan.Placement;
  if (!Options.Simulate)
    return Exec;

  // Simulated execution and validation, with graceful degradation: a
  // permanent device loss re-partitions the DAG across the survivors and
  // re-runs (paper Sec. VI-B fabrics must outlive single-node failures).
  PartitionOptions PartOptions = Options.Partitioning;
  if (!Options.AllowMultiDevice)
    PartOptions.MaxDevices = 1;

  auto Inputs = materializeInputs(Plan.Compiled.program());
  sim::SimConfig SimConfig = Options.Simulator;
  sim::FaultPlan SurvivorPlan; // Retry plan: device failures stripped.

  // Explicit resume: the user pointed at a snapshot (or a directory of
  // them); failing to load it is a hard error, unlike the best-effort
  // automatic reload on device loss below.
  sim::MachineSnapshot ResumeSnap;
  bool HaveResume = false;
  if (!Options.ResumeFrom.empty()) {
    Expected<std::string> Latest =
        sim::findLatestSnapshot(Options.ResumeFrom);
    if (!Latest)
      return Latest.takeError().addContext("resolving --resume");
    Expected<sim::MachineSnapshot> Snap = sim::readSnapshotFile((*Latest));
    if (!Snap)
      return Snap.takeError().addContext("loading resume snapshot");
    ResumeSnap = Snap.takeValue();
    HaveResume = true;
    Exec.Recovery.Log.push_back(formatString(
        "resuming from snapshot '%s' at cycle %lld", (*Latest).c_str(),
        static_cast<long long>(ResumeSnap.Cycle)));
  }

  for (int Attempt = 1;; ++Attempt) {
    Exec.Recovery.Attempts = Attempt;
    Expected<sim::Machine> M = sim::Machine::build(
        Plan.Compiled, Plan.Dataflow,
        Exec.Placement.numDevices() > 1 ? &Exec.Placement : nullptr,
        SimConfig);
    if (!M)
      return M.takeError().addContext("simulator construction");
    Expected<sim::SimResult, sim::SimFailure> Sim =
        M->run(Inputs, HaveResume ? &ResumeSnap : nullptr);
    if (Sim) {
      Exec.Simulation = Sim.takeValue();
      if (Exec.Simulation.Stats.ResumedFromCycle >= 0)
        Exec.Recovery.CyclesSavedByCheckpoint =
            Exec.Simulation.Stats.ResumedFromCycle;
      for (const auto &[Name, Link] : Exec.Simulation.Stats.Links) {
        Exec.Recovery.Retransmissions += Link.Retransmissions;
        Exec.Recovery.CorruptedVectors += Link.CorruptedVectors;
      }
      if (Attempt > 1 || Exec.Recovery.Retransmissions > 0 ||
          Exec.Recovery.CorruptedVectors > 0)
        Exec.Recovery.Log.push_back(formatString(
            "attempt %d: completed on %zu device(s), absorbing %lld "
            "corrupted vector(s) via %lld retransmission(s)",
            Attempt, Exec.Placement.numDevices(),
            static_cast<long long>(Exec.Recovery.CorruptedVectors),
            static_cast<long long>(Exec.Recovery.Retransmissions)));
      break;
    }
    // The structured report travels with the failure itself.
    sim::SimFailure Fail = Sim.takeError();
    const sim::FailureReport &Failure = Fail.report();
    // Each lost node shrinks the testbed's device pool by one; the
    // program is re-partitioned across the survivors (a spare takes the
    // failed node's place when the pool still has slack). Unrecoverable
    // when the pool is exhausted.
    int Survivors =
        PartOptions.MaxDevices - (Exec.Recovery.DevicesLost + 1);
    bool Recoverable = Fail.code() == ErrorCode::DeviceLost &&
                       Options.RecoverFromDeviceLoss &&
                       Attempt < Options.MaxSimAttempts && Survivors >= 1;
    if (!Recoverable)
      return Fail.addContext("simulation");

    ++Exec.Recovery.DevicesLost;
    Exec.Recovery.Log.push_back(formatString(
        "attempt %d: device %d lost at cycle %lld; re-partitioning "
        "across a pool of %d surviving device(s)",
        Attempt, Failure.FailedDevice,
        static_cast<long long>(Failure.Cycle), Survivors));

    // Incremental recovery: when the run was checkpointing, reload the
    // latest snapshot and rehydrate it onto the survivor placement so
    // the retry replays only the tail since that snapshot instead of
    // the whole run. Best-effort — a missing or unreadable snapshot
    // falls back to the pre-checkpoint behavior (restart from zero).
    HaveResume = false;
    if (!SimConfig.CheckpointDir.empty()) {
      Expected<std::string> Latest =
          sim::findLatestSnapshot(SimConfig.CheckpointDir);
      Expected<sim::MachineSnapshot> Snap =
          Latest ? sim::readSnapshotFile((*Latest))
                 : Expected<sim::MachineSnapshot>(Latest.takeError());
      if (Snap) {
        ResumeSnap = Snap.takeValue();
        HaveResume = true;
        Exec.Recovery.Log.push_back(formatString(
            "attempt %d: rehydrating survivors from checkpoint at "
            "cycle %lld (skipping %lld completed cycle(s))",
            Attempt + 1, static_cast<long long>(ResumeSnap.Cycle),
            static_cast<long long>(ResumeSnap.Cycle)));
      } else {
        Error Why = Snap.takeError();
        Exec.Recovery.Log.push_back(formatString(
            "attempt %d: no usable checkpoint (%s); restarting from "
            "cycle zero",
            Attempt + 1, Why.message().c_str()));
      }
    }

    PartitionOptions Degraded = PartOptions;
    Degraded.MaxDevices = Survivors;
    Expected<Partition> Replacement =
        partitionProgram(Plan.Compiled, Plan.Dataflow, Degraded);
    if (!Replacement)
      return Replacement.takeError().addContext(formatString(
          "re-partitioning after losing device %d", Failure.FailedDevice));
    Exec.Placement = Replacement.takeValue();

    // The failed node is gone; keep only the survivors' faults.
    if (SimConfig.Faults) {
      SurvivorPlan = *SimConfig.Faults;
      SurvivorPlan.Events.erase(
          std::remove_if(SurvivorPlan.Events.begin(),
                         SurvivorPlan.Events.end(),
                         [](const sim::FaultEvent &E) {
                           return E.Kind == sim::FaultKind::DeviceFailure;
                         }),
          SurvivorPlan.Events.end());
      SimConfig.Faults = &SurvivorPlan;
    }
  }

  if (Options.Validate) {
    Expected<ExecutionResult> Reference =
        runReference(Plan.Compiled, Inputs);
    if (!Reference)
      return Reference.takeError().addContext("reference execution");
    for (const std::string &Output : Plan.Compiled.program().Outputs) {
      ValidationReport Report = validateField(
          Output, Exec.Simulation.Outputs.at(Output),
          Reference->field(Output), Options.Tolerance);
      Exec.ValidationPassed &= Report.Passed;
      Exec.Validations.push_back(std::move(Report));
    }
  }
  return Exec;
}

Expected<PipelineResult>
stencilflow::runPipeline(StencilProgram Program,
                         const PipelineOptions &Options) {
  Expected<CompiledPlan> Plan =
      compilePipeline(std::move(Program), Options);
  if (!Plan)
    return Plan.takeError();
  Expected<PlanExecution, sim::SimFailure> Exec = executePlan(*Plan, Options);
  if (!Exec)
    return Error(Exec.takeError());

  PipelineResult Result;
  Result.Compiled = std::move(Plan->Compiled);
  Result.Dataflow = std::move(Plan->Dataflow);
  Result.Runtime = Plan->Runtime;
  Result.Resources = Plan->Resources;
  Result.FrequencyMHz = Plan->FrequencyMHz;
  Result.Sources = std::move(Plan->Sources);
  Result.FusedPairs = Plan->FusedPairs;
  Result.Placement = std::move(Exec->Placement);
  Result.Simulation = std::move(Exec->Simulation);
  Result.Validations = std::move(Exec->Validations);
  Result.ValidationPassed = Exec->ValidationPassed;
  Result.Recovery = std::move(Exec->Recovery);
  return Result;
}
