//===- workloads/Workloads.cpp - Benchmark stencil programs -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace stencilflow;

namespace {

/// Adds a full-rank random input field.
void addInput(StencilProgram &Program, const std::string &Name,
              uint64_t Seed) {
  Field Input;
  Input.Name = Name;
  Input.Type = DataType::Float32;
  Input.DimensionMask = std::vector<bool>(Program.IterationSpace.rank(),
                                          true);
  Input.Source = DataSource::random(Seed);
  Program.Inputs.push_back(std::move(Input));
}

/// Adds a 1D input spanning only dimension \p Dim.
void addLineInput(StencilProgram &Program, const std::string &Name,
                  size_t Dim, uint64_t Seed) {
  Field Input;
  Input.Name = Name;
  Input.Type = DataType::Float32;
  Input.DimensionMask = std::vector<bool>(Program.IterationSpace.rank(),
                                          false);
  Input.DimensionMask[Dim] = true;
  Input.Source = DataSource::random(Seed);
  Program.Inputs.push_back(std::move(Input));
}

/// Adds a stencil node from source with constant-zero boundaries on every
/// field it reads.
void addStencil(StencilProgram &Program, const std::string &Name,
                const std::string &Source) {
  StencilNode Node;
  Node.Name = Name;
  Node.Type = DataType::Float32;
  Expected<StencilCode> Code = parseStencilCode(Source);
  assert(Code && "workload stencil failed to parse");
  Node.Code = Code.takeValue();
  Program.Nodes.push_back(std::move(Node));
  // Boundaries are declared after analysis, once the accessed fields are
  // known.
  StencilNode &Added = Program.Nodes.back();
  Error Err = analyzeNode(Program, Added);
  assert(!Err && "workload stencil failed analysis");
  (void)Err;
  for (const FieldAccesses &FA : Added.Accesses)
    Added.Boundaries[FA.Field] = BoundaryCondition::constant(0.0);
}

/// Finalizes and validates a workload program.
StencilProgram finish(StencilProgram Program) {
  Error Err = analyzeProgram(Program);
  assert(!Err && "workload program failed analysis");
  (void)Err;
  return Program;
}

} // namespace

StencilProgram workloads::jacobi2dChain(int Length, int64_t J, int64_t I,
                                        int VectorWidth) {
  assert(Length >= 1);
  StencilProgram Program;
  Program.Name = formatString("jacobi2d_x%d", Length);
  Program.IterationSpace = Shape({J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "a0", 19);
  for (int Step = 0; Step < Length; ++Step) {
    std::string In = formatString("a%d", Step);
    std::string Out = formatString("a%d", Step + 1);
    addStencil(Program, Out,
               formatString("%s = 0.2 * (%s[0,0] + %s[0,-1] + %s[0,1] + "
                            "%s[-1,0] + %s[1,0]);",
                            Out.c_str(), In.c_str(), In.c_str(), In.c_str(),
                            In.c_str(), In.c_str()));
  }
  Program.Outputs = {formatString("a%d", Length)};
  Program.TimeLoop = {{Program.Outputs.front(), "a0"}};
  return finish(std::move(Program));
}

StencilProgram workloads::jacobi3dChain(int Length, int64_t K, int64_t J,
                                        int64_t I, int VectorWidth) {
  assert(Length >= 1);
  StencilProgram Program;
  Program.Name = formatString("jacobi3d_x%d", Length);
  Program.IterationSpace = Shape({K, J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "a0", 11);
  for (int Step = 0; Step < Length; ++Step) {
    std::string In = formatString("a%d", Step);
    std::string Out = formatString("a%d", Step + 1);
    addStencil(Program, Out,
               formatString("%s = 0.142857 * (%s[0,0,0] + %s[-1,0,0] + "
                            "%s[1,0,0] + %s[0,-1,0] + %s[0,1,0] + "
                            "%s[0,0,-1] + %s[0,0,1]);",
                            Out.c_str(), In.c_str(), In.c_str(), In.c_str(),
                            In.c_str(), In.c_str(), In.c_str(), In.c_str()));
  }
  Program.Outputs = {formatString("a%d", Length)};
  Program.TimeLoop = {{Program.Outputs.front(), "a0"}};
  return finish(std::move(Program));
}

StencilProgram workloads::diffusion2dChain(int Length, int64_t J, int64_t I,
                                           int VectorWidth) {
  assert(Length >= 1);
  StencilProgram Program;
  Program.Name = formatString("diffusion2d_x%d", Length);
  Program.IterationSpace = Shape({J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "a0", 13);
  for (int Step = 0; Step < Length; ++Step) {
    std::string In = formatString("a%d", Step);
    std::string Out = formatString("a%d", Step + 1);
    // Per-direction coefficients (cc, cw, ce, cn, cs), the Zohouri et al.
    // diffusion kernel shape: 4 additions + 5 multiplications.
    addStencil(Program, Out,
               formatString("%s = 0.6 * %s[0,0] + 0.1 * %s[0,-1] + 0.1 * "
                            "%s[0,1] + 0.1 * %s[-1,0] + 0.1 * %s[1,0];",
                            Out.c_str(), In.c_str(), In.c_str(), In.c_str(),
                            In.c_str(), In.c_str()));
  }
  Program.Outputs = {formatString("a%d", Length)};
  Program.TimeLoop = {{Program.Outputs.front(), "a0"}};
  return finish(std::move(Program));
}

StencilProgram workloads::diffusion3dChain(int Length, int64_t K, int64_t J,
                                           int64_t I, int VectorWidth) {
  assert(Length >= 1);
  StencilProgram Program;
  Program.Name = formatString("diffusion3d_x%d", Length);
  Program.IterationSpace = Shape({K, J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "a0", 17);
  for (int Step = 0; Step < Length; ++Step) {
    std::string In = formatString("a%d", Step);
    std::string Out = formatString("a%d", Step + 1);
    addStencil(
        Program, Out,
        formatString("%s = 0.4 * %s[0,0,0] + 0.1 * %s[0,0,-1] + 0.1 * "
                     "%s[0,0,1] + 0.1 * %s[0,-1,0] + 0.1 * %s[0,1,0] + "
                     "0.1 * %s[-1,0,0] + 0.1 * %s[1,0,0];",
                     Out.c_str(), In.c_str(), In.c_str(), In.c_str(),
                     In.c_str(), In.c_str(), In.c_str(), In.c_str()));
  }
  Program.Outputs = {formatString("a%d", Length)};
  Program.TimeLoop = {{Program.Outputs.front(), "a0"}};
  return finish(std::move(Program));
}

namespace {

/// Central-difference coefficients for the second derivative at accuracy
/// order 2*Radius: C[0] is the center weight, C[k] the symmetric weight at
/// distance k.
const double *secondDerivativeCoefficients(int Radius) {
  static const double R1[] = {-2.0, 1.0};
  static const double R2[] = {-5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0};
  static const double R3[] = {-49.0 / 18.0, 3.0 / 2.0, -3.0 / 20.0,
                              1.0 / 90.0};
  static const double R4[] = {-205.0 / 72.0, 8.0 / 5.0, -1.0 / 5.0,
                              8.0 / 315.0, -1.0 / 560.0};
  switch (Radius) {
  case 1: return R1;
  case 2: return R2;
  case 3: return R3;
  case 4: return R4;
  }
  assert(false && "finite-difference radius must be 1..4");
  return R1;
}

/// Renders `field[0,..,off,..,0]` with \p Off in dimension \p Dim.
std::string axisAccess(const std::string &Field, size_t Rank, size_t Dim,
                       int Off) {
  std::string Text = Field + "[";
  for (size_t D = 0; D < Rank; ++D) {
    if (D)
      Text += ",";
    Text += formatString("%d", D == Dim ? Off : 0);
  }
  return Text + "]";
}

/// Renders the order-2*Radius discrete laplacian of \p Field: the center
/// weight applies once per dimension, the ring weights once per distance
/// per dimension.
std::string laplacian(const std::string &Field, size_t Rank, int Radius) {
  const double *C = secondDerivativeCoefficients(Radius);
  std::string Text =
      formatString("%.17g * %s", static_cast<double>(Rank) * C[0],
                   axisAccess(Field, Rank, 0, 0).c_str());
  for (int Distance = 1; Distance <= Radius; ++Distance) {
    std::string Ring;
    for (size_t Dim = 0; Dim < Rank; ++Dim) {
      if (!Ring.empty())
        Ring += " + ";
      Ring += axisAccess(Field, Rank, Dim, -Distance) + " + " +
              axisAccess(Field, Rank, Dim, Distance);
    }
    Text += formatString(" + %.17g * (%s)", C[Distance], Ring.c_str());
  }
  return "(" + Text + ")";
}

/// Shared body of the 2D/3D wave chains: two time levels in, two time
/// levels out, `Length` leapfrog steps in between.
StencilProgram waveChain(const char *NameFormat, Shape Space, int Radius,
                         int Length, int VectorWidth) {
  assert(Length >= 1);
  assert(Radius >= 1 && Radius <= 4);
  size_t Rank = Space.rank();
  StencilProgram Program;
  Program.Name = formatString(NameFormat, Radius, Length);
  Program.IterationSpace = std::move(Space);
  Program.VectorWidth = VectorWidth;
  addInput(Program, "u0", 23); // u(t-1)
  addInput(Program, "u1", 29); // u(t)
  const double CourantSq = 0.1; // (c * dt / dx)^2, well inside stability
  // Time levels advance along the chain: level(0) = u0, level(1) = u1,
  // level(s+1) = w<s>.
  auto Level = [&](int S) {
    if (S == 0)
      return std::string("u0");
    if (S == 1)
      return std::string("u1");
    return formatString("w%d", S - 1);
  };
  for (int Step = 1; Step <= Length; ++Step) {
    std::string Out = formatString("w%d", Step);
    std::string Cur = Level(Step), Prev = Level(Step - 1);
    addStencil(Program, Out,
               formatString("%s = 2.0 * %s - %s + %.17g * %s;", Out.c_str(),
                            axisAccess(Cur, Rank, 0, 0).c_str(),
                            axisAccess(Prev, Rank, 0, 0).c_str(), CourantSq,
                            laplacian(Cur, Rank, Radius).c_str()));
  }
  // The next iteration's previous level is this iteration's last current
  // level; a pass-through copy exposes it as a program output.
  addStencil(Program, "up",
             formatString("up = %s;",
                          axisAccess(Level(Length), Rank, 0, 0).c_str()));
  Program.Outputs = {formatString("w%d", Length), "up"};
  Program.TimeLoop = {{Program.Outputs.front(), "u1"}, {"up", "u0"}};
  return finish(std::move(Program));
}

} // namespace

StencilProgram workloads::wave2dChain(int Radius, int Length, int64_t J,
                                      int64_t I, int VectorWidth) {
  return waveChain("wave2d_r%d_x%d", Shape({J, I}), Radius, Length,
                   VectorWidth);
}

StencilProgram workloads::wave3dChain(int Radius, int Length, int64_t K,
                                      int64_t J, int64_t I, int VectorWidth) {
  return waveChain("wave3d_r%d_x%d", Shape({K, J, I}), Radius, Length,
                   VectorWidth);
}

StencilProgram workloads::hotspot2dChain(int Length, int64_t J, int64_t I,
                                         int VectorWidth) {
  assert(Length >= 1);
  StencilProgram Program;
  Program.Name = formatString("hotspot2d_x%d", Length);
  Program.IterationSpace = Shape({J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "t0", 31); // temperature
  addInput(Program, "p", 37);  // static power density
  // HotSpot-style explicit update; cap folds the time step and thermal
  // capacitance, the R* terms the lateral/vertical thermal resistances.
  const double Cap = 0.01, RxInv = 0.1, RyInv = 0.1, RzInv = 0.05;
  const double Ambient = 80.0;
  for (int Step = 0; Step < Length; ++Step) {
    std::string In = formatString("t%d", Step);
    std::string Out = formatString("t%d", Step + 1);
    addStencil(
        Program, Out,
        formatString(
            "lat = %.17g * (%s[0,-1] + %s[0,1] - 2.0 * %s[0,0]) + "
            "%.17g * (%s[-1,0] + %s[1,0] - 2.0 * %s[0,0]);"
            "vert = %.17g * (%.17g - %s[0,0]);"
            "%s = %s[0,0] + %.17g * (p[0,0] + lat + vert);",
            RxInv, In.c_str(), In.c_str(), In.c_str(), RyInv, In.c_str(),
            In.c_str(), In.c_str(), RzInv, Ambient, In.c_str(), Out.c_str(),
            In.c_str(), Cap));
  }
  Program.Outputs = {formatString("t%d", Length)};
  Program.TimeLoop = {{Program.Outputs.front(), "t0"}};
  return finish(std::move(Program));
}

StencilProgram workloads::horizontalDiffusion(int64_t K, int64_t J,
                                              int64_t I, int VectorWidth) {
  StencilProgram Program;
  Program.Name = "horizontal_diffusion";
  Program.IterationSpace = Shape({K, J, I});
  Program.VectorWidth = VectorWidth;

  // 5 full (3D) input fields: wind components u/v/w, pressure
  // perturbation pp, and the diffusion mask.
  addInput(Program, "u_in", 101);
  addInput(Program, "v_in", 102);
  addInput(Program, "w_in", 103);
  addInput(Program, "pp_in", 104);
  addInput(Program, "hd_mask", 105);
  // 5 latitude-dependent (1D over j) metric coefficients.
  size_t LatDim = 1;
  addLineInput(Program, "crlato", LatDim, 201);
  addLineInput(Program, "crlatu", LatDim, 202);
  addLineInput(Program, "crlavo", LatDim, 203);
  addLineInput(Program, "crlavu", LatDim, 204);
  addLineInput(Program, "acrlat0", LatDim, 205);

  // --- Smagorinsky factors -------------------------------------------------
  // Strain (tension) and shear deformation of the horizontal wind field,
  // combined into the squared total deformation.
  addStencil(Program, "dsq",
             "t1 = crlavo[0] * v_in[0, 1, 0] - crlavu[0] * v_in[0, -1, 0];"
             "t2 = u_in[0, 0, 1] - u_in[0, 0, -1];"
             "tension = 0.5 * t2 + acrlat0[0] * t1;"
             "s1 = u_in[0, 1, 0] * crlato[0] - u_in[0, -1, 0] * crlatu[0];"
             "s2 = v_in[0, 0, 1] - v_in[0, 0, -1];"
             "shear = 0.5 * s2 + acrlat0[0] * s1;"
             "dsq = tension * tension + shear * shear;");

  // Clamped Smagorinsky diffusion coefficients for u and v (the paper's 2
  // square roots, 2 minima and 2 maxima live here).
  addStencil(Program, "smag_u",
             "r = acrlat0[0] * sqrt(dsq[0, 0, 0]) - 0.01;"
             "smag_u = min(0.5, max(0.0, r));");
  addStencil(Program, "smag_v",
             "r = crlato[0] * sqrt(dsq[0, 0, 0]) - 0.01;"
             "smag_v = min(0.5, max(0.0, r));");

  // --- Laplacians -----------------------------------------------------------
  // Weighted horizontal laplacians on the staggered grid.
  addStencil(Program, "lap_u",
             "zonal = u_in[0, 0, 1] + u_in[0, 0, -1] - 2.0 * u_in[0, 0, 0];"
             "merid = crlato[0] * (u_in[0, 1, 0] - u_in[0, 0, 0]) + "
             "crlatu[0] * (u_in[0, -1, 0] - u_in[0, 0, 0]);"
             "lap_u = zonal + merid;");
  addStencil(Program, "lap_v",
             "zonal = v_in[0, 0, 1] + v_in[0, 0, -1] - 2.0 * v_in[0, 0, 0];"
             "merid = crlavo[0] * (v_in[0, 1, 0] - v_in[0, 0, 0]) + "
             "crlavu[0] * (v_in[0, -1, 0] - v_in[0, 0, 0]);"
             "lap_v = zonal + merid;");
  addStencil(Program, "lap_w",
             "lap_w = w_in[0, 0, 1] + w_in[0, 0, -1] + w_in[0, 1, 0] + "
             "w_in[0, -1, 0] - 4.0 * w_in[0, 0, 0];");
  addStencil(Program, "lap_pp",
             "zonal = pp_in[0, 0, 1] + pp_in[0, 0, -1] - 2.0 * "
             "pp_in[0, 0, 0];"
             "merid = crlavo[0] * (pp_in[0, 1, 0] - pp_in[0, 0, 0]) + "
             "crlavu[0] * (pp_in[0, -1, 0] - pp_in[0, 0, 0]);"
             "lap_pp = zonal + merid;");

  // --- Outputs ---------------------------------------------------------------
  // u and v: Smagorinsky diffusion applied to the laplacian, with a masked
  // flux limiter (the data-dependent branches of Sec. IX-A).
  addStencil(Program, "u_out",
             "l2 = lap_u[0, 0, 1] + lap_u[0, 0, -1] - 2.0 * lap_u[0, 0, 0] "
             "+ crlato[0] * (lap_u[0, 1, 0] - lap_u[0, 0, 0]) + crlatu[0] "
             "* (lap_u[0, -1, 0] - lap_u[0, 0, 0]);"
             "delta = smag_u[0, 0, 0] * lap_u[0, 0, 0] - 0.05 * l2;"
             "masked = hd_mask[0, 0, 0] > 0.05 ? delta : 0.0;"
             "hi = masked > 0.1 ? 0.1 : masked;"
             "lo = hi < -0.1 ? -0.1 : hi;"
             "flux = hd_mask[0, 0, 0] > 0.9 ? lo * 0.5 : lo;"
             "u_out = hd_mask[0, 0, 0] > 0.01 ? u_in[0, 0, 0] + flux : "
             "u_in[0, 0, 0];");
  addStencil(Program, "v_out",
             "l2 = lap_v[0, 0, 1] + lap_v[0, 0, -1] - 2.0 * lap_v[0, 0, 0] "
             "+ crlavo[0] * (lap_v[0, 1, 0] - lap_v[0, 0, 0]) + crlavu[0] "
             "* (lap_v[0, -1, 0] - lap_v[0, 0, 0]);"
             "delta = smag_v[0, 0, 0] * lap_v[0, 0, 0] - 0.05 * l2;"
             "masked = hd_mask[0, 0, 0] > 0.05 ? delta : 0.0;"
             "hi = masked > 0.1 ? 0.1 : masked;"
             "lo = hi < -0.1 ? -0.1 : hi;"
             "flux = hd_mask[0, 0, 0] > 0.9 ? lo * 0.5 : lo;"
             "v_out = hd_mask[0, 0, 0] > 0.01 ? v_in[0, 0, 0] + flux : "
             "v_in[0, 0, 0];");

  // w and pp: plain 4th-order diffusion (laplacian of laplacian) with a
  // masked limiter.
  addStencil(Program, "w_out",
             "l2 = lap_w[0, 0, 1] + lap_w[0, 0, -1] + lap_w[0, 1, 0] + "
             "lap_w[0, -1, 0] - 4.0 * lap_w[0, 0, 0];"
             "delta = 0.03 * l2;"
             "masked = hd_mask[0, 0, 0] > 0.05 ? delta : 0.0;"
             "hi = masked > 0.2 ? 0.2 : masked;"
             "lo = hi < -0.2 ? -0.2 : hi;"
             "flux = hd_mask[0, 0, 0] > 0.9 ? lo * 0.5 : lo;"
             "w_out = hd_mask[0, 0, 0] > 0.01 ? w_in[0, 0, 0] - flux : "
             "w_in[0, 0, 0];");
  addStencil(Program, "pp_out",
             "l2 = lap_pp[0, 0, 1] + lap_pp[0, 0, -1] - 2.0 * "
             "lap_pp[0, 0, 0] + crlavo[0] * (lap_pp[0, 1, 0] - "
             "lap_pp[0, 0, 0]) + crlavu[0] * (lap_pp[0, -1, 0] - "
             "lap_pp[0, 0, 0]);"
             "delta = 0.04 * l2;"
             "masked = hd_mask[0, 0, 0] > 0.05 ? delta : 0.0;"
             "hi = masked > 0.2 ? 0.2 : masked;"
             "lo = hi < -0.2 ? -0.2 : hi;"
             "flux = hd_mask[0, 0, 0] > 0.9 ? lo * 0.5 : lo;"
             "pp_out = hd_mask[0, 0, 0] > 0.01 ? pp_in[0, 0, 0] - flux : "
             "pp_in[0, 0, 0];");

  Program.Outputs = {"u_out", "v_out", "w_out", "pp_out"};
  Program.TimeLoop = {{"u_out", "u_in"},
                      {"v_out", "v_in"},
                      {"w_out", "w_in"},
                      {"pp_out", "pp_in"}};
  return finish(std::move(Program));
}
