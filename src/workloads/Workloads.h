//===- workloads/Workloads.h - Benchmark stencil programs ---------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stencil programs used by the paper's evaluation:
///
///  - \b Jacobi 3D and \b Diffusion 2D/3D chains: long linear sequences of
///    identical stencils, "analogous to time-tiled iterative stencils"
///    (Sec. VIII-C, Fig. 14/15, Tab. I);
///  - \b horizontal \b diffusion: the COSMO weather-model case study
///    (Sec. IX, Fig. 17) — a 4th-order explicit method on a staggered
///    latitude-longitude grid with Smagorinsky diffusion of the wind
///    velocity components, structurally mirroring the paper's DAG (5 3D
///    inputs + 5 1D inputs, 4 3D outputs, complex fan-in of 2-6 producers
///    per stencil, square roots, min/max clamps, and data-dependent
///    branches).
///
/// All builders return fully analyzed programs. Each declares its time
/// loop (`StencilProgram::TimeLoop`): the chain output feeds back into
/// the chain input (hdiff: each `*_out` into the matching `*_in`), so
/// the programs iterate via runtime/Iterate.h or unroll on-chip via
/// sdfg::unrollTimeSteps.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_WORKLOADS_WORKLOADS_H
#define STENCILFLOW_WORKLOADS_WORKLOADS_H

#include "ir/StencilProgram.h"

#include <cstdint>

namespace stencilflow {
namespace workloads {

/// A chain of \p Length Jacobi 2D (5-point) stencils: 4 additions and 1
/// multiplication per stencil per cell.
StencilProgram jacobi2dChain(int Length, int64_t J, int64_t I,
                             int VectorWidth = 1);

/// A chain of \p Length Jacobi 3D (7-point) stencils: 6 additions and 1
/// multiplication per stencil per cell.
StencilProgram jacobi3dChain(int Length, int64_t K, int64_t J, int64_t I,
                             int VectorWidth = 1);

/// A chain of \p Length Diffusion 2D (5-point, per-direction
/// coefficients) stencils: 4 additions and 5 multiplications per cell —
/// the kernel of Zohouri et al. used for the Tab. I comparison.
StencilProgram diffusion2dChain(int Length, int64_t J, int64_t I,
                                int VectorWidth = 1);

/// A chain of \p Length Diffusion 3D (7-point, per-direction
/// coefficients) stencils: 6 additions and 7 multiplications per cell.
StencilProgram diffusion3dChain(int Length, int64_t K, int64_t J, int64_t I,
                                int VectorWidth = 1);

/// The horizontal-diffusion stencil program (COSMO case study, Sec. IX).
/// Domain 128x128 horizontal stacked in 80 vertical layers by default
/// (the MeteoSwiss benchmarking configuration).
StencilProgram horizontalDiffusion(int64_t K = 80, int64_t J = 128,
                                   int64_t I = 128, int VectorWidth = 1);

//===----------------------------------------------------------------------===//
// High-order workload family
//===----------------------------------------------------------------------===//
//
// Wide-halo stencils that stress the deep on-chip line buffers the paper's
// buffer analysis (Sec. V) sizes: a radius-R access needs R full grid
// lines (2D) or planes (3D) of buffering per direction, so radius 2-4
// kernels exercise a very different memory/compute balance than the
// radius-1 chains above.

/// A chain of \p Length second-order-in-time wave-equation steps using
/// central finite differences of half-width \p Radius (1-4, accuracy
/// order 2*Radius):
///
///   w = 2*u(t) - u(t-1) + c^2 * lap_R(u(t))
///
/// Two time levels (`u0` = previous, `u1` = current) feed the chain; the
/// outputs `w<Length>` (new current) and the pass-through `up` (new
/// previous) close the time loop.
StencilProgram wave2dChain(int Radius, int Length, int64_t J, int64_t I,
                           int VectorWidth = 1);

/// The 3D variant of \ref wave2dChain.
StencilProgram wave3dChain(int Radius, int Length, int64_t K, int64_t J,
                           int64_t I, int VectorWidth = 1);

/// A chain of \p Length HotSpot-style thermal-simulation steps: each cell
/// integrates its static power density `p` plus resistive exchange with
/// the 4-neighborhood and the ambient:
///
///   t' = t + cap * (p + (E + W - 2t)/Rx + (N + S - 2t)/Ry + (amb - t)/Rz)
///
/// The temperature output feeds back (`t<Length>` -> `t0`); the power map
/// stays fixed across time steps.
StencilProgram hotspot2dChain(int Length, int64_t J, int64_t I,
                              int VectorWidth = 1);

} // namespace workloads
} // namespace stencilflow

#endif // STENCILFLOW_WORKLOADS_WORKLOADS_H
