//===- tests/ir_test.cpp - IR library tests ----------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "ir/Boundary.h"
#include "ir/DataType.h"
#include "ir/Expr.h"
#include "ir/Shape.h"
#include "ir/StencilProgram.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

//===----------------------------------------------------------------------===//
// DataType / Boundary
//===----------------------------------------------------------------------===//

TEST(DataTypeTest, SizesAndNames) {
  EXPECT_EQ(dataTypeSize(DataType::Float32), 4u);
  EXPECT_EQ(dataTypeSize(DataType::Float64), 8u);
  EXPECT_EQ(dataTypeName(DataType::Float32), "float32");
  EXPECT_EQ(dataTypeOpenCLName(DataType::Float32), "float");
  EXPECT_TRUE(isFloatingPoint(DataType::Float64));
  EXPECT_FALSE(isFloatingPoint(DataType::Int32));
}

TEST(DataTypeTest, ParseAcceptsBothSpellings) {
  EXPECT_EQ(*parseDataType("float32"), DataType::Float32);
  EXPECT_EQ(*parseDataType("float"), DataType::Float32);
  EXPECT_EQ(*parseDataType("double"), DataType::Float64);
  EXPECT_FALSE(parseDataType("quaternion"));
}

TEST(BoundaryTest, ParseAndName) {
  EXPECT_EQ(*parseBoundaryKind("constant"), BoundaryKind::Constant);
  EXPECT_EQ(*parseBoundaryKind("copy"), BoundaryKind::Copy);
  EXPECT_EQ(*parseBoundaryKind("shrink"), BoundaryKind::Shrink);
  EXPECT_FALSE(parseBoundaryKind("mirror"));
  EXPECT_EQ(boundaryKindName(BoundaryKind::Copy), "copy");
}

//===----------------------------------------------------------------------===//
// Shape
//===----------------------------------------------------------------------===//

TEST(ShapeTest, NumCells) {
  EXPECT_EQ(Shape({4, 5, 6}).numCells(), 120);
  EXPECT_EQ(Shape({7}).numCells(), 7);
  EXPECT_EQ(Shape(std::vector<int64_t>{}).numCells(), 1); // Scalar.
}

TEST(ShapeTest, LinearizeMemoryOrder) {
  // Shape {K, J, I} = {4, 5, 6}: lin([k,j,i]) = (k*5 + j)*6 + i.
  Shape S({4, 5, 6});
  EXPECT_EQ(S.linearize({0, 0, 0}), 0);
  EXPECT_EQ(S.linearize({0, 0, 1}), 1);
  EXPECT_EQ(S.linearize({0, 1, 0}), 6);
  EXPECT_EQ(S.linearize({1, 0, 0}), 30);
  EXPECT_EQ(S.linearize({0, 0, -1}), -1);
  EXPECT_EQ(S.linearize({-1, 0, 0}), -30);
  EXPECT_EQ(S.linearize({1, -1, 2}), 30 - 6 + 2);
}

TEST(ShapeTest, PaperBufferDistances) {
  // Sec. IV-A: in a 3D space {K, J, I}, a[0,1,0] vs a[0,-1,0] spans two
  // rows (2I); b[0,0,0] vs b[1,0,0] spans a 2D slice (IJ... the paper's
  // example uses 2IJ for [1,..] vs [-1,..]).
  Shape S({10, 8, 16});
  EXPECT_EQ(S.linearize({0, 1, 0}) - S.linearize({0, -1, 0}), 2 * 16);
  EXPECT_EQ(S.linearize({1, 0, 0}) - S.linearize({-1, 0, 0}), 2 * 8 * 16);
  EXPECT_EQ(S.linearize({1, 0, 0}) - S.linearize({0, 0, 0}), 8 * 16);
}

TEST(ShapeTest, DelinearizeRoundTrip) {
  Shape S({3, 4, 5});
  for (int64_t Cell = 0; Cell < S.numCells(); ++Cell) {
    std::vector<int64_t> Index = S.delinearize(Cell);
    EXPECT_EQ(S.linearizeIndex(Index), Cell);
  }
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({128, 128, 80}).toString(), "128x128x80");
  EXPECT_EQ(Shape(std::vector<int64_t>{}).toString(), "scalar");
}

TEST(OffsetTest, ToString) {
  EXPECT_EQ(offsetToString({0, -1, 2}), "[0, -1, 2]");
  EXPECT_EQ(offsetToString({}), "[]");
}

//===----------------------------------------------------------------------===//
// Expr
//===----------------------------------------------------------------------===//

TEST(ExprTest, CloneIsDeep) {
  auto Access = std::make_unique<FieldAccessExpr>("a", Offset{0, 1});
  auto Sum = std::make_unique<BinaryExpr>(
      BinaryOp::Add, std::move(Access), std::make_unique<LiteralExpr>(2.0));
  ExprPtr Clone = Sum->clone();
  auto *ClonedSum = cast<BinaryExpr>(Clone.get());
  const_cast<FieldAccessExpr *>(
      cast<FieldAccessExpr>(&ClonedSum->lhs()))
      ->setField("b");
  EXPECT_EQ(cast<FieldAccessExpr>(&Sum->lhs())->field(), "a");
}

TEST(ExprTest, WalkVisitsAllNodes) {
  auto E = std::make_unique<SelectExpr>(
      std::make_unique<BinaryExpr>(BinaryOp::Gt,
                                   std::make_unique<LiteralExpr>(1.0),
                                   std::make_unique<LiteralExpr>(0.0)),
      std::make_unique<FieldAccessExpr>("a", Offset{0}),
      std::make_unique<LocalRefExpr>("t"));
  int Count = 0;
  walkExpr(*E, [&](const Expr &) { ++Count; });
  EXPECT_EQ(Count, 6);
}

TEST(ExprTest, PrintedFormsAreStable) {
  auto E = std::make_unique<BinaryExpr>(
      BinaryOp::Mul, std::make_unique<LiteralExpr>(4.0),
      std::make_unique<FieldAccessExpr>("a", Offset{0, 0}));
  EXPECT_EQ(E->toString(), "(4.0 * a[0, 0])");
}

TEST(ExprTest, CastingWorks) {
  ExprPtr E = std::make_unique<LiteralExpr>(3.0);
  EXPECT_TRUE(isa<LiteralExpr>(E.get()));
  EXPECT_FALSE(isa<BinaryExpr>(E.get()));
  EXPECT_EQ(dyn_cast<BinaryExpr>(E.get()), nullptr);
  EXPECT_DOUBLE_EQ(cast<LiteralExpr>(E.get())->value(), 3.0);
}

TEST(ExprTest, IntrinsicMetadata) {
  EXPECT_EQ(intrinsicArity(Intrinsic::Sqrt), 1u);
  EXPECT_EQ(intrinsicArity(Intrinsic::Min), 2u);
  EXPECT_EQ(intrinsicName(Intrinsic::Max), "max");
  EXPECT_TRUE(parseIntrinsic("fmin"));
  EXPECT_FALSE(parseIntrinsic("malloc"));
}

//===----------------------------------------------------------------------===//
// StencilProgram
//===----------------------------------------------------------------------===//

TEST(StencilProgramTest, LookupHelpers) {
  StencilProgram P = laplace2d();
  EXPECT_NE(P.findInput("a"), nullptr);
  EXPECT_EQ(P.findInput("b"), nullptr);
  EXPECT_NE(P.findNode("b"), nullptr);
  EXPECT_TRUE(P.isFieldDefined("a"));
  EXPECT_TRUE(P.isFieldDefined("b"));
  EXPECT_FALSE(P.isFieldDefined("zz"));
  EXPECT_TRUE(P.isProgramOutput("b"));
  EXPECT_FALSE(P.isProgramOutput("a"));
}

TEST(StencilProgramTest, ConsumersOf) {
  StencilProgram P = diamondProgram();
  std::vector<size_t> AConsumers = P.consumersOf("A");
  EXPECT_EQ(AConsumers.size(), 2u); // B and C.
  EXPECT_EQ(P.consumersOf("C").size(), 0u);
}

TEST(StencilProgramTest, TopologicalOrder) {
  StencilProgram P = diamondProgram();
  auto Order = P.topologicalOrder();
  ASSERT_TRUE(Order);
  // A (index 0) must precede B (1) and C (2); B must precede C.
  auto Position = [&](size_t NodeIndex) {
    return std::find(Order->begin(), Order->end(), NodeIndex) -
           Order->begin();
  };
  EXPECT_LT(Position(0), Position(1));
  EXPECT_LT(Position(1), Position(2));
}

TEST(StencilProgramTest, CycleDetected) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "in");
  addStencil(P, "x", "x = y[0, 0] + in[0, 0];");
  addStencil(P, "y", "y = x[0, 0];");
  P.Outputs = {"y"};
  for (StencilNode &Node : P.Nodes)
    ASSERT_FALSE(analyzeNode(P, Node));
  auto Order = P.topologicalOrder();
  ASSERT_FALSE(Order);
  EXPECT_NE(Order.message().find("cycle"), std::string::npos);
}

TEST(StencilProgramTest, ValidateRejectsBadVectorWidth) {
  StencilProgram P = laplace2d(32, 30);
  P.VectorWidth = 4;
  EXPECT_TRUE(P.validate()); // 4 does not divide 30.
}

TEST(StencilProgramTest, ValidateAcceptsGoodVectorWidth) {
  StencilProgram P = laplace2d(32, 32, 4);
  EXPECT_FALSE(P.validate());
}

TEST(StencilProgramTest, ValidateRejectsUnconsumedNode) {
  StencilProgram P = laplace2d();
  addStencil(P, "dead", "dead = a[0, 0];");
  ASSERT_FALSE(analyzeNode(P, *P.findNode("dead")));
  Error Err = P.validate();
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("dead"), std::string::npos);
}

TEST(StencilProgramTest, ValidateRejectsMissingOutput) {
  StencilProgram P = laplace2d();
  P.Outputs = {"nonexistent"};
  EXPECT_TRUE(P.validate());
}

TEST(StencilProgramTest, CloneIsIndependent) {
  StencilProgram P = laplace2d();
  StencilProgram Q = P.clone();
  Q.Nodes[0].Name = "renamed";
  EXPECT_EQ(P.Nodes[0].Name, "b");
}

TEST(StencilProgramTest, DimensionNames) {
  EXPECT_EQ(StencilProgram::dimensionNames(3),
            (std::vector<std::string>{"k", "j", "i"}));
  EXPECT_EQ(StencilProgram::dimensionNames(2),
            (std::vector<std::string>{"j", "i"}));
  EXPECT_EQ(StencilProgram::dimensionNames(1),
            (std::vector<std::string>{"i"}));
}

TEST(StencilProgramTest, SummaryMentionsNodes) {
  StencilProgram P = diamondProgram();
  std::string Summary = P.summary();
  EXPECT_NE(Summary.find("diamond"), std::string::npos);
  EXPECT_NE(Summary.find("A"), std::string::npos);
  EXPECT_NE(Summary.find("[output]"), std::string::npos);
}

TEST(FieldTest, ShapeWithinMask) {
  Field F;
  F.Name = "c";
  F.DimensionMask = {true, false, true};
  Shape S = F.shapeWithin(Shape({4, 5, 6}));
  EXPECT_EQ(S.extents(), (std::vector<int64_t>{4, 6}));
  EXPECT_EQ(F.rank(), 2u);
  EXPECT_FALSE(F.isFullRank());
}
