//===- tests/property_test.cpp - Parameterized property sweeps -----------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based invariants swept over parameter grids with TEST_P /
// INSTANTIATE_TEST_SUITE_P:
//
//  - end-to-end: for random programs across seeds and vector widths, the
//    simulator (a) matches the reference executor bit-exactly, (b) never
//    deadlocks with analysis-sized buffers, and (c) finishes in exactly
//    C = L + N cycles with unconstrained memory (Eq. 1);
//  - buffer formulas: internal buffer sizes follow the Sec. IV-A formula
//    for arbitrary offset patterns and vector widths;
//  - boundary semantics: constant/copy handling agrees between the
//    simulator and the reference executor for every boundary kind and
//    offset direction.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "core/BufferAnalysis.h"
#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "runtime/InputData.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"
#include "sim/Fault.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

//===----------------------------------------------------------------------===//
// End-to-end property: sim == reference, cycles == L + N, no deadlock.
//===----------------------------------------------------------------------===//

class EndToEndProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(EndToEndProperty, SimMatchesReferenceAndModel) {
  auto [Seed, VectorWidth] = GetParam();
  RandomProgramOptions Options;
  Options.VectorWidth = VectorWidth;
  StencilProgram Program = randomProgram(Seed, Options);

  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow) << Dataflow.message();

  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M) << M.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message(); // No deadlock, no overrun.

  // Eq. 1: exactly C = L + N cycles.
  EXPECT_EQ(Result->Stats.Cycles, M->expectedCycles());

  // Bit-exact agreement with the sequential reference.
  auto Reference = runReference(*Compiled, Inputs);
  ASSERT_TRUE(Reference);
  for (const std::string &Output : Compiled->program().Outputs) {
    ValidationReport Report = validateField(
        Output, Result->Outputs.at(Output), Reference->field(Output));
    EXPECT_TRUE(Report.Passed) << Report.Summary;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWidths, EndToEndProperty,
    ::testing::Combine(::testing::Values(301, 302, 303, 304, 305, 306, 307,
                                         308, 309, 310),
                       ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, int>> &Info) {
      return "seed" + std::to_string(std::get<0>(Info.param)) + "_w" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Buffer-size formula property (Sec. IV-A).
//===----------------------------------------------------------------------===//

struct BufferCase {
  std::string Name;
  std::string Accesses; ///< Expression summing the accesses.
  int64_t ExpectedDistance;
};

class BufferFormulaProperty
    : public ::testing::TestWithParam<std::tuple<BufferCase, int>> {};

TEST_P(BufferFormulaProperty, SizeIsDistancePlusW) {
  auto [Case, W] = GetParam();
  int64_t K = 8, J = 8, I = 16;
  StencilProgram P;
  P.IterationSpace = Shape({K, J, I});
  P.VectorWidth = W;
  addInput(P, "a");
  addStencil(P, "out", "out = " + Case.Accesses + ";");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Buffers = computeNodeBuffers(P, P.Nodes[0]);
  ASSERT_EQ(Buffers.Buffers.size(), 1u);
  const InternalBuffer &Buffer = Buffers.Buffers[0];
  EXPECT_EQ(Buffer.DistanceElements, Case.ExpectedDistance) << Case.Name;
  EXPECT_EQ(Buffer.SizeElements, Case.ExpectedDistance + W) << Case.Name;
  EXPECT_EQ(Buffer.InitCycles, (Case.ExpectedDistance + W - 1) / W)
      << Case.Name;
}

INSTANTIATE_TEST_SUITE_P(
    OffsetPatterns, BufferFormulaProperty,
    ::testing::Combine(
        ::testing::Values(
            // Center only: no reuse window.
            BufferCase{"center", "a[0,0,0]", 0},
            // Two rows (paper Fig. 7 top): 2I.
            BufferCase{"rows", "a[0,-1,0] + a[0,1,0]", 2 * 16},
            // Two slices (paper Fig. 7 bottom): 2JI.
            BufferCase{"slices", "a[-1,0,0] + a[1,0,0]", 2 * 8 * 16},
            // Asymmetric, clamped to include the center.
            BufferCase{"forward", "a[0,0,1] + a[0,0,3]", 3},
            BufferCase{"backward", "a[0,0,-2] + a[0,0,-1]", 2},
            // 7-point star: 2JI.
            BufferCase{"star",
                       "a[0,0,0] + a[0,0,-1] + a[0,0,1] + a[0,-1,0] + "
                       "a[0,1,0] + a[-1,0,0] + a[1,0,0]",
                       2 * 8 * 16},
            // In-between accesses do not change the window.
            BufferCase{"dense",
                       "a[0,-1,0] + a[0,0,-1] + a[0,0,0] + a[0,0,1] + "
                       "a[0,1,0]",
                       2 * 16}),
        ::testing::Values(1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<BufferCase, int>> &Info) {
      return std::get<0>(Info.param).Name + "_w" +
             std::to_string(std::get<1>(Info.param));
    });

//===----------------------------------------------------------------------===//
// Boundary-handling property: sim == reference for every kind/direction.
//===----------------------------------------------------------------------===//

struct BoundaryCase {
  std::string Name;
  std::string Expr;
  bool Copy; ///< Copy boundary (else constant 3.5).
};

class BoundaryProperty : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(BoundaryProperty, SimMatchesReference) {
  const BoundaryCase &Case = GetParam();
  StencilProgram P;
  P.IterationSpace = Shape({6, 10});
  addInput(P, "a", DataType::Float32, DataSource::random(77));
  addStencil(P, "out", "out = " + Case.Expr + ";", DataType::Float32,
             {{"a", Case.Copy ? BoundaryCondition::copy()
                              : BoundaryCondition::constant(3.5)}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message();
  auto Reference = runReference(*Compiled, Inputs);
  ValidationReport Report = validateField(
      "out", Result->Outputs.at("out"), Reference->field("out"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndDirections, BoundaryProperty,
    ::testing::Values(
        BoundaryCase{"const_west", "a[0,-2] + a[0,0]", false},
        BoundaryCase{"const_east", "a[0,2] + a[0,0]", false},
        BoundaryCase{"const_north", "a[-2,0] + a[0,0]", false},
        BoundaryCase{"const_south", "a[2,0] + a[0,0]", false},
        BoundaryCase{"const_corner", "a[-1,-1] + a[1,1] + a[0,0]", false},
        BoundaryCase{"copy_west", "a[0,-2] + a[0,0]", true},
        BoundaryCase{"copy_east", "a[0,2] + a[0,0]", true},
        BoundaryCase{"copy_corner", "a[-1,-1] + a[1,1] + a[0,0]", true}),
    [](const ::testing::TestParamInfo<BoundaryCase> &Info) {
      return Info.param.Name;
    });

//===----------------------------------------------------------------------===//
// Channel-occupancy property: observed high-water marks validate the
// delay-buffer sizing (Sec. IV-B) empirically.
//===----------------------------------------------------------------------===//

class ChannelOccupancyProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelOccupancyProperty, HighWaterWithinComputedDepth) {
  uint64_t Seed = GetParam();
  StencilProgram Program = randomProgram(Seed);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();

  // Every streamed edge stays within its computed delay-buffer depth plus
  // the constant pipelining slack; the analysis never under-sizes.
  for (const DataflowEdge &Edge : Dataflow->Edges) {
    auto It = Result->Stats.ChannelHighWater.find(Edge.Source + "->" +
                                                  Edge.Consumer);
    ASSERT_NE(It, Result->Stats.ChannelHighWater.end());
    EXPECT_LE(It->second, Edge.BufferDepth + Config.MinChannelDepth)
        << Edge.Source << " -> " << Edge.Consumer;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelOccupancyProperty,
                         ::testing::Range<uint64_t>(400, 420));

TEST(ChannelOccupancyTest, DiamondCriticalEdgeActuallyFills) {
  // The A->C delay buffer is not conservative slack: the producer really
  // runs ahead by (close to) the computed depth while B fills.
  StencilProgram P = diamondProgram(32, 32);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  int64_t Depth = Dataflow->findEdge("A", "C")->BufferDepth;
  int64_t HighWater = Result->Stats.ChannelHighWater.at("A->C");
  EXPECT_GE(HighWater, Depth - 2);
  EXPECT_LE(HighWater, Depth + Config.MinChannelDepth);
}

//===----------------------------------------------------------------------===//
// Fault-resilience property: transient faults never change the bits.
//===----------------------------------------------------------------------===//

// For seed-derived multi-device chains under seed-derived transient fault
// plans (in-flight corruption, a link-degrade window, a memory brownout),
// the reliable transport must deliver bit-exact agreement with the
// sequential reference, and the per-link counters must stay consistent:
// every transmission is either delivered or replayed, and NACKs never
// exceed corrupted arrivals.
class FaultResilienceProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(FaultResilienceProperty, TransientFaultsPreserveBitExactness) {
  uint64_t Seed = GetParam();
  int Length = 4 + static_cast<int>(Seed % 3); // 2-4 devices at 2/device.
  StencilProgram Program = jacobi3dChain(Length, 4, 6, 6);

  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow) << Dataflow.message();

  PartitionOptions PartOptions;
  PartOptions.TargetUtilization = 1.0;
  PartOptions.Device.DSPs = 7 * 2; // Two chained stencils per device.
  PartOptions.MaxDevices = 64;
  auto Placement = partitionProgram(*Compiled, *Dataflow, PartOptions);
  ASSERT_TRUE(Placement) << Placement.message();
  ASSERT_GT(Placement->numDevices(), 1u);

  // A seed-derived transient-fault cocktail.
  sim::FaultPlan Plan;
  Plan.Seed = Seed;
  sim::FaultEvent Corrupt;
  Corrupt.Kind = sim::FaultKind::PayloadCorruption;
  Corrupt.Probability = 0.05 + 0.04 * static_cast<double>(Seed % 5);
  Plan.Events.push_back(Corrupt);
  sim::FaultEvent Degrade;
  Degrade.Kind = sim::FaultKind::LinkDegrade;
  Degrade.Hop = static_cast<int>(Seed % Placement->numDevices()) - 1;
  Degrade.Factor = 0.3;
  Degrade.StartCycle = static_cast<int64_t>(Seed % 7) * 50;
  Degrade.EndCycle = Degrade.StartCycle + 400;
  Plan.Events.push_back(Degrade);
  sim::FaultEvent Brownout;
  Brownout.Kind = sim::FaultKind::MemoryBrownout;
  Brownout.Device = static_cast<int>(Seed % Placement->numDevices());
  Brownout.Factor = 0.5;
  Brownout.StartCycle = 100;
  Brownout.EndCycle = 600;
  Plan.Events.push_back(Brownout);
  ASSERT_FALSE(static_cast<bool>(Plan.validate()));

  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Faults = &Plan;
  auto M = sim::Machine::build(*Compiled, *Dataflow, &*Placement, Config);
  ASSERT_TRUE(M) << M.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message();

  // Bit-exact despite the faults.
  auto Reference = runReference(*Compiled, Inputs);
  ASSERT_TRUE(Reference);
  for (const std::string &Output : Compiled->program().Outputs) {
    const auto &Sim = Result->Outputs.at(Output);
    const auto &Ref = Reference->field(Output);
    ASSERT_EQ(Sim.size(), Ref.size());
    for (size_t I = 0; I != Ref.size(); ++I)
      ASSERT_EQ(Sim[I], Ref[I]) << Output << "[" << I << "]";
  }

  // Counter consistency on every remote link.
  for (const auto &[Name, Link] : Result->Stats.Links) {
    EXPECT_EQ(Link.Transmissions - Link.Retransmissions, Link.Delivered)
        << Name;
    EXPECT_LE(Link.Nacks, Link.CorruptedVectors) << Name;
    EXPECT_GE(Link.Retransmissions, Link.Nacks) << Name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultResilienceProperty,
                         ::testing::Range<uint64_t>(500, 510));
