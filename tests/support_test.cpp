//===- tests/support_test.cpp - Support library tests ------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/JsonWriter.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

using namespace stencilflow;

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, SuccessIsFalsy) {
  Error Err;
  EXPECT_FALSE(Err);
  EXPECT_FALSE(Error::success());
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error Err = makeError("something broke");
  EXPECT_TRUE(Err);
  EXPECT_EQ(Err.message(), "something broke");
}

TEST(ErrorTest, AddContextPrefixes) {
  Error Err = makeError("inner");
  Err.addContext("outer");
  EXPECT_EQ(Err.message(), "outer: inner");
}

TEST(ErrorTest, AddContextOnSuccessIsNoop) {
  Error Err;
  Err.addContext("outer");
  EXPECT_FALSE(Err);
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> Value(42);
  ASSERT_TRUE(Value);
  EXPECT_EQ(*Value, 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> Value(makeError("nope"));
  ASSERT_FALSE(Value);
  EXPECT_EQ(Value.message(), "nope");
}

TEST(ExpectedTest, TakeValueMoves) {
  Expected<std::string> Value(std::string("payload"));
  std::string Taken = Value.takeValue();
  EXPECT_EQ(Taken, "payload");
}

//===----------------------------------------------------------------------===//
// String utilities
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, Split) {
  auto Pieces = splitString("a,b,,c", ',');
  ASSERT_EQ(Pieces.size(), 4u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[2], "");
  EXPECT_EQ(Pieces[3], "c");
}

TEST(StringUtilsTest, SplitNoSeparator) {
  auto Pieces = splitString("abc", ',');
  ASSERT_EQ(Pieces.size(), 1u);
  EXPECT_EQ(Pieces[0], "abc");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  x  "), "x");
  EXPECT_EQ(trimString("x"), "x");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString(""), "");
}

TEST(StringUtilsTest, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(joinStrings({"solo"}, ", "), "solo");
}

TEST(StringUtilsTest, StartsEndsWith) {
  EXPECT_TRUE(startsWith("stencilflow", "sten"));
  EXPECT_FALSE(startsWith("st", "sten"));
  EXPECT_TRUE(endsWith("kernel.cl", ".cl"));
  EXPECT_FALSE(endsWith("cl", ".cl"));
}

TEST(StringUtilsTest, Format) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("%.2f", 1.5), "1.50");
}

TEST(StringUtilsTest, ReplaceAll) {
  EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replaceAll("abc", "x", "y"), "abc");
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE((*json::parse("null")).isNull());
  EXPECT_TRUE((*json::parse("true")).getBoolean());
  EXPECT_FALSE((*json::parse("false")).getBoolean());
  EXPECT_DOUBLE_EQ((*json::parse("3.5")).getNumber(), 3.5);
  EXPECT_EQ((*json::parse("-17")).getInteger(), -17);
  EXPECT_EQ((*json::parse("\"hi\\n\"")).getString(), "hi\n");
}

TEST(JsonTest, ParsesNested) {
  auto Parsed = json::parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(Parsed);
  const json::Object &Root = Parsed->getObject();
  ASSERT_TRUE(Root.contains("a"));
  const auto &Array = Root.get("a")->getArray();
  ASSERT_EQ(Array.size(), 3u);
  EXPECT_TRUE(Array[2].getObject().get("b")->getBoolean());
  EXPECT_EQ(Root.get("c")->getString(), "x");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  auto Parsed = json::parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(Parsed);
  std::vector<std::string> Keys;
  for (const auto &[Key, Member] : Parsed->getObject())
    Keys.push_back(Key);
  EXPECT_EQ(Keys, (std::vector<std::string>{"z", "a", "m"}));
}

TEST(JsonTest, ErrorsCarryPosition) {
  auto Parsed = json::parse("{\n  \"a\": }");
  ASSERT_FALSE(Parsed);
  EXPECT_NE(Parsed.message().find("2:"), std::string::npos);
}

TEST(JsonTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(json::parse("1 2"));
}

TEST(JsonTest, RejectsUnterminatedString) {
  EXPECT_FALSE(json::parse("\"abc"));
}

TEST(JsonTest, LineCommentsAllowed) {
  auto Parsed = json::parse("// header\n{\"a\": 1 // trailing\n}");
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->getObject().get("a")->getInteger(), 1);
}

TEST(JsonTest, RoundTripCompact) {
  const char *Text = R"({"a":[1,2.5,"x"],"b":{"c":null,"d":false}})";
  auto Parsed = json::parse(Text);
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->toString(), Text);
}

TEST(JsonTest, PrettyPrintIsReparseable) {
  auto Parsed = json::parse(R"({"a": [1, 2], "b": "x"})");
  ASSERT_TRUE(Parsed);
  auto Reparsed = json::parse(Parsed->toPrettyString());
  ASSERT_TRUE(Reparsed);
  EXPECT_EQ(Reparsed->toString(), Parsed->toString());
}

TEST(JsonTest, DeepCopySemantics) {
  auto Parsed = json::parse(R"({"a": {"b": 1}})");
  ASSERT_TRUE(Parsed);
  json::Value Copy = *Parsed;
  Copy.getObject().get("a")->getObject().set("b", 2);
  EXPECT_EQ(Parsed->getObject().get("a")->getObject().get("b")->getInteger(),
            1);
  EXPECT_EQ(Copy.getObject().get("a")->getObject().get("b")->getInteger(), 2);
}

TEST(JsonTest, UnicodeEscapes) {
  auto Parsed = json::parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->getString(), "A\xc3\xa9");
}

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(RandomTest, Deterministic) {
  Random A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextUInt64(), B.nextUInt64());
}

TEST(RandomTest, BoundsRespected) {
  Random Rng(9);
  for (int I = 0; I < 1000; ++I) {
    int64_t Value = Rng.nextInRange(-3, 7);
    EXPECT_GE(Value, -3);
    EXPECT_LE(Value, 7);
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.nextUInt64() == B.nextUInt64();
  EXPECT_LT(Same, 4);
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

TEST(CommandLineTest, ParsesFlagsAndPositional) {
  const char *Argv[] = {"prog", "--size=64", "--name", "hdiff", "input.json"};
  auto Parsed = CommandLine::parse(5, Argv, {"size", "name"});
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->getInt("size", 0), 64);
  EXPECT_EQ(Parsed->getString("name"), "hdiff");
  ASSERT_EQ(Parsed->positional().size(), 1u);
  EXPECT_EQ(Parsed->positional()[0], "input.json");
}

TEST(CommandLineTest, RejectsUnknownFlag) {
  const char *Argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(CommandLine::parse(2, Argv, {"size"}));
}

TEST(CommandLineTest, DefaultsApply) {
  const char *Argv[] = {"prog"};
  auto Parsed = CommandLine::parse(1, Argv, {"w"});
  ASSERT_TRUE(Parsed);
  EXPECT_EQ(Parsed->getInt("w", 4), 4);
  EXPECT_DOUBLE_EQ(Parsed->getDouble("w", 2.5), 2.5);
  EXPECT_FALSE(Parsed->has("w"));
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

TEST(JsonWriterTest, EmitsNestedDocument) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.attribute("name", "trace");
  W.key("events");
  W.beginArray();
  W.beginObject();
  W.attribute("ts", static_cast<int64_t>(42));
  W.attribute("ok", true);
  W.endObject();
  W.value(1.5);
  W.valueNull();
  W.endArray();
  W.endObject();
  EXPECT_TRUE(W.complete());
  EXPECT_EQ(Out,
            "{\"name\":\"trace\",\"events\":[{\"ts\":42,\"ok\":true},"
            "1.5,null]}");
}

TEST(JsonWriterTest, EscapesStrings) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.attribute("k\"ey", "line\nbreak\ttab\\slash");
  W.endObject();
  EXPECT_EQ(Out, "{\"k\\\"ey\":\"line\\nbreak\\ttab\\\\slash\"}");
}

TEST(JsonWriterTest, IntegralDoublesPrintAsIntegers) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginArray();
  W.value(3.0);
  W.value(0.25);
  W.endArray();
  EXPECT_EQ(Out, "[3,0.25]");
}

TEST(JsonWriterTest, OutputRoundTripsThroughParser) {
  std::string Out;
  json::JsonWriter W(Out);
  W.beginObject();
  W.key("nested");
  W.beginArray();
  for (int I = 0; I != 3; ++I) {
    W.beginObject();
    W.attribute("i", I);
    W.attribute("label", formatString("item %d", I));
    W.endObject();
  }
  W.endArray();
  W.endObject();
  auto Parsed = json::parse(Out);
  ASSERT_TRUE(Parsed) << Parsed.message();
  const auto &Nested = Parsed->getObject().get("nested")->getArray();
  ASSERT_EQ(Nested.size(), 3u);
  EXPECT_EQ(Nested[2].getObject().get("label")->getString(), "item 2");
}

//===----------------------------------------------------------------------===//
// Exit-code taxonomy (the one table every CLI exits through)
//===----------------------------------------------------------------------===//

TEST(ExitCodeTest, TableCoversEveryErrorCodeInEnumOrder) {
  const std::vector<ExitCodeRow> &Table = exitCodeTable();
  ASSERT_EQ(static_cast<int>(Table.size()), NumErrorCodes);
  for (int I = 0; I != NumErrorCodes; ++I)
    EXPECT_EQ(Table[I].Code, static_cast<ErrorCode>(I));
}

TEST(ExitCodeTest, ClassifiedCodesAreDistinctSmallValues) {
  // The unclassified trio shares POSIX's generic 1; every classified
  // failure gets its own code so CI scripts can branch on the kind.
  std::set<int> Seen;
  for (const ExitCodeRow &Row : exitCodeTable()) {
    EXPECT_GT(Row.ExitCode, 0);
    EXPECT_LT(Row.ExitCode, 64) << "stay clear of the 64+ BSD range";
    if (Row.ExitCode == 1)
      continue;
    EXPECT_TRUE(Seen.insert(Row.ExitCode).second)
        << "duplicate exit code " << Row.ExitCode;
  }
  // Pinned values: these are documented in README/--help and scripts
  // depend on them, so a renumbering must be deliberate.
  EXPECT_EQ(exitCodeFor(ErrorCode::Unknown), 1);
  EXPECT_EQ(exitCodeFor(ErrorCode::InvalidInput), 1);
  EXPECT_EQ(exitCodeFor(ErrorCode::Infeasible), 1);
  EXPECT_EQ(exitCodeFor(ErrorCode::ValidationMismatch), 2);
  EXPECT_EQ(exitCodeFor(ErrorCode::Deadlock), 3);
  EXPECT_EQ(exitCodeFor(ErrorCode::CycleLimit), 4);
  EXPECT_EQ(exitCodeFor(ErrorCode::DeviceLost), 5);
  EXPECT_EQ(exitCodeFor(ErrorCode::LinkFailure), 6);
  EXPECT_EQ(exitCodeFor(ErrorCode::DataCorruption), 7);
  EXPECT_EQ(exitCodeFor(ErrorCode::Starvation), 8);
  EXPECT_EQ(exitCodeFor(ErrorCode::SnapshotInvalid), 9);
  EXPECT_EQ(exitCodeFor(ErrorCode::SnapshotIncompatible), 10);
  EXPECT_EQ(exitCodeFor(ErrorCode::Overloaded), 11);
}

TEST(ExitCodeTest, NamesRoundTripAndLegendListsEveryDistinctCode) {
  for (int I = 0; I != NumErrorCodes; ++I) {
    ErrorCode Code = static_cast<ErrorCode>(I);
    std::optional<ErrorCode> Back = errorCodeFromName(errorCodeName(Code));
    ASSERT_TRUE(Back.has_value()) << errorCodeName(Code);
    EXPECT_EQ(*Back, Code);
  }
  EXPECT_FALSE(errorCodeFromName("no-such-code").has_value());

  std::string Legend = exitCodeLegend();
  EXPECT_NE(Legend.find("0 success"), std::string::npos);
  for (const ExitCodeRow &Row : exitCodeTable()) {
    if (Row.ExitCode == 1)
      continue; // collapsed into the generic "1  error" line
    EXPECT_NE(Legend.find(errorCodeName(Row.Code)), std::string::npos)
        << errorCodeName(Row.Code);
  }
}
