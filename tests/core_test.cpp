//===- tests/core_test.cpp - Core analysis tests ------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "core/BufferAnalysis.h"
#include "core/DataflowAnalysis.h"
#include "core/Partitioner.h"
#include "core/ResourceModel.h"
#include "core/RuntimeModel.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

namespace {

const InternalBuffer *findBuffer(const NodeBuffers &Buffers,
                                 const std::string &Field) {
  for (const InternalBuffer &Buffer : Buffers.Buffers)
    if (Buffer.Field == Field)
      return &Buffer;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Internal buffers (Sec. IV-A)
//===----------------------------------------------------------------------===//

TEST(BufferAnalysisTest, PaperExampleTwoRows) {
  // 3D space {K, J, I}; accesses a[0,1,0] and a[0,-1,0] buffer two 1D rows:
  // 2I + W elements.
  int64_t K = 6, J = 8, I = 16;
  StencilProgram P;
  P.IterationSpace = Shape({K, J, I});
  addInput(P, "a");
  addStencil(P, "out", "out = a[0, 1, 0] + a[0, -1, 0];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Buffers = computeNodeBuffers(P, *P.findNode("out"));
  const InternalBuffer *Buffer = findBuffer(Buffers, "a");
  ASSERT_NE(Buffer, nullptr);
  EXPECT_TRUE(Buffer->NeedsShiftRegister);
  EXPECT_EQ(Buffer->DistanceElements, 2 * I);
  EXPECT_EQ(Buffer->SizeElements, 2 * I + 1); // W = 1.
  EXPECT_EQ(Buffers.InitCycles, 2 * I);
}

TEST(BufferAnalysisTest, PaperExampleTwoSlices) {
  // Accesses b[0,0,0] and b[1,0,0] buffer one 2D slice: IJ + W elements
  // ([1,..] vs [-1,..] would be 2IJ + W, Fig. 7 bottom).
  int64_t K = 6, J = 8, I = 16;
  StencilProgram P;
  P.IterationSpace = Shape({K, J, I});
  addInput(P, "b");
  addStencil(P, "out", "out = b[0, 0, 0] + b[1, 0, 0];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Buffers = computeNodeBuffers(P, *P.findNode("out"));
  const InternalBuffer *Buffer = findBuffer(Buffers, "b");
  ASSERT_NE(Buffer, nullptr);
  EXPECT_EQ(Buffer->DistanceElements, J * I);
  EXPECT_EQ(Buffer->SizeElements, J * I + 1);
}

TEST(BufferAnalysisTest, VectorWidthAddsToSize) {
  int64_t J = 8, I = 16, W = 4;
  StencilProgram P = laplace2d(J, I, static_cast<int>(W));
  NodeBuffers Buffers = computeNodeBuffers(P, P.Nodes[0]);
  const InternalBuffer *Buffer = findBuffer(Buffers, "a");
  ASSERT_NE(Buffer, nullptr);
  // Laplace accesses [-1,0]..[1,0]: distance = 2I.
  EXPECT_EQ(Buffer->DistanceElements, 2 * I);
  EXPECT_EQ(Buffer->SizeElements, 2 * I + W);
  // Init cycles shrink by W.
  EXPECT_EQ(Buffer->InitCycles, 2 * I / W);
}

TEST(BufferAnalysisTest, SingleAccessNeedsNoShiftRegister) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = a[0, 0] * 2.0;");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Buffers = computeNodeBuffers(P, *P.findNode("out"));
  const InternalBuffer *Buffer = findBuffer(Buffers, "a");
  ASSERT_NE(Buffer, nullptr);
  EXPECT_FALSE(Buffer->NeedsShiftRegister);
  EXPECT_EQ(Buffer->DistanceElements, 0);
  EXPECT_EQ(Buffer->InitCycles, 0);
  EXPECT_EQ(Buffers.InitCycles, 0);
}

TEST(BufferAnalysisTest, MiddleAccessesDoNotChangeSize) {
  // "Additional accesses in between the highest and lowest offset in memory
  // order do not affect the total buffer size" (Sec. IV-A).
  int64_t J = 8, I = 16;
  StencilProgram P;
  P.IterationSpace = Shape({J, I});
  addInput(P, "a");
  addStencil(P, "two", "two = a[-1, 0] + a[1, 0];");
  addStencil(P, "five",
             "five = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] + a[0, 0];");
  P.Outputs = {"two", "five"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Two = computeNodeBuffers(P, *P.findNode("two"));
  NodeBuffers Five = computeNodeBuffers(P, *P.findNode("five"));
  EXPECT_EQ(findBuffer(Two, "a")->SizeElements,
            findBuffer(Five, "a")->SizeElements);
  // But the tap count differs.
  EXPECT_EQ(findBuffer(Two, "a")->TapsElements.size(), 2u);
  EXPECT_EQ(findBuffer(Five, "a")->TapsElements.size(), 5u);
}

TEST(BufferAnalysisTest, FillDelaysSynchronizeFields) {
  // Two fields with different buffer sizes: the smaller starts filling
  // after max{B} - B_i iterations (Sec. IV-A).
  int64_t J = 8, I = 16;
  StencilProgram P;
  P.IterationSpace = Shape({J, I});
  addInput(P, "a");
  addInput(P, "b");
  addStencil(P, "out", "out = a[-1, 0] + a[1, 0] + b[0, -1] + b[0, 1];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Buffers = computeNodeBuffers(P, *P.findNode("out"));
  const InternalBuffer *A = findBuffer(Buffers, "a");
  const InternalBuffer *B = findBuffer(Buffers, "b");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(A->DistanceElements, 2 * I);
  EXPECT_EQ(B->DistanceElements, 2);
  EXPECT_EQ(Buffers.InitCycles, 2 * I);
  EXPECT_EQ(A->FillDelayCycles, 0);
  EXPECT_EQ(B->FillDelayCycles, 2 * I - 2);
}

TEST(BufferAnalysisTest, TapsRelativeToOldest) {
  StencilProgram P = laplace2d(8, 16);
  NodeBuffers Buffers = computeNodeBuffers(P, P.Nodes[0]);
  const InternalBuffer *Buffer = findBuffer(Buffers, "a");
  ASSERT_NE(Buffer, nullptr);
  // Offsets [-1,0],[0,-1],[0,0],[0,1],[1,0] with I=16: taps 0,15,16,17,32.
  EXPECT_EQ(Buffer->TapsElements,
            (std::vector<int64_t>{0, 15, 16, 17, 32}));
}

TEST(BufferAnalysisTest, LowerRankInputsExcluded) {
  StencilProgram P;
  P.IterationSpace = Shape({4, 8, 8});
  addInput(P, "a");
  Field C;
  C.Name = "c";
  C.DimensionMask = {true, false, false};
  P.Inputs.push_back(C);
  addStencil(P, "out", "out = a[0,0,0] * c[0] + a[0,0,1] * c[1];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  NodeBuffers Buffers = computeNodeBuffers(P, *P.findNode("out"));
  EXPECT_EQ(findBuffer(Buffers, "c"), nullptr);
  EXPECT_NE(findBuffer(Buffers, "a"), nullptr);
}

//===----------------------------------------------------------------------===//
// Delay buffers (Sec. IV-B)
//===----------------------------------------------------------------------===//

TEST(DataflowTest, DiamondGetsDelayBuffer) {
  StencilProgram P = diamondProgram(24, 24);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow) << Dataflow.message();

  // C consumes A directly and through B. The A->C edge must buffer B's
  // init + circuit latency; the B->C edge gets zero.
  const DataflowEdge *AC = Dataflow->findEdge("A", "C");
  const DataflowEdge *BC = Dataflow->findEdge("B", "C");
  ASSERT_NE(AC, nullptr);
  ASSERT_NE(BC, nullptr);
  EXPECT_EQ(BC->BufferDepth, 0);
  const NodeDataflow &B = Dataflow->nodeInfo("B");
  EXPECT_EQ(AC->BufferDepth, B.InitCycles + B.CircuitLatency);
  EXPECT_GT(AC->BufferDepth, 0);
}

TEST(DataflowTest, EveryNodeHasAZeroBufferEdge) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    StencilProgram P = randomProgram(Seed);
    auto Compiled = CompiledProgram::compile(std::move(P));
    ASSERT_TRUE(Compiled);
    auto Dataflow = analyzeDataflow(*Compiled);
    ASSERT_TRUE(Dataflow);
    for (const NodeDataflow &Node : Dataflow->Nodes) {
      int64_t MinBuffer = std::numeric_limits<int64_t>::max();
      bool HasEdge = false;
      for (const DataflowEdge &Edge : Dataflow->Edges) {
        if (Edge.Consumer != Node.Node)
          continue;
        HasEdge = true;
        MinBuffer = std::min(MinBuffer, Edge.BufferDepth);
        EXPECT_GE(Edge.BufferDepth, 0);
      }
      if (HasEdge) {
        EXPECT_EQ(MinBuffer, 0) << "node " << Node.Node << " seed " << Seed;
      }
    }
  }
}

TEST(DataflowTest, ChainDelaysAccumulate) {
  StencilProgram P = jacobi3dChain(4, 6, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  // In a linear chain every node's total delay strictly grows and all
  // delay buffers are zero (single-path DAG).
  int64_t Last = -1;
  for (const NodeDataflow &Node : Dataflow->Nodes) {
    EXPECT_GT(Node.TotalDelay, Last);
    Last = Node.TotalDelay;
  }
  for (const DataflowEdge &Edge : Dataflow->Edges)
    EXPECT_EQ(Edge.BufferDepth, 0);
  // L equals the last node's delay.
  EXPECT_EQ(Dataflow->PipelineLatency, Last);
}

TEST(DataflowTest, PipelineLatencyComposition) {
  StencilProgram P = jacobi3dChain(3, 6, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  compute::LatencyTable Latencies;
  auto Dataflow = analyzeDataflow(*Compiled, Latencies);
  ASSERT_TRUE(Dataflow);
  // Each Jacobi buffers 2*J*I elements and has a known circuit depth.
  int64_t Init = 2 * 6 * 6;
  int64_t Circuit = Compiled->kernel(0).criticalPathLatency(Latencies);
  EXPECT_EQ(Dataflow->PipelineLatency, 3 * (Init + Circuit));
}

TEST(DataflowTest, VectorizationShrinksLatency) {
  StencilProgram Scalar = jacobi3dChain(2, 8, 8, 8, 1);
  StencilProgram Vector = jacobi3dChain(2, 8, 8, 8, 4);
  auto CompiledScalar = CompiledProgram::compile(std::move(Scalar));
  auto CompiledVector = CompiledProgram::compile(std::move(Vector));
  ASSERT_TRUE(CompiledScalar);
  ASSERT_TRUE(CompiledVector);
  auto DataflowScalar = analyzeDataflow(*CompiledScalar);
  auto DataflowVector = analyzeDataflow(*CompiledVector);
  ASSERT_TRUE(DataflowScalar);
  ASSERT_TRUE(DataflowVector);
  EXPECT_LT(DataflowVector->PipelineLatency,
            DataflowScalar->PipelineLatency);
}

TEST(DataflowTest, SharedInputReadOnce) {
  // Two stencils read the same input: both get edges from the same source
  // (it is "sufficient to read it from memory once", Sec. IV-B).
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "x", "x = a[0, 0] * 2.0;");
  addStencil(P, "y", "y = a[0, 1] + x[0, 0];");
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  EXPECT_NE(Dataflow->findEdge("a", "x"), nullptr);
  EXPECT_NE(Dataflow->findEdge("a", "y"), nullptr);
  // y's direct 'a' edge must buffer x's latency.
  EXPECT_GT(Dataflow->findEdge("a", "y")->BufferDepth, 0);
}

TEST(DataflowTest, ReportIsReadable) {
  StencilProgram P = diamondProgram();
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  std::string Report = Dataflow->report();
  EXPECT_NE(Report.find("pipeline latency"), std::string::npos);
  EXPECT_NE(Report.find("delay buffers"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Runtime model (Sec. VIII-A)
//===----------------------------------------------------------------------===//

TEST(RuntimeModelTest, CyclesAreLatencyPlusIterations) {
  StencilProgram P = jacobi3dChain(2, 8, 8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  RuntimeEstimate Estimate = computeRuntimeEstimate(*Compiled, *Dataflow);
  EXPECT_EQ(Estimate.StreamedCycles, 8 * 8 * 8);
  EXPECT_EQ(Estimate.LatencyCycles, Dataflow->PipelineLatency);
  EXPECT_EQ(Estimate.TotalCycles,
            Estimate.LatencyCycles + Estimate.StreamedCycles);
  EXPECT_EQ(Estimate.FlopsPerCell, 14); // 2 stencils * (6 add + 1 mul).
  EXPECT_EQ(Estimate.TotalFlops, 14 * 8 * 8 * 8);
}

TEST(RuntimeModelTest, VectorizationDividesIterations) {
  StencilProgram P = jacobi3dChain(1, 8, 8, 8, 4);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  RuntimeEstimate Estimate = computeRuntimeEstimate(*Compiled, *Dataflow);
  EXPECT_EQ(Estimate.StreamedCycles, 8 * 8 * 8 / 4);
}

TEST(RuntimeModelTest, SecondsAndOps) {
  RuntimeEstimate Estimate;
  Estimate.TotalCycles = 300000000;
  Estimate.TotalFlops = 600000000;
  EXPECT_DOUBLE_EQ(Estimate.seconds(300e6), 1.0);
  EXPECT_DOUBLE_EQ(Estimate.opsPerSecond(300e6), 600e6);
}

TEST(MemoryTrafficTest, PerfectReuseCountsEachFieldOnce) {
  // Diamond: input read once despite two consumers of A; one output.
  StencilProgram P = diamondProgram(8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  MemoryTraffic Traffic = computeMemoryTraffic(*Compiled);
  EXPECT_EQ(Traffic.ReadElements, 8 * 8);
  EXPECT_EQ(Traffic.WriteElements, 8 * 8);
  EXPECT_EQ(Traffic.ReadBytes, 8 * 8 * 4);
  // One streamed input + one output, W=1.
  EXPECT_EQ(Traffic.OperandsPerCycle, 2);
}

TEST(MemoryTrafficTest, HdiffStyleVolumes) {
  // 5 full-rank inputs + 5 1D inputs + 4 outputs: reads 5*KJI + 5*K,
  // writes 4*KJI (the Sec. IX-A accounting).
  int64_t K = 4, J = 6, I = 8;
  StencilProgram P;
  P.IterationSpace = Shape({K, J, I});
  for (int N = 0; N < 5; ++N)
    addInput(P, formatString("f%d", N));
  for (int N = 0; N < 5; ++N) {
    Field C;
    C.Name = formatString("c%d", N);
    C.DimensionMask = {true, false, false};
    P.Inputs.push_back(C);
  }
  for (int N = 0; N < 4; ++N)
    addStencil(P, formatString("o%d", N),
               formatString("o%d = f%d[0,0,0] * c%d[0] + f4[0,0,0] * c4[0];",
                            N, N, N));
  P.Outputs = {"o0", "o1", "o2", "o3"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  MemoryTraffic Traffic = computeMemoryTraffic(*Compiled);
  EXPECT_EQ(Traffic.ReadElements, 5 * K * J * I + 5 * K);
  EXPECT_EQ(Traffic.WriteElements, 4 * K * J * I);
  // Streamed endpoints: 5 full-rank inputs + 4 outputs = 9 operands/cycle
  // (the paper's "approximately 9 operands/cycle").
  EXPECT_EQ(Traffic.OperandsPerCycle, 9);
}

TEST(RooflineTest, LaplaceIntensity) {
  StencilProgram P = laplace2d(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  RooflineAnalysis Roofline = computeRoofline(*Compiled);
  // Laplace: 4 adds + 1 mul = 5 flops; 1 read + 1 write = 2 operands.
  EXPECT_DOUBLE_EQ(Roofline.OpsPerOperand, 2.5);
  EXPECT_DOUBLE_EQ(Roofline.OpsPerByte, 2.5 / 4.0);
  EXPECT_DOUBLE_EQ(Roofline.boundPerformance(58.3e9), 2.5 / 4.0 * 58.3e9);
  EXPECT_NEAR(Roofline.requiredBandwidth(917.1e9), 917.1e9 / (2.5 / 4.0),
              1.0);
}

//===----------------------------------------------------------------------===//
// Resource model
//===----------------------------------------------------------------------===//

TEST(ResourceModelTest, Stratix10Capacities) {
  DeviceResources Device = DeviceResources::stratix10GX2800();
  EXPECT_EQ(Device.ALMs, 692000);
  EXPECT_EQ(Device.DSPs, 4468);
  EXPECT_EQ(Device.M20Ks, 8900);
}

TEST(ResourceModelTest, DSPsScaleWithVectorWidth) {
  auto CompiledScalar =
      CompiledProgram::compile(jacobi3dChain(1, 8, 8, 8, 1));
  auto CompiledVector =
      CompiledProgram::compile(jacobi3dChain(1, 8, 8, 8, 4));
  ASSERT_TRUE(CompiledScalar);
  ASSERT_TRUE(CompiledVector);
  auto DataflowScalar = analyzeDataflow(*CompiledScalar);
  auto DataflowVector = analyzeDataflow(*CompiledVector);
  ResourceUsage Scalar = estimateNodeResources(*CompiledScalar, 0,
                                               DataflowScalar->Buffers[0]);
  ResourceUsage Vector = estimateNodeResources(*CompiledVector, 0,
                                               DataflowVector->Buffers[0]);
  EXPECT_EQ(Vector.DSPs, 4 * Scalar.DSPs);
}

TEST(ResourceModelTest, JacobiDSPCount) {
  // Jacobi 3D: 6 adds + 1 mul = 7 flops -> 7 DSPs per lane (the paper's
  // peak kernels show ~1 DSP per flop lane).
  auto Compiled = CompiledProgram::compile(jacobi3dChain(1, 8, 8, 8, 1));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ResourceUsage Usage =
      estimateNodeResources(*Compiled, 0, Dataflow->Buffers[0]);
  EXPECT_EQ(Usage.DSPs, 7);
}

TEST(ResourceModelTest, M20KsTrackBufferBytes) {
  // A stencil buffering a full 2D slice needs slice_bytes / 2560 blocks.
  int64_t K = 4, J = 32, I = 80;
  StencilProgram P;
  P.IterationSpace = Shape({K, J, I});
  addInput(P, "a");
  addStencil(P, "out", "out = a[1, 0, 0] + a[-1, 0, 0];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Dataflow = analyzeDataflow(*Compiled);
  ResourceUsage Usage =
      estimateNodeResources(*Compiled, 0, Dataflow->Buffers[0]);
  ResourceModelConfig Config;
  int64_t BufferBytes = (2 * J * I + 1) * 4;
  EXPECT_GE(Usage.M20Ks, BufferBytes / Config.M20KBytes);
}

TEST(ResourceModelTest, FrequencyDegradesWithUtilization) {
  DeviceResources Device = DeviceResources::stratix10GX2800();
  ResourceUsage Small;
  Small.ALMs = 10000;
  ResourceUsage Large;
  Large.ALMs = 600000;
  double FSmall = estimateFrequencyMHz(Small, Device);
  double FLarge = estimateFrequencyMHz(Large, Device);
  EXPECT_GT(FSmall, FLarge);
  // Both in the paper's observed 292-317 MHz range (Sec. VIII-C) modulo
  // the clamp.
  EXPECT_LE(FSmall, 317.0);
  EXPECT_GE(FLarge, 250.0);
}

TEST(ResourceModelTest, UsageReportFormat) {
  ResourceUsage Usage;
  Usage.ALMs = 449000;
  Usage.FFs = 1329000;
  Usage.M20Ks = 2565;
  Usage.DSPs = 2304;
  std::string Report = Usage.report(DeviceResources::stratix10GX2800());
  EXPECT_NE(Report.find("ALM 449K (64.9%)"), std::string::npos);
  EXPECT_NE(Report.find("DSP 2304 (51.6%)"), std::string::npos);
}

TEST(ResourceModelTest, ProgramEstimateIncludesEndpoints) {
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ResourceUsage Node =
      estimateNodeResources(*Compiled, 0, Dataflow->Buffers[0]);
  ResourceUsage Total = estimateProgramResources(*Compiled, *Dataflow);
  EXPECT_GT(Total.ALMs, Node.ALMs); // Reader + writer endpoints.
}

//===----------------------------------------------------------------------===//
// Partitioner (Sec. III-B)
//===----------------------------------------------------------------------===//

TEST(PartitionerTest, SmallProgramFitsOneDevice) {
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  auto Result = partitionProgram(*Compiled, *Dataflow);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->numDevices(), 1u);
  EXPECT_TRUE(Result->RemoteStreams.empty());
}

TEST(PartitionerTest, LongChainSpills) {
  auto Compiled = CompiledProgram::compile(jacobi3dChain(40, 4, 8, 8));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions Options;
  // Shrink the device so the chain must span several devices.
  Options.Device.ALMs = 60000;
  Options.Device.FFs = 240000;
  Options.Device.M20Ks = 800;
  Options.Device.DSPs = 400;
  Options.MaxDevices = 16;
  auto Result = partitionProgram(*Compiled, *Dataflow, Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_GT(Result->numDevices(), 1u);
  // A linear chain crossing D devices has exactly D-1 remote streams.
  EXPECT_EQ(Result->RemoteStreams.size(), Result->numDevices() - 1);
  // Streams flow forward.
  for (const RemoteStream &Stream : Result->RemoteStreams)
    EXPECT_LT(Stream.SourceDevice, Stream.ConsumerDevice);
}

TEST(PartitionerTest, InputReplication) {
  // Two stencils on (forced) different devices read the same input field:
  // it must be resident on both (Fig. 5).
  StencilProgram P;
  P.IterationSpace = Shape({16, 16});
  addInput(P, "a");
  addStencil(P, "x", "x = a[0, 0] * 2.0;");
  addStencil(P, "y", "y = x[0, 0] + a[0, 1];");
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions Options;
  // Force one node per device: each node uses at least one DSP, so a
  // one-DSP budget admits exactly one node per device.
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs = 1;
  auto Result = partitionProgram(*Compiled, *Dataflow, Options);
  ASSERT_TRUE(Result) << Result.message();
  ASSERT_EQ(Result->numDevices(), 2u);
  // 'a' is consumed by x (device 0) and y (device 1): replicated to both.
  EXPECT_NE(std::find(Result->Devices[0].ReplicatedInputs.begin(),
                      Result->Devices[0].ReplicatedInputs.end(), "a"),
            Result->Devices[0].ReplicatedInputs.end());
  EXPECT_NE(std::find(Result->Devices[1].ReplicatedInputs.begin(),
                      Result->Devices[1].ReplicatedInputs.end(), "a"),
            Result->Devices[1].ReplicatedInputs.end());
}

TEST(PartitionerTest, FailsWhenTooLarge) {
  auto Compiled = CompiledProgram::compile(jacobi3dChain(40, 4, 8, 8));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions Options;
  Options.Device.ALMs = 60000;
  Options.Device.FFs = 240000;
  Options.Device.M20Ks = 800;
  Options.Device.DSPs = 400;
  Options.MaxDevices = 1;
  auto Result = partitionProgram(*Compiled, *Dataflow, Options);
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.message().find("does not fit"), std::string::npos);
}

TEST(PartitionerTest, OutputsWrittenFromProducerDevice) {
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  auto Result = partitionProgram(*Compiled, *Dataflow);
  ASSERT_TRUE(Result);
  EXPECT_EQ(Result->Devices[0].OutputsWritten,
            (std::vector<std::string>{"b"}));
}
