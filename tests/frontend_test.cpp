//===- tests/frontend_test.cpp - Frontend tests -------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "frontend/ProgramLoader.h"
#include "frontend/SemanticAnalysis.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, TokenizesOperators) {
  auto Tokens = tokenize("a <= b != c && d || !e");
  ASSERT_TRUE(Tokens);
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : *Tokens)
    Kinds.push_back(Tok.Kind);
  EXPECT_EQ(Kinds, (std::vector<TokenKind>{
                       TokenKind::Identifier, TokenKind::LessEqual,
                       TokenKind::Identifier, TokenKind::NotEqual,
                       TokenKind::Identifier, TokenKind::AmpAmp,
                       TokenKind::Identifier, TokenKind::PipePipe,
                       TokenKind::Not, TokenKind::Identifier,
                       TokenKind::EndOfInput}));
}

TEST(LexerTest, NumbersWithExponentsAndSuffix) {
  auto Tokens = tokenize("1.5e-3 2.0f 42");
  ASSERT_TRUE(Tokens);
  EXPECT_DOUBLE_EQ((*Tokens)[0].NumberValue, 1.5e-3);
  EXPECT_DOUBLE_EQ((*Tokens)[1].NumberValue, 2.0);
  EXPECT_DOUBLE_EQ((*Tokens)[2].NumberValue, 42.0);
}

TEST(LexerTest, CommentsSkipped) {
  auto Tokens = tokenize("a = 1; # comment\nb = 2; // more\n");
  ASSERT_TRUE(Tokens);
  EXPECT_EQ(Tokens->size(), 9u); // 2 * (ident, =, num, ;) + EOF.
}

TEST(LexerTest, PositionsTracked) {
  auto Tokens = tokenize("a\n  b");
  ASSERT_TRUE(Tokens);
  EXPECT_EQ((*Tokens)[0].Line, 1u);
  EXPECT_EQ((*Tokens)[1].Line, 2u);
  EXPECT_EQ((*Tokens)[1].Column, 3u);
}

TEST(LexerTest, RejectsBitwiseOperators) {
  EXPECT_FALSE(tokenize("a & b"));
  EXPECT_FALSE(tokenize("a | b"));
  EXPECT_FALSE(tokenize("a @ b"));
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, Precedence) {
  auto E = parseExpression("a + b * c");
  ASSERT_TRUE(E);
  EXPECT_EQ((*E)->toString(), "(a + (b * c))");
}

TEST(ParserTest, Parentheses) {
  auto E = parseExpression("(a + b) * c");
  ASSERT_TRUE(E);
  EXPECT_EQ((*E)->toString(), "((a + b) * c)");
}

TEST(ParserTest, Ternary) {
  auto E = parseExpression("a > 0.0 ? b : c");
  ASSERT_TRUE(E);
  EXPECT_EQ((*E)->toString(), "((a > 0.0) ? b : c)");
}

TEST(ParserTest, NestedTernaryRightAssociative) {
  auto E = parseExpression("a > 0.0 ? b : c > 0.0 ? d : e");
  ASSERT_TRUE(E);
  EXPECT_EQ((*E)->toString(), "((a > 0.0) ? b : ((c > 0.0) ? d : e))");
}

TEST(ParserTest, FieldAccessOffsets) {
  auto E = parseExpression("a[0, -1, 2]");
  ASSERT_TRUE(E);
  auto *Access = dyn_cast<FieldAccessExpr>(E->get());
  ASSERT_NE(Access, nullptr);
  EXPECT_EQ(Access->offset(), (Offset{0, -1, 2}));
}

TEST(ParserTest, NegativeLiteralFolded) {
  auto E = parseExpression("-4.0");
  ASSERT_TRUE(E);
  auto *Lit = dyn_cast<LiteralExpr>(E->get());
  ASSERT_NE(Lit, nullptr);
  EXPECT_DOUBLE_EQ(Lit->value(), -4.0);
}

TEST(ParserTest, Intrinsics) {
  auto E = parseExpression("min(sqrt(a), max(b, 2.0))");
  ASSERT_TRUE(E);
  EXPECT_EQ((*E)->toString(), "min(sqrt(a), max(b, 2.0))");
}

TEST(ParserTest, RejectsUnknownFunction) {
  auto E = parseExpression("external_lookup(a)");
  ASSERT_FALSE(E);
  EXPECT_NE(E.message().find("math functions"), std::string::npos);
}

TEST(ParserTest, RejectsWrongArity) {
  EXPECT_FALSE(parseExpression("sqrt(a, b)"));
  EXPECT_FALSE(parseExpression("min(a)"));
}

TEST(ParserTest, RejectsNonIntegerOffsets) {
  EXPECT_FALSE(parseExpression("a[0.5]"));
  EXPECT_FALSE(parseExpression("a[b]"));
}

TEST(ParserTest, StatementsRequireSemicolons) {
  EXPECT_FALSE(parseStencilCode("a = 1.0"));
  EXPECT_TRUE(parseStencilCode("a = 1.0;"));
}

TEST(ParserTest, MultiStatementBlock) {
  auto Code = parseStencilCode("t = a[0] + 1.0;\nb = t * t;");
  ASSERT_TRUE(Code);
  ASSERT_EQ(Code->Statements.size(), 2u);
  EXPECT_EQ(Code->Statements[0].Target, "t");
  EXPECT_EQ(Code->Statements[1].Target, "b");
}

TEST(ParserTest, ErrorPositionsReported) {
  auto Code = parseStencilCode("a = 1.0;\nb = * 2;");
  ASSERT_FALSE(Code);
  EXPECT_NE(Code.message().find("2:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Semantic analysis
//===----------------------------------------------------------------------===//

TEST(SemanticTest, ResolvesLocalsAndFields) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "t = a[0, 0] * 2.0; out = t + a[0, 1];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  const StencilNode *Node = P.findNode("out");
  ASSERT_NE(Node, nullptr);
  ASSERT_EQ(Node->Accesses.size(), 1u);
  EXPECT_EQ(Node->Accesses[0].Field, "a");
  EXPECT_EQ(Node->Accesses[0].Offsets.size(), 2u);
}

TEST(SemanticTest, BareNameResolvesToZeroOffsetAccess) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = a + 1.0;");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  EXPECT_EQ(P.findNode("out")->Accesses[0].Offsets[0], (Offset{0, 0}));
}

TEST(SemanticTest, ScalarFieldAccess) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  Field Scalar;
  Scalar.Name = "alpha";
  Scalar.DimensionMask = {false, false};
  P.Inputs.push_back(Scalar);
  addStencil(P, "out", "out = a[0, 0] * alpha;");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  const FieldAccesses *FA = P.findNode("out")->accessesFor("alpha");
  ASSERT_NE(FA, nullptr);
  EXPECT_TRUE(FA->Offsets[0].empty());
}

TEST(SemanticTest, OffsetsSortedInMemoryOrder) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = a[1, 0] + a[-1, 0] + a[0, 0];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  const auto &Offsets = P.findNode("out")->Accesses[0].Offsets;
  EXPECT_EQ(Offsets[0], (Offset{-1, 0}));
  EXPECT_EQ(Offsets[1], (Offset{0, 0}));
  EXPECT_EQ(Offsets[2], (Offset{1, 0}));
}

TEST(SemanticTest, DuplicateOffsetsDeduplicated) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = a[0, 1] + a[0, 1];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  EXPECT_EQ(P.findNode("out")->Accesses[0].Offsets.size(), 1u);
}

TEST(SemanticTest, UndefinedNameRejected) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = ghost + a[0, 0];");
  P.Outputs = {"out"};
  Error Err = analyzeProgram(P);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("ghost"), std::string::npos);
}

TEST(SemanticTest, UseBeforeDefRejected) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "x = y + a[0, 0]; y = 1.0; out = x;");
  P.Outputs = {"out"};
  EXPECT_TRUE(analyzeProgram(P));
}

TEST(SemanticTest, LocalShadowingFieldRejected) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "a = 1.0; out = a;");
  P.Outputs = {"out"};
  Error Err = analyzeProgram(P);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("shadows"), std::string::npos);
}

TEST(SemanticTest, WrongRankOffsetRejected) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = a[0, 0, 0];");
  P.Outputs = {"out"};
  EXPECT_TRUE(analyzeProgram(P));
}

TEST(SemanticTest, ReadingOwnOutputRejected) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = out[0, 0] + a[0, 0];");
  P.Outputs = {"out"};
  EXPECT_TRUE(analyzeProgram(P));
}

TEST(SemanticTest, FinalStatementMustMatchNodeName) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "wrong = a[0, 0];");
  P.Outputs = {"out"};
  EXPECT_TRUE(analyzeProgram(P));
}

//===----------------------------------------------------------------------===//
// Program loader
//===----------------------------------------------------------------------===//

namespace {

const char *LaplaceJson = R"({
  "name": "laplace2d",
  "dimensions": [16, 16],
  "inputs": {
    "a": {"data_type": "float32", "data": {"kind": "random", "seed": 7}}
  },
  "outputs": ["b"],
  "program": {
    "b": {
      "computation":
        "b = a[0,-1] + a[0,1] + a[-1,0] + a[1,0] - 4.0 * a[0,0];",
      "boundary_conditions": {"a": {"type": "constant", "value": 0.0}}
    }
  }
})";

} // namespace

TEST(LoaderTest, LoadsLaplace) {
  auto Program = programFromJsonText(LaplaceJson);
  ASSERT_TRUE(Program) << Program.message();
  EXPECT_EQ(Program->Name, "laplace2d");
  EXPECT_EQ(Program->IterationSpace.extents(),
            (std::vector<int64_t>{16, 16}));
  EXPECT_EQ(Program->Nodes.size(), 1u);
  EXPECT_EQ(Program->Nodes[0].Accesses[0].Offsets.size(), 5u);
  EXPECT_EQ(Program->Nodes[0].boundaryFor("a").Kind,
            BoundaryKind::Constant);
}

TEST(LoaderTest, DefaultsOutputsToSinks) {
  const char *Json = R"({
    "dimensions": [8, 8],
    "inputs": {"a": {}},
    "program": {
      "mid": {"computation": "mid = a[0,0] * 2.0;"},
      "end": {"computation": "end = mid[0,0] + 1.0;"}
    }
  })";
  auto Program = programFromJsonText(Json);
  ASSERT_TRUE(Program) << Program.message();
  EXPECT_EQ(Program->Outputs, (std::vector<std::string>{"end"}));
}

TEST(LoaderTest, LowerDimensionalInput) {
  const char *Json = R"({
    "dimensions": [4, 8, 8],
    "inputs": {
      "a": {},
      "c": {"dimensions": ["k"]}
    },
    "outputs": ["out"],
    "program": {
      "out": {"computation": "out = a[0,0,0] * c[0];"}
    }
  })";
  auto Program = programFromJsonText(Json);
  ASSERT_TRUE(Program) << Program.message();
  const Field *C = Program->findInput("c");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->rank(), 1u);
  EXPECT_EQ(C->shapeWithin(Program->IterationSpace).extents(),
            (std::vector<int64_t>{4}));
}

TEST(LoaderTest, VectorizationParsed) {
  const char *Json = R"({
    "dimensions": [8, 8],
    "vectorization": 4,
    "inputs": {"a": {}},
    "outputs": ["b"],
    "program": {"b": {"computation": "b = a[0,0] + 1.0;"}}
  })";
  auto Program = programFromJsonText(Json);
  ASSERT_TRUE(Program) << Program.message();
  EXPECT_EQ(Program->VectorWidth, 4);
}

TEST(LoaderTest, RejectsBadDimensions) {
  EXPECT_FALSE(programFromJsonText(R"({"dimensions": [], "program": {}})"));
  EXPECT_FALSE(programFromJsonText(
      R"({"dimensions": [1,2,3,4], "program": {}})"));
  EXPECT_FALSE(programFromJsonText(
      R"({"dimensions": [0], "program": {}})"));
}

TEST(LoaderTest, RejectsMissingComputation) {
  const char *Json = R"({
    "dimensions": [8, 8],
    "inputs": {"a": {}},
    "program": {"b": {}}
  })";
  EXPECT_FALSE(programFromJsonText(Json));
}

TEST(LoaderTest, RejectsUnknownBoundary) {
  const char *Json = R"({
    "dimensions": [8, 8],
    "inputs": {"a": {}},
    "outputs": ["b"],
    "program": {
      "b": {"computation": "b = a[0,0];",
            "boundary_conditions": {"a": {"type": "mirror"}}}
    }
  })";
  EXPECT_FALSE(programFromJsonText(Json));
}

TEST(LoaderTest, ErrorsNameTheFieldPathAndOffendingJson) {
  // Malformed descriptions fail with the JSON path of the offending field
  // and the value found there, so the message pinpoints what to fix.
  struct Case {
    const char *Json;
    const char *ExpectedFragment;
  } Cases[] = {
      {R"({"dimensions": [8, "x"], "program": {}})",
       "dimensions: must contain positive integers (got \"x\")"},
      {R"({"dimensions": [8, 8], "vectorization": -2,
           "program": {"b": {"computation": "b = 1.0;"}}})",
       "vectorization: must be a positive integer (got -2)"},
      {R"({"dimensions": [8, 8],
           "inputs": {"a": {"data": {"kind": 1}}},
           "program": {"b": {"computation": "b = a[0,0];"}}})",
       "inputs.a.data: data source requires a string 'kind' "
       "(got {\"kind\":1})"},
      {R"({"dimensions": [8, 8],
           "inputs": {"a": {"data": {"kind": "random", "seed": "x"}}},
           "program": {"b": {"computation": "b = a[0,0];"}}})",
       "inputs.a.data.seed: random data source 'seed' must be a number "
       "(got \"x\")"},
      {R"({"dimensions": [8, 8],
           "inputs": {"a": {"dimensions": ["z"]}},
           "program": {"b": {"computation": "b = a[0,0];"}}})",
       "inputs.a.dimensions: unknown dimension name 'z' "
       "(this program has: j, i)"},
      {R"({"dimensions": [8, 8], "inputs": {"a": {}},
           "program": {"b": {}}})",
       "program.b.computation: stencil requires a 'computation' string "
       "(missing)"},
      {R"({"dimensions": [8, 8], "inputs": {"a": {}},
           "program": {"b": {"computation": "b = a[0,0];",
                             "boundary_conditions": {"a": 3}}}})",
       "program.b.boundary_conditions.a: boundary condition must be an "
       "object (got 3)"},
      {R"({"dimensions": [8, 8], "inputs": {"a": {}}, "outputs": ["b"],
           "program": {"b": {"computation": "b = a[0,0];"}},
           "time_loop": [{"output": "b"}]})",
       "time_loop[0]: 'time_loop' entries require 'output' and 'input' "
       "field names"},
  };
  for (const Case &C : Cases) {
    auto Program = programFromJsonText(C.Json);
    ASSERT_FALSE(Program) << C.Json;
    EXPECT_NE(Program.message().find(C.ExpectedFragment), std::string::npos)
        << "message: " << Program.message()
        << "\nexpected fragment: " << C.ExpectedFragment;
    EXPECT_EQ(Program.code(), ErrorCode::InvalidInput) << C.Json;
  }
}

TEST(LoaderTest, ErrorContextTruncatesLargeValues) {
  // A huge offending value must not turn the diagnostic into a dump.
  std::string Big = R"({"dimensions": [8, 8], "inputs": {"a": {"data": )";
  Big += R"({"kind": ")" + std::string(500, 'x') + R"("}}},)";
  Big += R"("program": {"b": {"computation": "b = a[0,0];"}}})";
  auto Program = programFromJsonText(Big);
  ASSERT_FALSE(Program);
  EXPECT_LT(Program.message().size(), 300u) << Program.message();
  EXPECT_NE(Program.message().find("..."), std::string::npos)
      << Program.message();
}

TEST(LoaderTest, RoundTripThroughJson) {
  auto Program = programFromJsonText(LaplaceJson);
  ASSERT_TRUE(Program);
  json::Value Emitted = programToJson(*Program);
  auto Reloaded = programFromJson(Emitted);
  ASSERT_TRUE(Reloaded) << Reloaded.message();
  EXPECT_EQ(Reloaded->Name, Program->Name);
  EXPECT_EQ(Reloaded->Nodes.size(), Program->Nodes.size());
  EXPECT_EQ(Reloaded->Nodes[0].Code.toString(),
            Program->Nodes[0].Code.toString());
  EXPECT_EQ(Reloaded->Outputs, Program->Outputs);
}

TEST(LoaderTest, RandomProgramsRoundTrip) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    StencilProgram Program = randomProgram(Seed);
    json::Value Emitted = programToJson(Program);
    auto Reloaded = programFromJson(Emitted);
    ASSERT_TRUE(Reloaded) << "seed " << Seed << ": " << Reloaded.message();
    EXPECT_EQ(Reloaded->Nodes.size(), Program.Nodes.size());
    for (size_t I = 0; I != Program.Nodes.size(); ++I)
      EXPECT_EQ(Reloaded->Nodes[I].Accesses.size(),
                Program.Nodes[I].Accesses.size());
  }
}
