//===- tests/sim_test.cpp - Simulator tests ------------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "runtime/InputData.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"
#include "frontend/ProgramLoader.h"
#include "sim/Machine.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::sim;
using namespace stencilflow::testing;

namespace {

/// Builds and runs \p Program on the simulator with unconstrained memory,
/// validating every program output against the reference executor.
SimResult runAndValidate(StencilProgram Program,
                         SimConfig Config = SimConfig{},
                         const Partition *Placement = nullptr) {
  Config.UnconstrainedMemory = true;
  auto Compiled = CompiledProgram::compile(std::move(Program));
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  EXPECT_TRUE(Dataflow) << Dataflow.message();
  auto M = Machine::build(*Compiled, *Dataflow, Placement, Config);
  EXPECT_TRUE(M) << M.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  EXPECT_TRUE(Result) << Result.message();
  auto Reference = runReference(*Compiled, Inputs);
  EXPECT_TRUE(Reference);
  for (const std::string &Output : Compiled->program().Outputs) {
    ValidationReport Report = validateField(
        Output, Result->Outputs.at(Output), Reference->field(Output));
    EXPECT_TRUE(Report.Passed) << Report.Summary;
  }
  return Result.takeValue();
}

} // namespace

//===----------------------------------------------------------------------===//
// Channels
//===----------------------------------------------------------------------===//

TEST(ChannelTest, FifoOrder) {
  Channel C("c", 4, 2);
  double V1[2] = {1.0, 2.0};
  double V2[2] = {3.0, 4.0};
  C.push(V1, 0);
  C.push(V2, 0);
  double Out[2];
  C.pop(Out, 0);
  EXPECT_EQ(Out[0], 1.0);
  EXPECT_EQ(Out[1], 2.0);
  C.pop(Out, 0);
  EXPECT_EQ(Out[0], 3.0);
}

TEST(ChannelTest, FullEmpty) {
  Channel C("c", 2, 1);
  double V = 1.0;
  EXPECT_TRUE(C.empty());
  C.push(&V, 0);
  C.push(&V, 0);
  EXPECT_TRUE(C.full());
  double Out;
  C.pop(&Out, 0);
  EXPECT_FALSE(C.full());
}

TEST(ChannelTest, LatencyDelaysVisibility) {
  Channel C("c", 4, 1, /*ArrivalLatency=*/10);
  double V = 1.0;
  C.push(&V, 5);
  EXPECT_FALSE(C.readable(5));
  EXPECT_FALSE(C.readable(14));
  EXPECT_TRUE(C.readable(15));
  EXPECT_TRUE(C.hasPendingArrival(5));
  EXPECT_FALSE(C.hasPendingArrival(15));
}

//===----------------------------------------------------------------------===//
// Functional correctness vs. the reference executor
//===----------------------------------------------------------------------===//

TEST(SimTest, LaplaceMatchesReference) { runAndValidate(laplace2d(12, 12)); }

TEST(SimTest, DiamondMatchesReference) {
  runAndValidate(diamondProgram(10, 10));
}

TEST(SimTest, JacobiChainMatchesReference) {
  runAndValidate(jacobi3dChain(4, 6, 6, 6));
}

TEST(SimTest, VectorizedMatchesReference) {
  runAndValidate(laplace2d(12, 16, 4));
  runAndValidate(jacobi3dChain(3, 4, 6, 8, 4));
}

TEST(SimTest, CopyBoundary) {
  StencilProgram P;
  P.IterationSpace = Shape({6, 6});
  addInput(P, "a", DataType::Float32, DataSource::random(11));
  addStencil(P, "out",
             "out = a[-1, 0] + a[0, -1] + a[0, 0] + a[0, 1] + a[1, 0];",
             DataType::Float32, {{"a", BoundaryCondition::copy()}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  runAndValidate(std::move(P));
}

TEST(SimTest, ShrinkOutput) {
  StencilProgram P;
  P.IterationSpace = Shape({6, 6});
  addInput(P, "a", DataType::Float32, DataSource::random(12));
  StencilNode Node;
  Node.Name = "out";
  Node.ShrinkOutput = true;
  auto Code =
      parseStencilCode("out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1];");
  ASSERT_TRUE(Code);
  Node.Code = Code.takeValue();
  P.Nodes.push_back(std::move(Node));
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  runAndValidate(std::move(P));
}

TEST(SimTest, LowerRankInputsViaRom) {
  StencilProgram P;
  P.IterationSpace = Shape({4, 6, 8});
  addInput(P, "a", DataType::Float32, DataSource::random(13));
  Field C;
  C.Name = "c";
  C.Type = DataType::Float32;
  C.DimensionMask = {true, false, false};
  C.Source = DataSource::ramp(0.25);
  P.Inputs.push_back(C);
  Field Alpha;
  Alpha.Name = "alpha";
  Alpha.Type = DataType::Float32;
  Alpha.DimensionMask = {false, false, false};
  Alpha.Source = DataSource::constant(1.5);
  P.Inputs.push_back(Alpha);
  addStencil(P, "out",
             "out = a[0,0,0] * c[0] + a[0,0,1] * c[1] + alpha;",
             DataType::Float32,
             {{"a", BoundaryCondition::constant(0.0)},
              {"c", BoundaryCondition::constant(0.0)}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  runAndValidate(std::move(P));
}

TEST(SimTest, MultipleOutputs) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a", DataType::Float32, DataSource::random(14));
  addStencil(P, "x", "x = a[0, 0] * 2.0;");
  addStencil(P, "y", "y = x[0, -1] + x[0, 1];", DataType::Float32,
             {{"x", BoundaryCondition::constant(0.0)}});
  addStencil(P, "z", "z = x[0, 0] - a[0, 0];");
  P.Outputs = {"y", "z"};
  ASSERT_FALSE(analyzeProgram(P));
  runAndValidate(std::move(P));
}

TEST(SimTest, RandomProgramsMatchReference) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    runAndValidate(randomProgram(Seed));
  }
}

TEST(SimTest, RandomVectorizedProgramsMatchReference) {
  RandomProgramOptions Options;
  Options.VectorWidth = 4;
  for (uint64_t Seed = 100; Seed <= 112; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    runAndValidate(randomProgram(Seed, Options));
  }
}

//===----------------------------------------------------------------------===//
// Cycle accuracy: C = L + N (Eq. 1)
//===----------------------------------------------------------------------===//

TEST(SimTest, CyclesMatchModelOnChain) {
  for (int Length : {1, 2, 5}) {
    StencilProgram P = jacobi3dChain(Length, 6, 6, 6);
    auto Compiled = CompiledProgram::compile(std::move(P));
    ASSERT_TRUE(Compiled);
    auto Dataflow = analyzeDataflow(*Compiled);
    SimConfig Config;
    Config.UnconstrainedMemory = true;
    auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
    ASSERT_TRUE(M);
    auto Result = M->run(materializeInputs(Compiled->program()));
    ASSERT_TRUE(Result) << Result.message();
    EXPECT_EQ(Result->Stats.Cycles, M->expectedCycles())
        << "chain length " << Length;
  }
}

TEST(SimTest, CyclesMatchModelOnDiamond) {
  StencilProgram P = diamondProgram(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Stats.Cycles, M->expectedCycles());
}

TEST(SimTest, CyclesMatchModelOnRandomPrograms) {
  for (uint64_t Seed = 30; Seed <= 50; ++Seed) {
    StencilProgram P = randomProgram(Seed);
    auto Compiled = CompiledProgram::compile(std::move(P));
    ASSERT_TRUE(Compiled);
    auto Dataflow = analyzeDataflow(*Compiled);
    SimConfig Config;
    Config.UnconstrainedMemory = true;
    auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
    ASSERT_TRUE(M);
    auto Result = M->run(materializeInputs(Compiled->program()));
    ASSERT_TRUE(Result) << Result.message();
    EXPECT_EQ(Result->Stats.Cycles, M->expectedCycles()) << "seed " << Seed;
  }
}

TEST(SimTest, VectorizationShrinksCycles) {
  StencilProgram Scalar = jacobi3dChain(2, 4, 8, 16, 1);
  StencilProgram Vector = jacobi3dChain(2, 4, 8, 16, 4);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto CompiledScalar = CompiledProgram::compile(std::move(Scalar));
  auto CompiledVector = CompiledProgram::compile(std::move(Vector));
  auto DataflowScalar = analyzeDataflow(*CompiledScalar);
  auto DataflowVector = analyzeDataflow(*CompiledVector);
  auto MScalar =
      Machine::build(*CompiledScalar, *DataflowScalar, nullptr, Config);
  auto MVector =
      Machine::build(*CompiledVector, *DataflowVector, nullptr, Config);
  auto RScalar = MScalar->run(materializeInputs(CompiledScalar->program()));
  auto RVector = MVector->run(materializeInputs(CompiledVector->program()));
  ASSERT_TRUE(RScalar);
  ASSERT_TRUE(RVector);
  EXPECT_LT(RVector->Stats.Cycles, RScalar->Stats.Cycles);
  // Results agree despite different widths.
  ValidationReport Report =
      validateField("a2", RVector->Outputs.at("a2"),
                    RScalar->Outputs.at("a2"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

//===----------------------------------------------------------------------===//
// Deadlock freedom and detection (Fig. 4)
//===----------------------------------------------------------------------===//

TEST(SimTest, UndersizedChannelsDeadlockOnDiamond) {
  // Force a large delay imbalance: B buffers two full rows of A before
  // producing, so the direct A->C edge must buffer ~2 rows. Clamping all
  // channels to the minimum capacity reproduces the Fig. 4 deadlock.
  StencilProgram P = diamondProgram(32, 32);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.ClampChannelsToMinimum = true;
  Config.MinChannelDepth = 4;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.message().find("deadlock"), std::string::npos);
  EXPECT_NE(Result.message().find("[FULL]"), std::string::npos);
}

TEST(SimTest, AnalysisBuffersPreventDeadlock) {
  // Same program, channels sized by the delay-buffer analysis: streams to
  // completion (this is the core deadlock-freedom guarantee of Sec. IV-B).
  runAndValidate(diamondProgram(32, 32));
}

TEST(SimTest, RandomProgramsNeverDeadlock) {
  RandomProgramOptions Options;
  Options.MaxNodes = 10;
  for (uint64_t Seed = 60; Seed <= 80; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    runAndValidate(randomProgram(Seed, Options));
  }
}

//===----------------------------------------------------------------------===//
// Constrained memory
//===----------------------------------------------------------------------===//

TEST(SimTest, ConstrainedMemoryStillCorrect) {
  StencilProgram P = diamondProgram(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = false;
  Config.PeakMemoryBytesPerCycle = 6.0; // Starved: ~0.7 vectors/cycle.
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message();
  // Slower than the unconstrained model...
  EXPECT_GT(Result->Stats.Cycles, M->expectedCycles());
  // ...but still correct.
  auto Reference = runReference(*Compiled, Inputs);
  ValidationReport Report = validateField(
      "C", Result->Outputs.at("C"), Reference->field("C"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

TEST(SimTest, MemoryBandwidthAccounted) {
  StencilProgram P = laplace2d(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result);
  // One input read + one output written, 4 bytes each.
  EXPECT_DOUBLE_EQ(Result->Stats.MemoryBytesMoved[0], 2.0 * 16 * 16 * 4);
}

TEST(SimTest, SharedInputReadOnceFromMemory) {
  // The diamond reads 'in' for both A's stream; memory traffic counts it
  // once (one reader endpoint fans out on chip).
  StencilProgram P = diamondProgram(8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result);
  EXPECT_DOUBLE_EQ(Result->Stats.MemoryBytesMoved[0], 2.0 * 8 * 8 * 4);
}

//===----------------------------------------------------------------------===//
// Multi-device (Sec. III-B / VI-B)
//===----------------------------------------------------------------------===//

namespace {

/// Builds a two-device partition of a Jacobi chain by splitting at
/// \p SplitAt.
Partition makeSplitPartition(const CompiledProgram &Compiled,
                             const DataflowAnalysis &Dataflow, int SplitAt) {
  PartitionOptions Options;
  // Budget exactly SplitAt nodes per device by DSP count (7 per node).
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs =
      7 * Compiled.program().VectorWidth * SplitAt;
  Options.MaxDevices = 64;
  auto Result = partitionProgram(Compiled, Dataflow, Options);
  EXPECT_TRUE(Result) << Result.message();
  return Result.takeValue();
}

} // namespace

TEST(SimTest, TwoDeviceChainMatchesReference) {
  StencilProgram P = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  ASSERT_EQ(Placement.numDevices(), 2u);

  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numDevices(), 2);
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message();
  auto Reference = runReference(*Compiled, Inputs);
  ValidationReport Report = validateField(
      "a6", Result->Outputs.at("a6"), Reference->field("a6"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
  // Network carried the crossing stream.
  EXPECT_GT(Result->Stats.NetworkBytesMoved, 0.0);
  // Latency adds beyond the single-device model, but only by the network
  // latency of the single crossing.
  EXPECT_GE(Result->Stats.Cycles, M->expectedCycles());
  EXPECT_LE(Result->Stats.Cycles,
            M->expectedCycles() + Config.NetworkLatencyCyclesPerHop + 8);
}

TEST(SimTest, FourDeviceChainMatchesReference) {
  StencilProgram P = jacobi3dChain(8, 4, 4, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 2);
  ASSERT_EQ(Placement.numDevices(), 4u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(M);
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message();
  auto Reference = runReference(*Compiled, Inputs);
  ValidationReport Report = validateField(
      "a8", Result->Outputs.at("a8"), Reference->field("a8"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

TEST(SimTest, NetworkBandwidthThrottles) {
  // A starved network link slows the crossing stream but stays correct.
  StencilProgram P = jacobi3dChain(4, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 2);
  ASSERT_EQ(Placement.numDevices(), 2u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.LinkBytesPerCycle = 1.0; // 0.5 elements/cycle across 2 links.
  auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(M);
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  ASSERT_TRUE(Result) << Result.message();
  // The crossing stream drains at ~0.5 vectors/cycle (4 bytes needed, 2
  // bytes/cycle granted), stretching the run by about one extra N
  // (144 vectors) beyond the unthrottled model.
  EXPECT_GT(Result->Stats.Cycles, M->expectedCycles() + 144 - 16);
  auto Reference = runReference(*Compiled, Inputs);
  ValidationReport Report = validateField(
      "a4", Result->Outputs.at("a4"), Reference->field("a4"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

TEST(SimTest, OversubscribedMemoryDegradesGracefully) {
  // Regression test for arbiter starvation: with many more endpoints than
  // the controller can serve per cycle, throughput must settle near the
  // grant-rate bound instead of collapsing to a stall/run oscillation.
  const int Points = 32;
  StencilProgram P;
  P.IterationSpace = Shape({4096});
  std::string Sum;
  for (int Pt = 0; Pt < Points; ++Pt) {
    Field Input;
    Input.Name = formatString("in%d", Pt);
    Input.DimensionMask = {true};
    Input.Source = DataSource::random(static_cast<uint64_t>(Pt) + 1);
    P.Inputs.push_back(std::move(Input));
    if (Pt)
      Sum += " + ";
    Sum += formatString("in%d[0]", Pt);
  }
  addStencil(P, "out", "out = " + Sum + ";");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  sim::SimConfig Config; // Constrained DDR4 model.
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  // Grant bound: ~256 B/cycle over 33 endpoints at 8.4 B/transaction
  // -> ~30 grants/cycle -> rate ~30/33. Demand degradation beyond ~25%
  // of the bound indicates starvation.
  double Rate = static_cast<double>(M->expectedCycles()) /
                static_cast<double>(Result->Stats.Cycles);
  EXPECT_GT(Rate, 0.65);
  // And the result is still correct.
  auto Reference = runReference(*Compiled, materializeInputs(
                                               Compiled->program()));
  ValidationReport Report = validateField(
      "out", Result->Outputs.at("out"), Reference->field("out"));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

//===----------------------------------------------------------------------===//
// SimConfig::Builder
//===----------------------------------------------------------------------===//

TEST(SimConfigBuilderTest, DefaultsBuild) {
  auto Config = SimConfig::Builder().build();
  ASSERT_TRUE(Config) << Config.message();
  EXPECT_EQ(Config->Engine, SimEngine::Serial);
}

TEST(SimConfigBuilderTest, ChainedSettersStick) {
  auto Config = SimConfig::Builder()
                    .unconstrainedMemory(true)
                    .engine(SimEngine::Parallel)
                    .threads(8)
                    .stallTimeoutCycles(4096)
                    .build();
  ASSERT_TRUE(Config) << Config.message();
  EXPECT_TRUE(Config->UnconstrainedMemory);
  EXPECT_EQ(Config->Engine, SimEngine::Parallel);
  EXPECT_EQ(Config->Threads, 8);
  EXPECT_EQ(Config->StallTimeoutCycles, 4096);
}

TEST(SimConfigBuilderTest, RejectsNonPositiveRates) {
  EXPECT_FALSE(SimConfig::Builder().peakMemoryBytesPerCycle(0.0).build());
  EXPECT_FALSE(SimConfig::Builder().linkBytesPerCycle(-1.0).build());
  EXPECT_FALSE(SimConfig::Builder().minChannelDepth(0).build());
  EXPECT_FALSE(SimConfig::Builder().sendWindowVectors(0).build());
  EXPECT_FALSE(SimConfig::Builder().threads(-1).build());
}

TEST(SimConfigBuilderTest, RejectsTraceUnderParallel) {
  Tracer Trace;
  auto Config = SimConfig::Builder()
                    .engine(SimEngine::Parallel)
                    .trace(&Trace)
                    .build();
  ASSERT_FALSE(Config);
  EXPECT_EQ(Config.code(), ErrorCode::InvalidInput);
  EXPECT_NE(Config.message().find("serial engine"), std::string::npos);
}

TEST(SimConfigBuilderTest, RejectsDegenerateParallelLookahead) {
  // Zero hop latency leaves the parallel engine no cross-device
  // lookahead at all.
  EXPECT_FALSE(SimConfig::Builder()
                   .engine(SimEngine::Parallel)
                   .networkLatencyCyclesPerHop(0)
                   .build());
  // Clamped remote channels shallower than the hop latency bound every
  // epoch below one hop.
  EXPECT_FALSE(SimConfig::Builder()
                   .engine(SimEngine::Parallel)
                   .clampChannelsToMinimum(true)
                   .minChannelDepth(4)
                   .networkExtraChannelDepth(0)
                   .networkLatencyCyclesPerHop(32)
                   .build());
  // A send window below the hop latency bounds epochs the same way.
  EXPECT_FALSE(SimConfig::Builder()
                   .engine(SimEngine::Parallel)
                   .sendWindowVectors(8)
                   .networkLatencyCyclesPerHop(32)
                   .build());
  // The serial engine accepts all three.
  EXPECT_TRUE(SimConfig::Builder().networkLatencyCyclesPerHop(0).build());
}

TEST(SimConfigBuilderTest, SeededFromExistingConfig) {
  SimConfig Base;
  Base.UnconstrainedMemory = true;
  Base.MinChannelDepth = 16;
  auto Config =
      SimConfig::Builder(Base).engine(SimEngine::Parallel).build();
  ASSERT_TRUE(Config) << Config.message();
  EXPECT_TRUE(Config->UnconstrainedMemory);
  EXPECT_EQ(Config->MinChannelDepth, 16);
  EXPECT_EQ(Config->Engine, SimEngine::Parallel);
}

TEST(SimConfigBuilderTest, MachineBuildValidatesHandAssembledConfig) {
  StencilProgram P = laplace2d(8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Bad;
  Bad.Engine = SimEngine::Parallel;
  Bad.NetworkLatencyCyclesPerHop = 0;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Bad);
  ASSERT_FALSE(M);
  EXPECT_EQ(M.code(), ErrorCode::InvalidInput);
}

//===----------------------------------------------------------------------===//
// Parallel-engine parity: cycle- and bit-exact against the serial engine
//===----------------------------------------------------------------------===//

namespace {

void expectStallsEqual(const std::map<std::string, StallBreakdown> &S,
                       const std::map<std::string, StallBreakdown> &P,
                       const char *What) {
  ASSERT_EQ(S.size(), P.size()) << What;
  for (const auto &[Name, Serial] : S) {
    auto It = P.find(Name);
    ASSERT_NE(It, P.end()) << What << " " << Name;
    for (int Cause = 0; Cause < NumStallCauses; ++Cause)
      EXPECT_EQ(Serial.Counts[Cause], It->second.Counts[Cause])
          << What << " " << Name << " cause "
          << stallCauseName(static_cast<StallCause>(Cause));
  }
}

/// Asserts that two completed runs agree exactly: cycles, outputs (bit
/// exact), stall attributions, channel occupancies, bandwidth counters,
/// and reliable-link statistics.
void expectResultsEqual(const SimResult &S, const SimResult &P) {
  EXPECT_EQ(S.Stats.Cycles, P.Stats.Cycles);
  EXPECT_EQ(S.Termination, P.Termination);
  EXPECT_EQ(S.Stats.MemoryBytesMoved, P.Stats.MemoryBytesMoved);
  EXPECT_EQ(S.Stats.AchievedMemoryBytesPerCycle,
            P.Stats.AchievedMemoryBytesPerCycle);
  EXPECT_EQ(S.Stats.NetworkBytesMoved, P.Stats.NetworkBytesMoved);
  EXPECT_EQ(S.Stats.UnitStallCycles, P.Stats.UnitStallCycles);
  expectStallsEqual(S.Stats.UnitStalls, P.Stats.UnitStalls, "unit");
  expectStallsEqual(S.Stats.ReaderStalls, P.Stats.ReaderStalls, "reader");
  expectStallsEqual(S.Stats.WriterStalls, P.Stats.WriterStalls, "writer");
  EXPECT_EQ(S.Stats.ChannelHighWater, P.Stats.ChannelHighWater);
  EXPECT_EQ(S.Stats.ChannelPeakOccupancy, P.Stats.ChannelPeakOccupancy);
  EXPECT_EQ(S.Stats.ChannelCapacity, P.Stats.ChannelCapacity);
  ASSERT_EQ(S.Stats.Links.size(), P.Stats.Links.size());
  for (const auto &[Name, Link] : S.Stats.Links) {
    auto It = P.Stats.Links.find(Name);
    ASSERT_NE(It, P.Stats.Links.end()) << Name;
    EXPECT_EQ(Link.Transmissions, It->second.Transmissions) << Name;
    EXPECT_EQ(Link.Retransmissions, It->second.Retransmissions) << Name;
    EXPECT_EQ(Link.CorruptedVectors, It->second.CorruptedVectors) << Name;
    EXPECT_EQ(Link.Nacks, It->second.Nacks) << Name;
    EXPECT_EQ(Link.Delivered, It->second.Delivered) << Name;
  }
  ASSERT_EQ(S.Outputs.size(), P.Outputs.size());
  for (const auto &[Name, Serial] : S.Outputs) {
    auto It = P.Outputs.find(Name);
    ASSERT_NE(It, P.Outputs.end()) << Name;
    // operator== on vector<double> is element-exact: bit-identical
    // results, not merely within tolerance.
    EXPECT_EQ(Serial, It->second) << "output " << Name;
  }
}

/// Runs \p Compiled under the serial engine and under the parallel engine
/// (same config otherwise) and asserts exact agreement. Returns the
/// parallel result for engine-specific assertions.
SimResult expectEngineParity(const CompiledProgram &Compiled,
                             const DataflowAnalysis &Dataflow,
                             const Partition *Placement, SimConfig Config,
                             int Threads = 0) {
  auto Inputs = materializeInputs(Compiled.program());

  Config.Engine = SimEngine::Serial;
  auto Serial = Machine::build(Compiled, Dataflow, Placement, Config);
  EXPECT_TRUE(Serial) << Serial.message();
  auto SerialResult = Serial->run(Inputs);
  EXPECT_TRUE(SerialResult) << SerialResult.message();

  Config.Engine = SimEngine::Parallel;
  Config.Threads = Threads;
  auto Parallel = Machine::build(Compiled, Dataflow, Placement, Config);
  EXPECT_TRUE(Parallel) << Parallel.message();
  auto ParallelResult = Parallel->run(Inputs);
  EXPECT_TRUE(ParallelResult) << ParallelResult.message();

  expectResultsEqual(*SerialResult, *ParallelResult);
  EXPECT_EQ(SerialResult->Stats.Engine, "serial");
  return ParallelResult.takeValue();
}

} // namespace

TEST(ParallelParityTest, SingleDevicePrograms) {
  for (auto MakeProgram :
       {+[] { return laplace2d(12, 12); },
        +[] { return diamondProgram(16, 16); },
        +[] { return jacobi3dChain(4, 6, 6, 6); }}) {
    auto Compiled = CompiledProgram::compile(MakeProgram());
    ASSERT_TRUE(Compiled);
    auto Dataflow = analyzeDataflow(*Compiled);
    SimConfig Config;
    Config.UnconstrainedMemory = true;
    SimResult P = expectEngineParity(*Compiled, *Dataflow, nullptr, Config);
    EXPECT_EQ(P.Stats.Engine, "parallel");
  }
}

TEST(ParallelParityTest, TwoDeviceChain) {
  StencilProgram Program = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  ASSERT_EQ(Placement.numDevices(), 2u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  SimResult P =
      expectEngineParity(*Compiled, *Dataflow, &Placement, Config);
  EXPECT_EQ(P.Stats.Engine, "parallel");
  EXPECT_GT(P.Stats.ParallelEpochs, 0);
}

TEST(ParallelParityTest, FourDeviceChain) {
  StencilProgram Program = jacobi3dChain(8, 4, 4, 8);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 2);
  ASSERT_EQ(Placement.numDevices(), 4u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  expectEngineParity(*Compiled, *Dataflow, &Placement, Config);
}

TEST(ParallelParityTest, ThrottledNetwork) {
  // Congested remote streams exercise the channel-slack epoch bound and
  // the hop-budget accounting in the bulk fast-forward.
  StencilProgram Program = jacobi3dChain(4, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 2);
  ASSERT_EQ(Placement.numDevices(), 2u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.LinkBytesPerCycle = 1.0;
  expectEngineParity(*Compiled, *Dataflow, &Placement, Config);
}

TEST(ParallelParityTest, ConstrainedMemory) {
  StencilProgram Program = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  ASSERT_EQ(Placement.numDevices(), 2u);
  SimConfig Config;
  Config.UnconstrainedMemory = false;
  Config.PeakMemoryBytesPerCycle = 6.0;
  expectEngineParity(*Compiled, *Dataflow, &Placement, Config);
}

TEST(ParallelParityTest, WatchdogEnabled) {
  // The watchdog forces epoch boundaries onto every 256-cycle mark; a
  // healthy run must still complete identically with it armed.
  StencilProgram Program = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.StallTimeoutCycles = 512;
  expectEngineParity(*Compiled, *Dataflow, &Placement, Config);
}

TEST(ParallelParityTest, DeadlockReportsMatch) {
  // Both engines must classify the Fig. 4 deadlock identically — same
  // error code, same rendered failure report (same cycle, same culprit
  // components and channels) — which exercises the parallel engine's
  // mid-epoch abort rollback.
  StencilProgram Program = diamondProgram(32, 32);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.ClampChannelsToMinimum = true;
  Config.MinChannelDepth = 4;
  auto Inputs = materializeInputs(Compiled->program());

  auto Serial = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(Serial);
  auto SerialResult = Serial->run(Inputs);
  ASSERT_FALSE(SerialResult);

  Config.Engine = SimEngine::Parallel;
  auto Parallel = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(Parallel);
  auto ParallelResult = Parallel->run(Inputs);
  ASSERT_FALSE(ParallelResult);

  EXPECT_EQ(SerialResult.code(), ParallelResult.code());
  SimFailure SerialFail = SerialResult.takeError();
  SimFailure ParallelFail = ParallelResult.takeError();
  EXPECT_EQ(SerialFail.report().render(), ParallelFail.report().render());
}

TEST(ParallelParityTest, RepeatableAcrossThreadCounts) {
  // The epoch protocol makes the result independent of the worker count:
  // shards touch disjoint state between barriers and merge in a fixed
  // order on the main thread.
  StencilProgram Program = jacobi3dChain(8, 4, 4, 8);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 2);
  ASSERT_EQ(Placement.numDevices(), 4u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Engine = SimEngine::Parallel;
  auto Inputs = materializeInputs(Compiled->program());

  SimResult Baseline;
  for (int Threads : {1, 2, 4}) {
    SCOPED_TRACE(::testing::Message() << "threads " << Threads);
    Config.Threads = Threads;
    auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
    ASSERT_TRUE(M);
    auto Result = M->run(Inputs);
    ASSERT_TRUE(Result) << Result.message();
    if (Threads == 1)
      Baseline = Result.takeValue();
    else
      expectResultsEqual(Baseline, *Result);
  }
}

TEST(ParallelParityTest, QuiescenceFastForwardEngages) {
  // An unconstrained multi-device chain has long stretches where the
  // downstream device only waits on in-flight network vectors; the
  // quiescence skip must fast-forward through them, not step them.
  StencilProgram Program = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Engine = SimEngine::Parallel;
  auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_GT(Result->Stats.SkippedCycles, 0);
  EXPECT_EQ(Result->Stats.SerialFallbackCycles, 0);
}

TEST(ParallelParityTest, SerialTraceDoesNotPerturbResults) {
  // Tracing is serial-only; a traced serial run must agree exactly with
  // an untraced parallel run, proving the tracer is purely observational.
  StencilProgram Program = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  auto Inputs = materializeInputs(Compiled->program());

  Tracer Trace(4);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Trace = &Trace;
  auto Serial = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(Serial);
  auto SerialResult = Serial->run(Inputs);
  ASSERT_TRUE(SerialResult) << SerialResult.message();

  Config.Trace = nullptr;
  Config.Engine = SimEngine::Parallel;
  auto Parallel = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(Parallel);
  auto ParallelResult = Parallel->run(Inputs);
  ASSERT_TRUE(ParallelResult) << ParallelResult.message();

  expectResultsEqual(*SerialResult, *ParallelResult);
}

TEST(ParallelParityTest, RandomProgramsMatchSerial) {
  for (uint64_t Seed = 200; Seed <= 212; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    auto Compiled = CompiledProgram::compile(randomProgram(Seed));
    ASSERT_TRUE(Compiled);
    auto Dataflow = analyzeDataflow(*Compiled);
    SimConfig Config;
    Config.UnconstrainedMemory = true;
    expectEngineParity(*Compiled, *Dataflow, nullptr, Config);
  }
}

TEST(SimTest, HdiffJsonRoundTripRunsIdentically) {
  // The full case-study program survives serialization to the JSON
  // description format and back, producing bit-identical results.
  StencilProgram Original = workloads::horizontalDiffusion(4, 12, 12);
  json::Value Description = programToJson(Original);
  auto Reloaded = programFromJson(Description);
  ASSERT_TRUE(Reloaded) << Reloaded.message();
  auto CompiledA = CompiledProgram::compile(std::move(Original));
  auto CompiledB = CompiledProgram::compile(Reloaded.takeValue());
  ASSERT_TRUE(CompiledA);
  ASSERT_TRUE(CompiledB);
  auto Inputs = materializeInputs(CompiledA->program());
  auto A = runReference(*CompiledA, Inputs);
  auto B = runReference(*CompiledB, Inputs);
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  for (const std::string &Output : CompiledA->program().Outputs) {
    ValidationReport Report =
        validateField(Output, B->field(Output), A->field(Output));
    EXPECT_TRUE(Report.Passed) << Report.Summary;
  }
}
