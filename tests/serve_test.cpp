//===- tests/serve_test.cpp - Serving subsystem tests --------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the serving daemon's core (serve/Server.h): plan-cache key
// correctness (repeat traffic hits, any plan-affecting knob change
// misses), single-flight compilation under concurrent identical misses,
// bounded-queue admission and typed shedding, device-pool rejection,
// graceful stop, parity of daemon results against a direct Session run,
// and the wire protocol round trip (serve/Protocol.h).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "common/TestPrograms.h"
#include "frontend/ProgramLoader.h"
#include "runtime/Session.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::serve;
using namespace stencilflow::testing;

namespace {

/// A run request for the shared Laplace test program.
Request laplaceRequest(std::string Id) {
  Request R;
  R.Id = std::move(Id);
  R.Op = RequestOp::Run;
  R.Program = programToJson(laplace2d());
  return R;
}

/// An in-process server with test-friendly defaults.
ServerOptions testOptions() {
  ServerOptions O;
  O.Workers = 2;
  O.QueueDepth = 16;
  return O;
}

//===----------------------------------------------------------------------===//
// Plan fingerprint and cache key
//===----------------------------------------------------------------------===//

TEST(PlanFingerprint, DeterministicAcrossEncodings) {
  StencilProgram Program = laplace2d();
  uint64_t A = fingerprintProgram(Program);
  uint64_t B = fingerprintProgram(Program);
  EXPECT_EQ(A, B);
  // The JSON round trip preserves the fingerprint: a program loaded from
  // a file and the same program sent inline share cache entries.
  EXPECT_EQ(A, fingerprintProgramJson(programToJson(Program)));
}

TEST(PlanFingerprint, DistinguishesPrograms) {
  EXPECT_NE(fingerprintProgram(laplace2d()),
            fingerprintProgram(diamondProgram()));
  EXPECT_NE(fingerprintProgram(laplace2d(32, 32)),
            fingerprintProgram(laplace2d(32, 64)));
}

TEST(PlanKey, EveryKnobChangesTheKey) {
  PlanKey Base;
  Base.ProgramHash = 0x1234;
  std::set<std::string> Ids;
  Ids.insert(Base.id());

  PlanKey K = Base;
  K.ProgramHash = 0x1235;
  Ids.insert(K.id());
  K = Base;
  K.Fuse = true;
  Ids.insert(K.id());
  K = Base;
  K.Simplify = true;
  Ids.insert(K.id());
  K = Base;
  K.VectorWidth = 4;
  Ids.insert(K.id());
  K = Base;
  K.MaxDevices = 2;
  Ids.insert(K.id());
  K = Base;
  K.TargetUtilization = 0.5;
  Ids.insert(K.id());
  K = Base;
  K.KernelExec = compute::KernelEngine::Jit;
  Ids.insert(K.id());
  K = Base;
  K.Tuned = true;
  Ids.insert(K.id());
  K = Base;
  K.Tuned = true;
  K.TuneBudget = 64;
  Ids.insert(K.id());
  K = Base;
  K.TemporalDegree = 4;
  Ids.insert(K.id());

  // Eleven distinct configurations, eleven distinct keys.
  EXPECT_EQ(Ids.size(), 11u);
  // And the encoding is stable: rebuilding the base key reproduces it.
  EXPECT_EQ(PlanKey{Base}.id(), Base.id());
  // Degree 1 leaves the id untouched, so keys of temporally-unblocked
  // plans are unchanged across the introduction of the knob.
  EXPECT_EQ(Base.id().find("-T"), std::string::npos);
}

TEST(PlanCacheLru, EvictsLeastRecentlyUsed) {
  PlanCache Cache(2);
  auto P = std::make_shared<const CompiledPlan>();
  Cache.insert("a", P);
  Cache.insert("b", P);
  EXPECT_TRUE(Cache.find("a")); // refreshes "a"; "b" is now LRU
  Cache.insert("c", P);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1);
  EXPECT_TRUE(Cache.find("a"));
  EXPECT_FALSE(Cache.find("b"));
  EXPECT_TRUE(Cache.find("c"));
}

//===----------------------------------------------------------------------===//
// Cache behavior through the server
//===----------------------------------------------------------------------===//

TEST(ServeCache, RepeatRequestHitsAnyKnobChangeMisses) {
  Server S(testOptions());
  S.start();

  Response First = S.handle(laplaceRequest("r1"));
  ASSERT_TRUE(First.Ok) << First.ErrorMessage;
  ASSERT_TRUE(First.CacheHit.has_value());
  EXPECT_FALSE(*First.CacheHit);
  EXPECT_GT(First.CompileMicros, 0);

  Response Second = S.handle(laplaceRequest("r2"));
  ASSERT_TRUE(Second.Ok) << Second.ErrorMessage;
  EXPECT_TRUE(*Second.CacheHit);
  // The hit path never compiles.
  EXPECT_EQ(Second.CompileMicros, 0);
  // Identical plan, identical results.
  EXPECT_EQ(First.Cycles, Second.Cycles);
  EXPECT_EQ(First.OutputsCrc, Second.OutputsCrc);

  // Each plan-affecting knob forces a fresh compilation...
  Request Fused = laplaceRequest("r3");
  Fused.Options.Fuse = true;
  Request Simplified = laplaceRequest("r4");
  Simplified.Options.Simplify = true;
  Request Vectorized = laplaceRequest("r5");
  Vectorized.Options.Vectorize = 4;
  Request FewerDevices = laplaceRequest("r6");
  FewerDevices.Options.MaxDevices = 2;
  Request Hotter = laplaceRequest("r7");
  Hotter.Options.TargetUtilization = 0.95;
  Request Scalar = laplaceRequest("r8");
  Scalar.Options.KernelExec = compute::KernelEngine::Scalar;
  Request Tuned = laplaceRequest("r9");
  Tuned.Options.Tune = true;
  Tuned.Options.TuneBudget = 4;
  for (Request *R :
       {&Fused, &Simplified, &Vectorized, &FewerDevices, &Hotter, &Scalar,
        &Tuned}) {
    Response Out = S.handle(std::move(*R));
    ASSERT_TRUE(Out.Ok) << Out.Id << ": " << Out.ErrorMessage;
    EXPECT_FALSE(*Out.CacheHit) << Out.Id;
  }

  // ...while execution-only knobs reuse the cached plan.
  Request Parallel = laplaceRequest("r10");
  Parallel.Options.Engine = "parallel";
  Parallel.Options.Threads = 2;
  Request Unvalidated = laplaceRequest("r11");
  Unvalidated.Options.Validate = false;
  for (Request *R : {&Parallel, &Unvalidated}) {
    Response Out = S.handle(std::move(*R));
    ASSERT_TRUE(Out.Ok) << Out.Id << ": " << Out.ErrorMessage;
    EXPECT_TRUE(*Out.CacheHit) << Out.Id;
  }

  ServeStats Stats = S.stats();
  EXPECT_EQ(Stats.Received, 11);
  EXPECT_EQ(Stats.Completed, 11);
  EXPECT_EQ(Stats.CacheHits, 3);
  EXPECT_EQ(Stats.CacheMisses, 8);
  S.stop();
}

TEST(ServeCache, EvictionForcesRecompilation) {
  ServerOptions O = testOptions();
  O.CacheCapacity = 1;
  Server S(O);
  S.start();

  ASSERT_FALSE(*S.handle(laplaceRequest("a1")).CacheHit);

  Request Diamond;
  Diamond.Id = "b1";
  Diamond.Program = programToJson(diamondProgram());
  ASSERT_FALSE(*S.handle(std::move(Diamond)).CacheHit);

  // The diamond evicted the Laplace plan from the single-entry cache.
  Response Again = S.handle(laplaceRequest("a2"));
  ASSERT_TRUE(Again.Ok) << Again.ErrorMessage;
  EXPECT_FALSE(*Again.CacheHit);

  ServeStats Stats = S.stats();
  EXPECT_EQ(Stats.CacheSize, 1);
  EXPECT_GE(Stats.CacheEvictions, 2);
  S.stop();
}

TEST(ServeCache, SingleFlightCompilesOnceUnderConcurrentMisses) {
  constexpr int Clients = 8;
  Server S(testOptions());
  S.start();

  std::vector<Response> Out(Clients);
  std::vector<std::thread> Threads;
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&S, &Out, I] {
      Out[I] = S.handle(laplaceRequest("c" + std::to_string(I)));
    });
  for (std::thread &T : Threads)
    T.join();

  for (const Response &R : Out) {
    ASSERT_TRUE(R.Ok) << R.Id << ": " << R.ErrorMessage;
    EXPECT_EQ(R.Cycles, Out[0].Cycles);
    EXPECT_EQ(R.OutputsCrc, Out[0].OutputsCrc);
  }
  ServeStats Stats = S.stats();
  // Exactly one request compiled; everyone else hit the cache or joined
  // the in-flight compilation.
  EXPECT_EQ(Stats.CacheMisses, 1);
  EXPECT_EQ(Stats.CacheHits, Clients - 1);
  EXPECT_EQ(Stats.Completed, Clients);
  S.stop();
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(ServeAdmission, FullQueueShedsWithTypedError) {
  ServerOptions O = testOptions();
  O.QueueDepth = 0; // every run request finds the queue "full"
  Server S(O);
  S.start();

  Response Out = S.handle(laplaceRequest("shed"));
  EXPECT_FALSE(Out.Ok);
  EXPECT_EQ(Out.Code, ErrorCode::Overloaded);
  EXPECT_EQ(exitCodeFor(Out.Code), 11);
  EXPECT_NE(Out.ErrorMessage.find("queue"), std::string::npos);

  ServeStats Stats = S.stats();
  EXPECT_EQ(Stats.Shed, 1);
  EXPECT_EQ(Stats.Completed, 0);
  S.stop();
}

TEST(ServeAdmission, OversubscribingPlanIsRejected) {
  ServerOptions O = testOptions();
  O.DevicePool = 0; // any plan (>= 1 device) oversubscribes
  Server S(O);
  S.start();

  Response Out = S.handle(laplaceRequest("reject"));
  EXPECT_FALSE(Out.Ok);
  EXPECT_EQ(Out.Code, ErrorCode::Overloaded);
  EXPECT_NE(Out.ErrorMessage.find("device"), std::string::npos);

  ServeStats Stats = S.stats();
  EXPECT_EQ(Stats.Rejected, 1);
  EXPECT_EQ(Stats.Completed, 0);
  // The plan still compiled and is cached: a later request on a larger
  // pool would hit.
  EXPECT_EQ(Stats.CacheMisses, 1);
  S.stop();
}

TEST(ServeAdmission, StoppedServerShedsNewWork) {
  Server S(testOptions());
  S.start();
  ASSERT_TRUE(S.handle(laplaceRequest("before")).Ok);
  S.stop();

  Response Out = S.handle(laplaceRequest("after"));
  EXPECT_FALSE(Out.Ok);
  EXPECT_EQ(Out.Code, ErrorCode::Overloaded);
  // stop() is idempotent.
  S.stop();
}

TEST(ServeAdmission, InvalidProgramFailsGracefully) {
  Server S(testOptions());
  S.start();

  Request Bad;
  Bad.Id = "bad";
  json::Object O;
  O.set("name", json::Value("nonsense"));
  Bad.Program = json::Value(std::move(O));
  Response Out = S.handle(std::move(Bad));
  EXPECT_FALSE(Out.Ok);
  EXPECT_FALSE(Out.ErrorMessage.empty());

  // The server keeps serving after a failed request.
  EXPECT_TRUE(S.handle(laplaceRequest("good")).Ok);
  ServeStats Stats = S.stats();
  EXPECT_EQ(Stats.Failed, 1);
  EXPECT_EQ(Stats.Completed, 1);
  S.stop();
}

//===----------------------------------------------------------------------===//
// Parity with direct Session runs
//===----------------------------------------------------------------------===//

TEST(ServeParity, MatchesDirectSessionRun) {
  // N concurrent daemon clients and a direct Session::run must agree on
  // cycles, validation, and placement for the same program and options.
  Session Direct = Session::fromProgram(laplace2d());
  Expected<PipelineResult> Reference = Direct.run();
  ASSERT_TRUE(Reference) << Reference.message();

  constexpr int Clients = 4;
  Server S(testOptions());
  S.start();
  std::vector<Response> Out(Clients);
  std::vector<std::thread> Threads;
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&S, &Out, I] {
      Out[I] = S.handle(laplaceRequest("p" + std::to_string(I)));
    });
  for (std::thread &T : Threads)
    T.join();
  S.stop();

  for (const Response &R : Out) {
    ASSERT_TRUE(R.Ok) << R.Id << ": " << R.ErrorMessage;
    EXPECT_EQ(R.Cycles,
              static_cast<int64_t>(Reference->Simulation.Stats.Cycles));
    EXPECT_EQ(R.Devices, static_cast<int>(Reference->Placement.numDevices()));
    EXPECT_TRUE(R.ValidationPassed);
  }
}

TEST(ServeParity, TemporalDegreeMatchesDirectSessionRun) {
  // A temporally-unrolled daemon run must be bit-identical (same output
  // CRC) to a direct Session run at the same degree, and the knob must be
  // a distinct plan-cache key from the degree-1 plan.
  StencilProgram Program = workloads::diffusion2dChain(1, 12, 16);
  Session Direct = Session::fromProgram(Program.clone());
  Expected<PipelineResult> Reference = Direct.temporalDegree(2).run();
  ASSERT_TRUE(Reference) << Reference.message();

  Server S(testOptions());
  S.start();
  auto MakeRequest = [&](std::string Id, int Degree) {
    Request R;
    R.Id = std::move(Id);
    R.Op = RequestOp::Run;
    R.Program = programToJson(Program);
    R.Options.TemporalDegree = Degree;
    return R;
  };
  Response Plain = S.handle(MakeRequest("t1", 1));
  ASSERT_TRUE(Plain.Ok) << Plain.ErrorMessage;
  EXPECT_FALSE(*Plain.CacheHit);
  Response Unrolled = S.handle(MakeRequest("t2", 2));
  ASSERT_TRUE(Unrolled.Ok) << Unrolled.ErrorMessage;
  EXPECT_FALSE(*Unrolled.CacheHit); // Different degree, different plan.
  Response Again = S.handle(MakeRequest("t3", 2));
  ASSERT_TRUE(Again.Ok) << Again.ErrorMessage;
  EXPECT_TRUE(*Again.CacheHit);
  S.stop();

  EXPECT_EQ(Unrolled.Cycles,
            static_cast<int64_t>(Reference->Simulation.Stats.Cycles));
  EXPECT_TRUE(Unrolled.ValidationPassed);
  EXPECT_EQ(Unrolled.OutputsCrc, Again.OutputsCrc);
  EXPECT_NE(Unrolled.OutputsCrc, Plain.OutputsCrc);
  EXPECT_GT(Plain.Cycles, Unrolled.Cycles / 2); // Sanity, not a perf gate.
}

//===----------------------------------------------------------------------===//
// Wire protocol
//===----------------------------------------------------------------------===//

TEST(ServeProtocol, RequestRoundTrip) {
  Request R = laplaceRequest("round");
  R.Options.Fuse = true;
  R.Options.Vectorize = 4;
  R.Options.TemporalDegree = 4;
  R.Options.KernelExec = compute::KernelEngine::Jit;
  R.Options.Engine = "parallel";
  R.Options.Threads = 3;
  R.Options.Validate = false;
  R.Options.Tune = true;
  R.Options.TuneBudget = 7;

  Expected<Request> Back = Request::fromJsonText(R.toJsonText());
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->Id, "round");
  EXPECT_EQ(Back->Op, RequestOp::Run);
  EXPECT_TRUE(Back->Options.Fuse);
  EXPECT_EQ(Back->Options.Vectorize, 4);
  EXPECT_EQ(Back->Options.TemporalDegree, 4);
  EXPECT_EQ(Back->Options.KernelExec, compute::KernelEngine::Jit);
  EXPECT_EQ(Back->Options.Engine, "parallel");
  EXPECT_EQ(Back->Options.Threads, 3);
  EXPECT_FALSE(Back->Options.Validate);
  EXPECT_TRUE(Back->Options.Tune);
  EXPECT_EQ(Back->Options.TuneBudget, 7);
  EXPECT_EQ(fingerprintProgramJson(Back->Program),
            fingerprintProgramJson(R.Program));
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  // Not JSON at all.
  EXPECT_FALSE(Request::fromJsonText("not json"));
  // "run" with neither program nor program_path.
  EXPECT_FALSE(Request::fromJsonText("{\"op\":\"run\"}"));
  // ...and with both.
  EXPECT_FALSE(Request::fromJsonText(
      "{\"op\":\"run\",\"program\":{},\"program_path\":\"x.json\"}"));
  // Unknown op.
  EXPECT_FALSE(Request::fromJsonText("{\"op\":\"dance\"}"));
  // Unknown simulation engine.
  Expected<Request> Bad = Request::fromJsonText(
      "{\"op\":\"run\",\"program\":{},\"options\":{\"engine\":\"warp\"}}");
  EXPECT_FALSE(Bad);
  // Mistyped option value.
  EXPECT_FALSE(Request::fromJsonText(
      "{\"op\":\"run\",\"program\":{},\"options\":{\"fuse\":\"yes\"}}"));
  // Non-run ops need no program.
  EXPECT_TRUE(Request::fromJsonText("{\"op\":\"stats\"}"));
  EXPECT_TRUE(Request::fromJsonText("{\"op\":\"ping\"}"));
}

TEST(ServeProtocol, ResponseRoundTripPreservesCrcAndErrors) {
  Response R;
  R.Id = "ok1";
  R.Ok = true;
  R.CacheHit = true;
  R.Cycles = 4240;
  R.Devices = 2;
  R.FrequencyMHz = 316.5;
  R.ValidationPassed = true;
  R.OutputsCrc = 0xeaceeb4720cb410aull; // does not fit a double exactly
  R.KernelTiers = "specialized x1";
  R.CompileMicros = 55;

  Expected<Response> Back = Response::fromJsonText(R.toJsonText());
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_TRUE(Back->Ok);
  ASSERT_TRUE(Back->CacheHit.has_value());
  EXPECT_TRUE(*Back->CacheHit);
  EXPECT_EQ(Back->Cycles, 4240);
  EXPECT_EQ(Back->OutputsCrc, 0xeaceeb4720cb410aull);
  EXPECT_EQ(Back->KernelTiers, "specialized x1");

  Response E = Response::failure(
      "err1", makeError(ErrorCode::Overloaded, "admission queue is full"));
  Expected<Response> EBack = Response::fromJsonText(E.toJsonText());
  ASSERT_TRUE(EBack) << EBack.message();
  EXPECT_FALSE(EBack->Ok);
  EXPECT_EQ(EBack->Code, ErrorCode::Overloaded);
  EXPECT_NE(EBack->ErrorMessage.find("queue is full"), std::string::npos);
}

TEST(ServeProtocol, FailureResponsesCarryTheSimulatorReport) {
  // The Fig. 4 regression through the serving layer: undersized channels
  // deadlock the diamond, and the simulator's structured FailureReport
  // must survive the trip into (and through) the wire response.
  ServerOptions O = testOptions();
  O.Base.Simulator.ClampChannelsToMinimum = true;
  O.Base.Simulator.MinChannelDepth = 4;
  Server S(O);
  S.start();
  Request R;
  R.Id = "dead";
  R.Program = programToJson(diamondProgram(32, 32));
  Response Out = S.handle(std::move(R));
  S.stop();

  EXPECT_FALSE(Out.Ok);
  EXPECT_EQ(Out.Code, ErrorCode::Deadlock);
  EXPECT_EQ(exitCodeFor(Out.Code), 3);
  ASSERT_TRUE(Out.Failure.has_value());
  EXPECT_EQ(Out.Failure->Code, ErrorCode::Deadlock);
  EXPECT_FALSE(Out.Failure->Channels.empty());

  // And the report is still attached after an encode/decode round trip.
  Expected<Response> Back = Response::fromJsonText(Out.toJsonText());
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->Code, ErrorCode::Deadlock);
  ASSERT_TRUE(Back->Failure.has_value());
  EXPECT_EQ(Back->Failure->Code, ErrorCode::Deadlock);
}

} // namespace
