//===- tests/trace_test.cpp - Observability layer tests ------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests of the simulator observability layer (sim/Trace.h): stall-cause
// attribution invariants, channel high-water semantics, and the Chrome
// trace / metrics CSV exports.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "core/Partitioner.h"
#include "runtime/InputData.h"
#include "sim/Machine.h"
#include "sim/Trace.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <unistd.h>

using namespace stencilflow;
using namespace stencilflow::sim;
using namespace stencilflow::testing;

namespace {

struct BuiltSim {
  Expected<CompiledProgram> Compiled = makeError("unbuilt");
  Expected<DataflowAnalysis> Dataflow = makeError("unbuilt");
  Expected<Machine> M = makeError("unbuilt");
};

BuiltSim buildSim(StencilProgram Program, const SimConfig &Config,
                  const Partition *Placement = nullptr) {
  BuiltSim Sim;
  Sim.Compiled = CompiledProgram::compile(std::move(Program));
  EXPECT_TRUE(Sim.Compiled) << Sim.Compiled.message();
  Sim.Dataflow = analyzeDataflow(*Sim.Compiled);
  EXPECT_TRUE(Sim.Dataflow) << Sim.Dataflow.message();
  Sim.M = Machine::build(*Sim.Compiled, *Sim.Dataflow, Placement, Config);
  EXPECT_TRUE(Sim.M) << Sim.M.message();
  return Sim;
}

/// The core attribution invariant: for every unit, the per-cause counters
/// sum exactly to the aggregate stall-cycle total.
void expectCausesSumToTotals(const SimStats &Stats) {
  ASSERT_EQ(Stats.UnitStalls.size(), Stats.UnitStallCycles.size());
  for (const auto &[Name, Total] : Stats.UnitStallCycles) {
    auto It = Stats.UnitStalls.find(Name);
    ASSERT_NE(It, Stats.UnitStalls.end()) << Name;
    EXPECT_EQ(It->second.total(), Total) << "unit " << Name;
  }
}

/// Two-device split of a chain (mirrors sim_test's helper).
Partition splitPartition(const CompiledProgram &Compiled,
                         const DataflowAnalysis &Dataflow, int PerDevice) {
  PartitionOptions Options;
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs =
      7 * Compiled.program().VectorWidth * PerDevice;
  Options.MaxDevices = 64;
  auto Result = partitionProgram(Compiled, Dataflow, Options);
  EXPECT_TRUE(Result) << Result.message();
  return Result.takeValue();
}

} // namespace

//===----------------------------------------------------------------------===//
// Stall attribution
//===----------------------------------------------------------------------===//

TEST(StallAttributionTest, CausesSumOnDiamondUnconstrained) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  BuiltSim Sim = buildSim(diamondProgram(16, 16), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  expectCausesSumToTotals(Result->Stats);
}

TEST(StallAttributionTest, CausesSumOnDiamondConstrained) {
  SimConfig Config;
  Config.UnconstrainedMemory = false;
  Config.PeakMemoryBytesPerCycle = 6.0; // Heavily starved.
  BuiltSim Sim = buildSim(diamondProgram(16, 16), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  expectCausesSumToTotals(Result->Stats);

  // Starved readers stall on memory; the units downstream starve on
  // inputs. Both must show up in the attribution.
  StallBreakdown Readers;
  for (const auto &[Name, Stalls] : Result->Stats.ReaderStalls)
    Readers += Stalls;
  EXPECT_GT(Readers[StallCause::MemoryDenied], 0);
  StallBreakdown Units;
  for (const auto &[Name, Stalls] : Result->Stats.UnitStalls)
    Units += Stalls;
  EXPECT_GT(Units[StallCause::InputStarved], 0);
}

TEST(StallAttributionTest, CausesSumOnRandomPrograms) {
  for (uint64_t Seed = 200; Seed <= 220; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    SimConfig Config; // Constrained DDR4 model.
    BuiltSim Sim = buildSim(randomProgram(Seed), Config);
    auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
    ASSERT_TRUE(Result) << Result.message();
    expectCausesSumToTotals(Result->Stats);
  }
}

TEST(StallAttributionTest, WriterInitAttributedAsInputStarved) {
  // With unconstrained memory the only reason the writer waits is that
  // the pipeline has not produced data yet (initialization latency).
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  BuiltSim Sim = buildSim(laplace2d(16, 16), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  ASSERT_EQ(Result->Stats.WriterStalls.size(), 1u);
  const StallBreakdown &W = Result->Stats.WriterStalls.begin()->second;
  EXPECT_GT(W[StallCause::InputStarved], 0);
  EXPECT_EQ(W[StallCause::InputStarved], W.total());
}

TEST(StallAttributionTest, ThrottledNetworkShowsNetworkStalls) {
  StencilProgram P = jacobi3dChain(4, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = splitPartition(*Compiled, *Dataflow, 2);
  ASSERT_EQ(Placement.numDevices(), 2u);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.LinkBytesPerCycle = 1.0; // ~0.5 vectors/cycle across the hop.
  auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  expectCausesSumToTotals(Result->Stats);
  // The unit feeding the crossing stream is throttled by the link.
  StallBreakdown Units;
  for (const auto &[Name, Stalls] : Result->Stats.UnitStalls)
    Units += Stalls;
  EXPECT_GT(Units[StallCause::NetworkDenied], 0);
}

//===----------------------------------------------------------------------===//
// Channel high-water semantics
//===----------------------------------------------------------------------===//

TEST(ChannelHighWaterTest, FullAtFirstBurstIsCounted) {
  Channel C("c", 2, 1);
  double V = 1.0;
  C.push(&V, 0);
  C.push(&V, 0);
  EXPECT_TRUE(C.full());
  EXPECT_EQ(C.highWaterMark(), 2);
  EXPECT_EQ(C.peakOccupancy(), 2);
}

TEST(ChannelHighWaterTest, VisibleHighWaterExcludesInFlight) {
  Channel C("c", 8, 1, /*ArrivalLatency=*/10);
  double V = 1.0;
  C.push(&V, 0);
  C.push(&V, 1);
  C.push(&V, 2);
  // All three vectors are still on the wire: physically enqueued, but
  // invisible to the consumer.
  EXPECT_EQ(C.peakOccupancy(), 3);
  EXPECT_EQ(C.highWaterMark(), 0);
  // After maturation the consumer drains them; the visible high-water
  // mark is folded in at pop time.
  ASSERT_TRUE(C.readable(12));
  double Out;
  C.pop(&Out, 12);
  EXPECT_EQ(C.highWaterMark(), 3);
  EXPECT_EQ(C.peakOccupancy(), 3);
}

TEST(ChannelHighWaterTest, MixedMaturityCountsOnlyMatured) {
  Channel C("c", 8, 1, /*ArrivalLatency=*/4);
  double V = 1.0;
  C.push(&V, 0); // Ready at 4.
  C.push(&V, 1); // Ready at 5.
  C.push(&V, 6); // Ready at 10: first two matured, this one in flight.
  EXPECT_EQ(C.highWaterMark(), 2);
  EXPECT_EQ(C.peakOccupancy(), 3);
}

TEST(ChannelHighWaterTest, DiamondHighWaterWithinAnalysisDepth) {
  // Per the buffer-sizing guarantee (Sec. IV-B): no streamed edge ever
  // needs more than its computed delay-buffer depth plus the constant
  // pipelining slack, and the observed high water stays within the
  // allocated capacity.
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  BuiltSim Sim = buildSim(diamondProgram(24, 24), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  for (const DataflowEdge &Edge : Sim.Dataflow->Edges) {
    std::string Name = Edge.Source + "->" + Edge.Consumer;
    auto It = Result->Stats.ChannelHighWater.find(Name);
    ASSERT_NE(It, Result->Stats.ChannelHighWater.end()) << Name;
    EXPECT_LE(It->second, Edge.BufferDepth + Config.MinChannelDepth)
        << Name;
    // Visible high water never exceeds the physical peak, which never
    // exceeds the allocated capacity.
    EXPECT_LE(It->second, Result->Stats.ChannelPeakOccupancy.at(Name));
    EXPECT_LE(Result->Stats.ChannelPeakOccupancy.at(Name),
              Result->Stats.ChannelCapacity.at(Name));
  }
}

//===----------------------------------------------------------------------===//
// Chrome trace export
//===----------------------------------------------------------------------===//

namespace {

/// Runs the diamond with a tracer attached and returns (trace, cycles).
std::pair<json::Value, int64_t> traceDiamond(Tracer &T) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Trace = &T;
  BuiltSim Sim = buildSim(diamondProgram(16, 16), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  EXPECT_TRUE(Result) << Result.message();
  auto Parsed = json::parse(T.chromeTraceJson());
  EXPECT_TRUE(Parsed) << Parsed.message();
  return {Parsed.takeValue(), Result->Stats.Cycles};
}

} // namespace

TEST(ChromeTraceTest, ProducesValidEventStream) {
  Tracer T(/*SampleStride=*/8);
  auto [Trace, Cycles] = traceDiamond(T);
  ASSERT_TRUE(Trace.isObject());
  const json::Value *Events = Trace.getObject().get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());

  int Metadata = 0, Complete = 0, Counter = 0;
  bool SawUnitTrack = false, SawStateEvent = false;
  for (const json::Value &Event : Events->getArray()) {
    ASSERT_TRUE(Event.isObject());
    const json::Object &Obj = Event.getObject();
    const std::string &Phase = Obj.get("ph")->getString();
    if (Phase == "M") {
      ++Metadata;
      if (Obj.get("name")->getString() == "thread_name" &&
          Obj.get("args")->getObject().get("name")->getString() ==
              "unit A")
        SawUnitTrack = true;
    } else if (Phase == "X") {
      ++Complete;
      int64_t Ts = Obj.get("ts")->getInteger();
      int64_t Dur = Obj.get("dur")->getInteger();
      EXPECT_GE(Ts, 0);
      EXPECT_GT(Dur, 0);
      EXPECT_LE(Ts + Dur, Cycles);
      const std::string &Name = Obj.get("name")->getString();
      if (Name == "active" || Name == "init" || Name == "drain")
        SawStateEvent = true;
    } else if (Phase == "C") {
      ++Counter;
      EXPECT_TRUE(Obj.get("args")->isObject());
    }
  }
  EXPECT_GT(Metadata, 0);
  EXPECT_GT(Complete, 0);
  EXPECT_GT(Counter, 0);
  EXPECT_TRUE(SawUnitTrack);
  EXPECT_TRUE(SawStateEvent);
  EXPECT_EQ(Trace.getObject()
                .get("otherData")
                ->getObject()
                .get("cycles")
                ->getInteger(),
            Cycles);
}

TEST(ChromeTraceTest, RerunResetsTheRecording) {
  Tracer T;
  auto [First, FirstCycles] = traceDiamond(T);
  auto [Second, SecondCycles] = traceDiamond(T);
  EXPECT_EQ(FirstCycles, SecondCycles);
  // The second run replaces the first instead of appending to it.
  EXPECT_EQ(First.getObject().get("traceEvents")->getArray().size(),
            Second.getObject().get("traceEvents")->getArray().size());
}

TEST(ChromeTraceTest, DeadlockedRunStillProducesATrace) {
  Tracer T;
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.ClampChannelsToMinimum = true;
  Config.MinChannelDepth = 4;
  Config.Trace = &T;
  BuiltSim Sim = buildSim(diamondProgram(32, 32), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.message().find("deadlock"), std::string::npos);
  auto Parsed = json::parse(T.chromeTraceJson());
  ASSERT_TRUE(Parsed) << Parsed.message();
  // The stuck components' stall intervals are visible in the trace.
  bool SawStall = false;
  for (const json::Value &Event :
       Parsed->getObject().get("traceEvents")->getArray()) {
    const json::Object &Obj = Event.getObject();
    if (Obj.get("ph")->getString() == "X" &&
        Obj.get("name")->getString().rfind("stall:", 0) == 0)
      SawStall = true;
  }
  EXPECT_TRUE(SawStall);
}

TEST(ChromeTraceTest, DisabledTracingRecordsNothing) {
  // The default config carries no tracer; the run must not touch one.
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  ASSERT_EQ(Config.Trace, nullptr);
  BuiltSim Sim = buildSim(diamondProgram(8, 8), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  // Attribution stays on regardless of tracing.
  expectCausesSumToTotals(Result->Stats);
}

//===----------------------------------------------------------------------===//
// Metrics CSV export
//===----------------------------------------------------------------------===//

TEST(MetricsCsvTest, TidyFormatCoversAllSections) {
  SimConfig Config;
  Config.UnconstrainedMemory = false;
  Config.PeakMemoryBytesPerCycle = 6.0;
  BuiltSim Sim = buildSim(diamondProgram(16, 16), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  std::string Csv = formatMetricsCsv(Result->Stats);

  EXPECT_EQ(Csv.rfind("section,name,metric,value\n", 0), 0u);
  EXPECT_NE(Csv.find("\nsim,total,cycles,"), std::string::npos);
  EXPECT_NE(Csv.find("\ndevice,0,memory_bytes,"), std::string::npos);
  EXPECT_NE(Csv.find("\nunit,A,stall.input-starved,"), std::string::npos);
  EXPECT_NE(Csv.find("\nreader,in@0,stall.memory-denied,"),
            std::string::npos);
  EXPECT_NE(Csv.find("\nwriter,C,stall_cycles,"), std::string::npos);
  EXPECT_NE(Csv.find("\nchannel,A->C,high_water,"), std::string::npos);
  EXPECT_NE(Csv.find("\nchannel,A->C,capacity,"), std::string::npos);

  // Every data row has exactly three commas (tidy long format).
  size_t Start = Csv.find('\n') + 1;
  while (Start < Csv.size()) {
    size_t End = Csv.find('\n', Start);
    std::string Line = Csv.substr(Start, End - Start);
    EXPECT_EQ(std::count(Line.begin(), Line.end(), ','), 3) << Line;
    Start = End + 1;
  }
}

TEST(MetricsCsvTest, StallRowsMatchStats) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  BuiltSim Sim = buildSim(laplace2d(12, 12), Config);
  auto Result = Sim.M->run(materializeInputs(Sim.Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  const StallBreakdown &W = Result->Stats.WriterStalls.begin()->second;
  std::string Csv = formatMetricsCsv(Result->Stats);
  std::string Expected =
      formatString("writer,b,stall.input-starved,%lld",
                   static_cast<long long>(W[StallCause::InputStarved]));
  EXPECT_NE(Csv.find(Expected), std::string::npos) << Csv;
}

//===----------------------------------------------------------------------===//
// writeTextFile
//===----------------------------------------------------------------------===//

TEST(WriteTextFileTest, RoundTripsContent) {
  std::string Path = ::testing::TempDir() + "/sf_trace_roundtrip.txt";
  std::string Text = "line one\nline two\n";
  Error Err = writeTextFile(Path, Text);
  EXPECT_FALSE(Err) << Err.message();
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(File, nullptr);
  std::string Read(Text.size() + 16, '\0');
  Read.resize(std::fread(Read.data(), 1, Read.size(), File));
  std::fclose(File);
  std::remove(Path.c_str());
  EXPECT_EQ(Read, Text);
}

TEST(WriteTextFileTest, OpenFailureNamesThePathAndCause) {
  Error Err = writeTextFile("/nonexistent-sf-dir/out.txt", "x");
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.message().find("/nonexistent-sf-dir/out.txt"),
            std::string::npos)
      << Err.message();
  // The errno context (ENOENT) must be part of the diagnostic.
  EXPECT_NE(Err.message().find("No such file or directory"),
            std::string::npos)
      << Err.message();
}

TEST(WriteTextFileTest, ShortWriteReportsErrorAndClosesStream) {
  // /dev/full accepts the open but fails the flush with ENOSPC, which is
  // exactly the short-write path that used to leak the FILE* (the old
  // code short-circuited `fwrite(...) == size && fclose(...)`, skipping
  // fclose whenever the write came up short). The payload is larger than
  // any stdio buffer so the failure cannot hide in buffering. Running
  // this test under ASan's leak checker (the sanitize CI job) verifies
  // the stream is closed on the error path.
  if (access("/dev/full", W_OK) != 0)
    GTEST_SKIP() << "/dev/full not writable on this system";
  std::string Payload(1 << 20, 'x');
  Error Err = writeTextFile("/dev/full", Payload);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.message().find("/dev/full"), std::string::npos)
      << Err.message();
  EXPECT_NE(Err.message().find("No space left on device"),
            std::string::npos)
      << Err.message();
}
