//===- tests/engine_test.cpp - Kernel execution engine tests -------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Parity and tape-compilation tests for compute/Engine.h. The contract
// under test: every tier (scalar, batched, specialized, jit — and the
// per-unit auto mode) produces the SAME BITS as the reference
// Kernel::evaluate interpreter, for every opcode, for NaN/Inf inputs, for
// drain-padding zero lanes, and end-to-end through both simulation
// engines. The jit tier is covered through the same helpers: when no host
// compiler is available it degrades to specialized, so the parity
// assertions still hold (the directed jit tests guard on
// jit::compilerAvailable() where the Jit tier itself is asserted).
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "compute/Engine.h"
#include "compute/Jit.h"
#include "compute/Kernel.h"
#include "core/CompiledProgram.h"
#include "core/DataflowAnalysis.h"
#include "runtime/InputData.h"
#include "sim/Machine.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include <sys/stat.h>

using namespace stencilflow;
using namespace stencilflow::compute;
using namespace stencilflow::testing;

namespace {

/// Compiles a single-node program around \p Source with input fields
/// \p Fields in a 2D space (mirrors compute_test.cpp).
Kernel compileKernel(const std::string &Source,
                     const std::vector<std::string> &Fields = {"a"},
                     const KernelOptions &Options = {},
                     DataType Type = DataType::Float32) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  for (const std::string &F : Fields)
    addInput(P, F);
  addStencil(P, "out", Source, Type);
  P.Outputs = {"out"};
  Error Err = analyzeProgram(P);
  EXPECT_FALSE(Err) << (Err ? Err.message() : "");
  auto Compiled = Kernel::compile(*P.findNode("out"), Options);
  EXPECT_TRUE(Compiled);
  return Compiled.takeValue();
}

/// The bit pattern of a double, so NaN payloads and signed zeros compare
/// exactly instead of through IEEE == (where NaN != NaN and -0.0 == 0.0).
uint64_t bits(double Value) {
  uint64_t Pattern;
  std::memcpy(&Pattern, &Value, sizeof(Pattern));
  return Pattern;
}

/// Runs \p Krn under \p Tier at width \p Lanes over the SoA input block.
std::vector<double> evalTier(const Kernel &Krn, KernelEngine Tier, int Lanes,
                             const std::vector<double> &SoAInputs) {
  KernelEvaluator Eval = KernelEvaluator::compile(Krn, Tier, Lanes);
  std::vector<double> Out(static_cast<size_t>(Lanes), 0.0);
  std::vector<double> Scratch(Eval.scratchDoubles(), 0.0);
  Eval.evaluate(SoAInputs.data(), Out.data(), Scratch.data());
  return Out;
}

/// Asserts all three tiers agree bit-for-bit with the reference
/// interpreter on \p SoAInputs at width \p Lanes.
void expectTierParity(const Kernel &Krn, int Lanes,
                      const std::vector<double> &SoAInputs,
                      const std::string &Context) {
  // Reference: the scalar interpreter, one lane column at a time.
  size_t NumInputs = Krn.inputs().size();
  std::vector<double> Reference(static_cast<size_t>(Lanes));
  std::vector<double> Column(NumInputs);
  for (int Lane = 0; Lane != Lanes; ++Lane) {
    for (size_t In = 0; In != NumInputs; ++In)
      Column[In] = SoAInputs[In * static_cast<size_t>(Lanes) +
                             static_cast<size_t>(Lane)];
    Reference[static_cast<size_t>(Lane)] = Krn.evaluate(Column);
  }
  for (KernelEngine Tier :
       {KernelEngine::Scalar, KernelEngine::Batched, KernelEngine::Specialized,
        KernelEngine::Jit, KernelEngine::Auto}) {
    std::vector<double> Out = evalTier(Krn, Tier, Lanes, SoAInputs);
    for (int Lane = 0; Lane != Lanes; ++Lane) {
      double Got = Out[static_cast<size_t>(Lane)];
      double Want = Reference[static_cast<size_t>(Lane)];
      // When BOTH operands of an x86 arithmetic op are NaN the result takes
      // the first source operand's payload, and C lets the compiler commute
      // a+b freely — so two separately-compiled evaluations of the same
      // expression may legitimately return different NaN payloads. IEEE 754
      // leaves the choice unspecified. The parity contract is therefore:
      // bit-exact everywhere, with any-NaN == any-NaN. (NaN vs non-NaN,
      // signed zeros, and every finite value still compare by bits.)
      if (std::isnan(Got) && std::isnan(Want))
        continue;
      std::string Dump;
      for (double V : SoAInputs)
        Dump += formatString("%016llx ",
                             static_cast<unsigned long long>(bits(V)));
      ASSERT_EQ(bits(Got), bits(Want))
          << Context << ": tier " << kernelEngineName(Tier) << ", lane "
          << Lane << ": " << Got << " vs " << Want << "\ninputs: " << Dump;
    }
  }
}

/// A value pool heavy on IEEE edge cases: NaN, infinities, signed zeros,
/// denormals, and magnitudes that overflow float.
double specialValue(Random &Rng) {
  static const double Pool[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      -2.5,
      3.25,
      1e30,
      -1e30,
      1e300,
      1e-300,
      5e-324,
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  if (Rng.nextBounded(2) == 0)
    return Pool[Rng.nextBounded(sizeof(Pool) / sizeof(Pool[0]))];
  return Rng.nextDoubleInRange(-8.0, 8.0);
}

std::vector<double> randomSoA(Random &Rng, size_t NumInputs, int Lanes,
                              bool PadTail) {
  std::vector<double> SoA(NumInputs * static_cast<size_t>(Lanes));
  for (double &V : SoA)
    V = specialValue(Rng);
  // Drain-phase padding: the machine zero-fills lanes past the edge of
  // the iteration space, so the tail lanes see literal 0.0 everywhere.
  if (PadTail && Lanes > 1)
    for (size_t In = 0; In != NumInputs; ++In)
      SoA[In * static_cast<size_t>(Lanes) + static_cast<size_t>(Lanes) - 1] =
          0.0;
  return SoA;
}

//===----------------------------------------------------------------------===//
// Random expression generator covering every parser-reachable opcode.
//===----------------------------------------------------------------------===//

std::string randomLeaf(Random &Rng) {
  static const char *Consts[] = {"0.0",  "1.0",  "2.0",   "0.5",
                                 "0.25", "-3.0", "1.5e3", "-0.125"};
  if (Rng.nextBounded(3) == 0)
    return Consts[Rng.nextBounded(sizeof(Consts) / sizeof(Consts[0]))];
  const char *Field = Rng.nextBool() ? "a" : "b";
  int64_t J = Rng.nextInRange(-1, 1);
  int64_t I = Rng.nextInRange(-1, 1);
  return formatString("%s[%lld, %lld]", Field, static_cast<long long>(J),
                      static_cast<long long>(I));
}

std::string randomExpr(Random &Rng, int Depth) {
  if (Depth <= 0 || Rng.nextBounded(5) == 0)
    return randomLeaf(Rng);
  switch (Rng.nextBounded(5)) {
  case 0: { // Binary operator.
    static const char *Ops[] = {"+",  "-",  "*",  "/",  "<",  "<=",
                                ">",  ">=", "==", "!=", "&&", "||"};
    return "(" + randomExpr(Rng, Depth - 1) + " " +
           Ops[Rng.nextBounded(sizeof(Ops) / sizeof(Ops[0]))] + " " +
           randomExpr(Rng, Depth - 1) + ")";
  }
  case 1: { // Unary operator.
    return std::string(Rng.nextBool() ? "(-" : "(!") +
           randomExpr(Rng, Depth - 1) + ")";
  }
  case 2: { // One-argument intrinsic.
    static const char *Fns[] = {"sqrt", "fabs",  "exp",  "log", "sin",
                                "cos",  "tanh",  "floor", "ceil"};
    return std::string(Fns[Rng.nextBounded(sizeof(Fns) / sizeof(Fns[0]))]) +
           "(" + randomExpr(Rng, Depth - 1) + ")";
  }
  case 3: { // Two-argument intrinsic.
    static const char *Fns[] = {"min", "max", "pow"};
    return std::string(Fns[Rng.nextBounded(3)]) + "(" +
           randomExpr(Rng, Depth - 1) + ", " + randomExpr(Rng, Depth - 1) +
           ")";
  }
  default: // Ternary select.
    return "(" + randomExpr(Rng, Depth - 1) + " ? " +
           randomExpr(Rng, Depth - 1) + " : " + randomExpr(Rng, Depth - 1) +
           ")";
  }
}

//===----------------------------------------------------------------------===//
// Machine-level parity helper.
//===----------------------------------------------------------------------===//

/// Runs \p Program end to end on the simulator under the requested kernel
/// and simulation engines, returning the raw output fields.
std::map<std::string, std::vector<double>>
runMachine(StencilProgram Program, KernelEngine KernelExec,
           sim::SimEngine Engine) {
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.KernelExec = KernelExec;
  Config.Engine = Engine;
  auto Compiled = CompiledProgram::compile(std::move(Program));
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  EXPECT_TRUE(Dataflow) << Dataflow.message();
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  EXPECT_TRUE(M) << M.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = M->run(Inputs);
  EXPECT_TRUE(Result) << Result.message();
  return Result->Outputs;
}

/// Asserts all kernel tiers x {serial, parallel} produce bit-identical
/// outputs for the program \p Build returns, using scalar-serial as the
/// reference. Takes a builder because StencilProgram is move-only: each
/// run gets a fresh instance.
template <class BuilderFn>
void expectMachineParity(BuilderFn Build, const std::string &Context) {
  auto Reference =
      runMachine(Build(), KernelEngine::Scalar, sim::SimEngine::Serial);
  for (KernelEngine Exec : {KernelEngine::Batched, KernelEngine::Specialized,
                            KernelEngine::Jit, KernelEngine::Auto})
    for (sim::SimEngine Engine :
         {sim::SimEngine::Serial, sim::SimEngine::Parallel}) {
      auto Outputs = runMachine(Build(), Exec, Engine);
      ASSERT_EQ(Outputs.size(), Reference.size()) << Context;
      for (const auto &[Name, Field] : Reference) {
        const std::vector<double> &Got = Outputs.at(Name);
        ASSERT_EQ(Got.size(), Field.size()) << Context;
        for (size_t I = 0; I != Field.size(); ++I)
          ASSERT_EQ(bits(Got[I]), bits(Field[I]))
              << Context << ": field " << Name << "[" << I << "] under "
              << kernelEngineName(Exec) << "/" << sim::simEngineName(Engine)
              << ": " << Got[I] << " vs " << Field[I];
      }
    }
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine selection plumbing
//===----------------------------------------------------------------------===//

TEST(EngineTest, NameRoundTrip) {
  for (KernelEngine Engine :
       {KernelEngine::Scalar, KernelEngine::Batched, KernelEngine::Specialized,
        KernelEngine::Jit, KernelEngine::Auto}) {
    auto Parsed = parseKernelEngine(kernelEngineName(Engine));
    ASSERT_TRUE(Parsed) << Parsed.message();
    EXPECT_EQ(*Parsed, Engine);
  }
  EXPECT_FALSE(parseKernelEngine("vectorized"));
  EXPECT_FALSE(parseKernelEngine(""));
}

TEST(EngineTest, TierReporting) {
  // A pure weighted sum pattern-matches into the chain specialization.
  Kernel Weighted = compileKernel(
      "out = 0.5 * a[0, 0] + 0.25 * a[0, 1] + 0.25 * a[0, -1];");
  KernelEvaluator Spec =
      KernelEvaluator::compile(Weighted, KernelEngine::Specialized, 4);
  EXPECT_EQ(Spec.tier(), KernelEngine::Specialized);
  EXPECT_EQ(Spec.specialization(), "weighted-sum-chain");
  EXPECT_EQ(Spec.scratchDoubles(), 0u);

  // Scalar compiles stay scalar and never specialize.
  KernelEvaluator Scalar =
      KernelEvaluator::compile(Weighted, KernelEngine::Scalar, 4);
  EXPECT_EQ(Scalar.tier(), KernelEngine::Scalar);
  EXPECT_TRUE(Scalar.specialization().empty());

  // A select cannot be expressed as a weighted-sum chain: the Specialized
  // tier must fall back to the batched tape and report the effective tier.
  Kernel Select =
      compileKernel("out = a[0, 0] > 0.0 ? a[0, 1] : a[0, -1];");
  KernelEvaluator Fallback =
      KernelEvaluator::compile(Select, KernelEngine::Specialized, 4);
  EXPECT_EQ(Fallback.tier(), KernelEngine::Batched);
  EXPECT_TRUE(Fallback.specialization().empty());
}

TEST(EngineTest, LaplaceSpecializes) {
  // The canonical 5-point Laplacian — the tape class the specialization
  // exists for — must pattern-match at both element types.
  for (DataType Type : {DataType::Float32, DataType::Float64}) {
    Kernel Krn = compileKernel(
        "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];",
        {"a"}, {}, Type);
    KernelEvaluator Eval =
        KernelEvaluator::compile(Krn, KernelEngine::Specialized, 8);
    EXPECT_EQ(Eval.tier(), KernelEngine::Specialized);
    EXPECT_EQ(Eval.specialization(), "weighted-sum-chain");
    // Five taps fold into five chain terms (init + 3 adds + mul-sub).
    EXPECT_EQ(Eval.tapeLength(), 5u);
  }
}

TEST(EngineTest, CommutedConstChainSpecializes) {
  // jacobi3d's final statement multiplies the accumulated sum from the
  // *commuted* operand position: `const * sum`. A non-NaN constant cannot
  // win a NaN-payload selection, so IEEE add/mul are bit-commutative here
  // and the chain matcher accepts it instead of falling back to the
  // batched tape.
  for (DataType Type : {DataType::Float32, DataType::Float64}) {
    Kernel Krn = compileKernel(
        "out = 0.142857 * (a[0, -1] + a[0, 0] + a[0, 1]);", {"a"}, {},
        Type);
    KernelEvaluator Eval =
        KernelEvaluator::compile(Krn, KernelEngine::Specialized, 8);
    EXPECT_EQ(Eval.tier(), KernelEngine::Specialized);
    EXPECT_EQ(Eval.specialization(), "weighted-sum-chain");

    // Bit-exact across tiers, including NaN/Inf/signed-zero inputs.
    Random Rng(Type == DataType::Float32 ? 505 : 606);
    for (int Lanes : {1, 4, 8})
      for (int Round = 0; Round != 8; ++Round)
        expectTierParity(
            Krn, Lanes,
            randomSoA(Rng, Krn.inputs().size(), Lanes, Round % 2 == 1),
            formatString("commuted-const type=%d lanes=%d round=%d",
                         static_cast<int>(Type), Lanes, Round));
  }

  // `input * acc` must still fall back: the input operand can carry a
  // NaN at runtime, and then operand order picks the payload.
  Kernel Unsafe = compileKernel(
      "out = b[0, 0] * (a[0, -1] + a[0, 0] + a[0, 1]);", {"a", "b"});
  EXPECT_EQ(
      KernelEvaluator::compile(Unsafe, KernelEngine::Specialized, 8).tier(),
      KernelEngine::Batched);
}

TEST(EngineTest, DeadRegisterElimination) {
  // "u" is never used: its Mul and the Const feeding it must vanish from
  // the batched tape, leaving fewer ops than the kernel's instruction
  // stream. Disable builder-side folding/CSE so the engine passes do the
  // work themselves.
  KernelOptions Options;
  Options.EnableConstantFolding = false;
  Options.EnableCSE = false;
  Kernel Krn = compileKernel(
      "t = a[0, 0] + 1.0; u = t * 3.0; out = t + a[0, 1];", {"a"}, Options);
  KernelEvaluator Batched =
      KernelEvaluator::compile(Krn, KernelEngine::Batched, 4);
  EXPECT_LT(Batched.tapeLength(), Krn.instructions().size());

  Random Rng(7);
  expectTierParity(Krn, 4, randomSoA(Rng, Krn.inputs().size(), 4, false),
                   "dead-register kernel");
}

TEST(EngineTest, ConstantFolding) {
  // With builder folding off, "2.0 * 3.0" survives into the kernel tape;
  // the engine's fold pass must collapse it so the batched tape carries
  // no arithmetic between constants.
  KernelOptions Options;
  Options.EnableConstantFolding = false;
  Kernel Krn =
      compileKernel("out = a[0, 0] + 2.0 * 3.0;", {"a"}, Options);
  KernelEvaluator Batched =
      KernelEvaluator::compile(Krn, KernelEngine::Batched, 4);
  EXPECT_LT(Batched.tapeLength(), Krn.instructions().size());

  Random Rng(11);
  expectTierParity(Krn, 4, randomSoA(Rng, Krn.inputs().size(), 4, false),
                   "const-fold kernel");
}

//===----------------------------------------------------------------------===//
// Bit-exact parity: directed
//===----------------------------------------------------------------------===//

TEST(EngineTest, AllOpcodesParity) {
  // One kernel through every opcode the parser can emit, including the
  // fused-multiply candidates and a select, under NaN/Inf-heavy inputs.
  const std::string Source =
      "t0 = a[0, 0] * b[0, 0] + a[0, 1];"
      "t1 = a[0, -1] - b[0, 1] * b[-1, 0];"
      "t2 = b[1, 0] * a[-1, 0] - t0;"
      "t3 = (a[0, 0] < b[0, 0]) + (a[0, 0] <= b[0, 0]) + "
      "     (a[0, 0] > b[0, 0]) + (a[0, 0] >= b[0, 0]) + "
      "     (a[0, 0] == b[0, 0]) + (a[0, 0] != b[0, 0]);"
      "t4 = (t3 && t0) + (t3 || t1) + (!t2);"
      "t5 = sqrt(fabs(t0)) + exp(t3) + log(fabs(t1)) + sin(t2) + cos(t3) "
      "     + tanh(t4) + floor(t0) + ceil(t1);"
      "t6 = min(t0, t1) + max(t2, t3) + pow(fabs(t4), 0.5) + (-t5);"
      "out = t3 != 0.0 ? t5 / (t6 + 1.0) : t6 - t4;";
  for (DataType Type : {DataType::Float32, DataType::Float64}) {
    Kernel Krn = compileKernel(Source, {"a", "b"}, {}, Type);
    Random Rng(Type == DataType::Float32 ? 101 : 202);
    for (int Lanes : {1, 4, 8})
      for (int Round = 0; Round != 8; ++Round)
        expectTierParity(
            Krn, Lanes,
            randomSoA(Rng, Krn.inputs().size(), Lanes, Round % 2 == 1),
            formatString("all-opcodes type=%d lanes=%d round=%d",
                         static_cast<int>(Type), Lanes, Round));
  }
}

TEST(EngineTest, WeightedSumParityWithSpecialValues) {
  // The specialized chain path specifically, under NaN/Inf/signed-zero
  // inputs and drain-padding zero lanes.
  for (DataType Type : {DataType::Float32, DataType::Float64}) {
    Kernel Krn = compileKernel(
        "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];",
        {"a"}, {}, Type);
    ASSERT_EQ(
        KernelEvaluator::compile(Krn, KernelEngine::Specialized, 8).tier(),
        KernelEngine::Specialized);
    Random Rng(Type == DataType::Float32 ? 303 : 404);
    for (int Lanes : {1, 4, 8})
      for (int Round = 0; Round != 8; ++Round)
        expectTierParity(
            Krn, Lanes,
            randomSoA(Rng, Krn.inputs().size(), Lanes, Round % 2 == 1),
            formatString("weighted-sum type=%d lanes=%d round=%d",
                         static_cast<int>(Type), Lanes, Round));
  }
}

TEST(EngineTest, DrainPaddingAllZeroParity) {
  // During drain the machine feeds all-zero vectors; the tiers must agree
  // on the exact zero-input result too (e.g. 0*Inf never appears, but
  // 0/0 can when the kernel divides).
  Kernel Krn = compileKernel("out = a[0, 0] / (a[0, 1] + b[0, 0]) "
                             "+ sqrt(b[0, 1]) * 2.0;",
                             {"a", "b"});
  std::vector<double> Zero(Krn.inputs().size() * 8, 0.0);
  expectTierParity(Krn, 8, Zero, "all-zero drain padding");
}

//===----------------------------------------------------------------------===//
// Bit-exact parity: randomized tapes
//===----------------------------------------------------------------------===//

TEST(EngineTest, RandomizedTapeParity) {
  // Random expression DAGs over the full opcode set, both element types,
  // special-value-heavy inputs. Each seed yields a different tape shape,
  // so collectively this sweeps fusion, chain-matching, folding, and DRE
  // decisions against the reference interpreter.
  //
  // Only the float types are exercised: casting NaN to an integer type is
  // undefined behavior in the (pre-existing) rounding rule for Int32 and
  // Int64 kernels, and those types never receive non-finite inputs in
  // real programs.
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    Random Rng(Seed * 7919 + 1);
    std::string Expr = randomExpr(Rng, 4);
    // An all-constant draw compiles to a stencil reading no fields, which
    // semantic analysis rejects; anchor it on a field access.
    if (Expr.find('[') == std::string::npos)
      Expr = "(" + Expr + ") + 0.0 * a[0, 0]";
    std::string Source = "out = " + Expr + ";";
    DataType Type = Seed % 2 ? DataType::Float64 : DataType::Float32;
    Kernel Krn = compileKernel(Source, {"a", "b"}, {}, Type);
    for (int Lanes : {1, 4, 8})
      expectTierParity(
          Krn, Lanes,
          randomSoA(Rng, Krn.inputs().size(), Lanes, Seed % 3 == 0),
          formatString("seed=%llu lanes=%d source=%s",
                       static_cast<unsigned long long>(Seed), Lanes,
                       Source.c_str()));
  }
}

//===----------------------------------------------------------------------===//
// End-to-end parity through the machine (serial and parallel engines)
//===----------------------------------------------------------------------===//

TEST(EngineTest, MachineParityLaplace) {
  expectMachineParity([] { return laplace2d(12, 16, 4); }, "laplace2d W=4");
}

TEST(EngineTest, MachineParityDiamond) {
  expectMachineParity([] { return diamondProgram(10, 10); }, "diamond");
}

TEST(EngineTest, MachineParityJacobiChain) {
  expectMachineParity([] { return jacobi3dChain(3, 4, 6, 8, 4); },
                      "jacobi3dChain W=4");
}

TEST(EngineTest, MachineParityRandomPrograms) {
  for (uint64_t Seed : {1u, 2u, 5u}) {
    RandomProgramOptions Options;
    Options.VectorWidth = 4;
    expectMachineParity(
        [&] { return randomProgram(Seed, Options); },
        formatString("randomProgram seed=%llu W=4",
                     static_cast<unsigned long long>(Seed)));
  }
  expectMachineParity([] { return randomProgram(9); },
                      "randomProgram seed=9 W=1");
}

TEST(EngineTest, JitTierReporting) {
  if (!jit::compilerAvailable())
    GTEST_SKIP() << "no host C++ compiler on PATH";
  Kernel Krn = compileKernel(
      "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];");
  jit::CacheStats Before = jit::cacheStats();
  KernelEvaluator Eval = KernelEvaluator::compile(Krn, KernelEngine::Jit, 8);
  EXPECT_EQ(Eval.tier(), KernelEngine::Jit);
  EXPECT_EQ(Eval.specialization(), "jit");
  EXPECT_EQ(Eval.scratchDoubles(), 0u);
  // The fused Laplacian tape: 5 inputs + the 4.0 constant + 3 adds + a
  // mul-sub (the jit reports tape ops, not chain terms).
  EXPECT_EQ(Eval.tapeLength(), 10u);

  // A second compile of the same (tape, width) must hit the cache, and
  // the cached object stays mapped while any evaluator references it.
  KernelEvaluator Again = KernelEvaluator::compile(Krn, KernelEngine::Jit, 8);
  EXPECT_EQ(Again.tier(), KernelEngine::Jit);
  jit::CacheStats After = jit::cacheStats();
  EXPECT_GT(After.Entries, 0u);
  EXPECT_GT(After.Hits, Before.Hits);

  Random Rng(909);
  for (int Round = 0; Round != 4; ++Round)
    expectTierParity(Krn, 8,
                     randomSoA(Rng, Krn.inputs().size(), 8, Round % 2 == 1),
                     formatString("jit laplace round=%d", Round));
}

TEST(EngineTest, JitSourceEmitsRoundingDiscipline) {
  // The emitted translation unit must round after every op and embed
  // constants as bit patterns — never decimal literals that could
  // round-trip differently.
  Kernel Krn = compileKernel("out = a[0, 0] * 0.1 + a[0, 1];");
  KernelEvaluator Probe =
      KernelEvaluator::compile(Krn, KernelEngine::Batched, 4);
  ASSERT_GT(Probe.tapeLength(), 0u);
  // Rebuild the fused tape the way compile() does is private; instead
  // golden-check emitTapeSource on a hand-made tape.
  std::vector<TapeOp> Ops(3);
  Ops[0].Op = TapeOp::Kind::Input;
  Ops[0].Dst = 0;
  Ops[0].InputIndex = 0;
  Ops[1].Op = TapeOp::Kind::Const;
  Ops[1].Dst = 1;
  Ops[1].Constant = 0.1;
  Ops[2].Op = TapeOp::Kind::MulAdd;
  Ops[2].Dst = 2;
  Ops[2].A = 0;
  Ops[2].B = 0;
  Ops[2].C = 1;
  std::string Source =
      jit::emitTapeSource(Ops, 2, DataType::Float32, 4);
  EXPECT_NE(Source.find("(double)(float)"), std::string::npos)
      << Source;
  EXPECT_NE(Source.find("sf_c(0x3fb999999999999aULL)"), std::string::npos)
      << Source;
  EXPECT_NE(Source.find("sf_jit_eval"), std::string::npos);
  EXPECT_EQ(Source.find("0.1"), std::string::npos)
      << "constants must be bit patterns, not decimal literals\n" << Source;
  // The F64 variant must not narrow through float.
  std::string F64 = jit::emitTapeSource(Ops, 2, DataType::Float64, 4);
  EXPECT_EQ(F64.find("(double)(float)"), std::string::npos) << F64;
}

TEST(EngineTest, JitIrregularTapeParity) {
  // The tapes the specialized chain matcher REJECTS — hdiff-style selects
  // and flux limiting, jacobi3d-shaped non-chain groupings — are exactly
  // where the jit tier must carry its weight. Assert it actually jits
  // (no silent fallback) and stays bit-exact under NaN/Inf inputs.
  if (!jit::compilerAvailable())
    GTEST_SKIP() << "no host C++ compiler on PATH";
  const struct {
    const char *Name;
    const char *Source;
  } Cases[] = {
      {"hdiff-flux",
       "lap = a[0, 1] + a[0, -1] + a[1, 0] + a[-1, 0] - 4.0 * a[0, 0];"
       "flx = lap * (a[0, 1] - a[0, 0]);"
       "out = flx * (a[0, 1] - a[0, 0]) > 0.0 ? 0.0 : flx;"},
      {"jacobi3d-grouped",
       "out = ((a[0, -1] + a[0, 1]) + (a[-1, 0] + a[1, 0])) * 0.25 "
       "      / (1.0 + b[0, 0] * b[0, 0]);"},
  };
  for (const auto &C : Cases) {
    for (DataType Type : {DataType::Float32, DataType::Float64}) {
      Kernel Krn = compileKernel(C.Source, {"a", "b"}, {}, Type);
      KernelEvaluator Eval =
          KernelEvaluator::compile(Krn, KernelEngine::Jit, 8);
      ASSERT_EQ(Eval.tier(), KernelEngine::Jit) << C.Name;
      // These shapes must NOT chain-match — that is the point.
      ASSERT_EQ(
          KernelEvaluator::compile(Krn, KernelEngine::Specialized, 8).tier(),
          KernelEngine::Batched)
          << C.Name << " unexpectedly specialized";
      Random Rng(Type == DataType::Float32 ? 707 : 808);
      for (int Lanes : {1, 4, 8})
        for (int Round = 0; Round != 6; ++Round)
          expectTierParity(
              Krn, Lanes,
              randomSoA(Rng, Krn.inputs().size(), Lanes, Round % 2 == 1),
              formatString("%s type=%d lanes=%d round=%d", C.Name,
                           static_cast<int>(Type), Lanes, Round));
    }
  }
}

TEST(EngineTest, JitFallsBackWithoutCompiler) {
  // Pointing the compiler override at a nonexistent binary forces the
  // no-toolchain path: compile(Jit) must degrade gracefully — to the
  // chain specialization when one matches, else the batched tape — and
  // still evaluate correctly. Distinct sources/widths from every other
  // test so the process-wide cache cannot mask the failure path.
  ASSERT_EQ(setenv("STENCILFLOW_JIT_CXX", "/nonexistent/sf-jit-cxx", 1), 0);
  struct Restore {
    ~Restore() { unsetenv("STENCILFLOW_JIT_CXX"); }
  } RestoreEnv;
  EXPECT_FALSE(jit::compilerAvailable());

  Kernel Chain = compileKernel(
      "out = a[0, 0] * 1.2345 + a[0, 1] * 9.876 + a[0, -1];");
  KernelEvaluator Spec = KernelEvaluator::compile(Chain, KernelEngine::Jit, 2);
  EXPECT_EQ(Spec.tier(), KernelEngine::Specialized);
  EXPECT_EQ(Spec.specialization(), "weighted-sum-chain");

  Kernel Irregular = compileKernel(
      "out = a[0, 0] > 1.5 ? a[0, 1] * 3.25 : a[0, -1] / 1.75;");
  KernelEvaluator Tape =
      KernelEvaluator::compile(Irregular, KernelEngine::Jit, 2);
  EXPECT_EQ(Tape.tier(), KernelEngine::Batched);

  // Auto must also degrade without a compiler.
  KernelEvaluator Auto =
      KernelEvaluator::compile(Irregular, KernelEngine::Auto, 2);
  EXPECT_NE(Auto.tier(), KernelEngine::Jit);

  Random Rng(1234);
  for (const Kernel *K : {&Chain, &Irregular})
    expectTierParity(*K, 2, randomSoA(Rng, K->inputs().size(), 2, false),
                     "no-compiler fallback");
}

TEST(EngineTest, JitCompileTimeoutFallsBack) {
  // A hung (or pathologically slow) compiler must not hang the
  // simulator: the wall-clock bound kills the child's whole process
  // group, records a Timeouts cache stat, and compile(Jit) degrades
  // exactly as if no compiler existed.
  std::string Script = ::testing::TempDir() + "/sf_slow_cxx.sh";
  {
    std::FILE *File = std::fopen(Script.c_str(), "w");
    ASSERT_NE(File, nullptr);
    std::fputs("#!/bin/sh\nsleep 600\n", File);
    ASSERT_EQ(std::fclose(File), 0);
  }
  ASSERT_EQ(::chmod(Script.c_str(), 0755), 0);
  ASSERT_EQ(setenv("STENCILFLOW_JIT_CXX", Script.c_str(), 1), 0);
  ASSERT_EQ(setenv("STENCILFLOW_JIT_TIMEOUT_S", "1", 1), 0);
  struct Restore {
    ~Restore() {
      unsetenv("STENCILFLOW_JIT_CXX");
      unsetenv("STENCILFLOW_JIT_TIMEOUT_S");
    }
  } RestoreEnv;
  // The script is discoverable and executable, so the availability probe
  // says yes — the timeout is only observable at compile time.
  EXPECT_TRUE(jit::compilerAvailable());

  // A distinct source/width from every other test so the process-wide
  // cache cannot mask the timeout path.
  Kernel Krn = compileKernel(
      "out = a[0, 0] * 6.125 + a[0, 1] * 0.375 - a[0, -1] * 2.75;");
  jit::CacheStats Before = jit::cacheStats();
  auto Start = std::chrono::steady_clock::now();
  KernelEvaluator Eval = KernelEvaluator::compile(Krn, KernelEngine::Jit, 3);
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  // Bounded: the 600-second sleep was killed, not awaited.
  EXPECT_LT(Elapsed, 60.0);
  EXPECT_NE(Eval.tier(), KernelEngine::Jit);
  jit::CacheStats After = jit::cacheStats();
  EXPECT_EQ(After.Timeouts, Before.Timeouts + 1);
  EXPECT_GT(After.Failures, Before.Failures);

  // The fallback still evaluates correctly.
  Random Rng(5678);
  expectTierParity(Krn, 3, randomSoA(Rng, Krn.inputs().size(), 3, false),
                   "timeout fallback");
}

TEST(EngineTest, AutoSelectsPerKernel) {
  // The per-kernel policy: trivial copies stay on the specialized chain
  // (no compile spawned), substantial tapes prefer the jit when a
  // compiler exists.
  Kernel Copy = compileKernel("out = a[0, 0];");
  KernelEvaluator Triv = KernelEvaluator::compile(Copy, KernelEngine::Auto, 8);
  EXPECT_EQ(Triv.tier(), KernelEngine::Specialized);

  Kernel Big = compileKernel(
      "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];");
  KernelEvaluator Chosen = KernelEvaluator::compile(Big, KernelEngine::Auto, 8);
  if (jit::compilerAvailable()) {
    EXPECT_EQ(Chosen.tier(), KernelEngine::Jit);
  } else {
    EXPECT_EQ(Chosen.tier(), KernelEngine::Specialized);
  }
  // tier() never reports the Auto mode itself.
  EXPECT_NE(Chosen.tier(), KernelEngine::Auto);
}

TEST(EngineTest, MachineReportsKernelEngine) {
  StencilProgram Program = laplace2d(12, 12);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.KernelExec = KernelEngine::Specialized;
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow) << Dataflow.message();
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M) << M.message();
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Stats.KernelExec, "specialized");
  // The Laplacian is a weighted sum: its unit must have specialized.
  EXPECT_GE(Result->Stats.SpecializedUnits, 1);
  // The effective tier is visible per unit, not just as a count.
  ASSERT_FALSE(Result->Stats.UnitKernelTiers.empty());
  for (const auto &[Unit, Tier] : Result->Stats.UnitKernelTiers)
    EXPECT_EQ(Tier, "specialized") << Unit;
  EXPECT_EQ(Result->Stats.kernelTierSummary(), "specialized x1");
}

TEST(EngineTest, MachineReportsEffectiveJitTiers) {
  // Requesting jit must surface the per-unit effective tier — jitted
  // units counted and named — so silent degradation is visible.
  if (!jit::compilerAvailable())
    GTEST_SKIP() << "no host C++ compiler on PATH";
  StencilProgram Program = diamondProgram(10, 10);
  sim::SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.KernelExec = KernelEngine::Jit;
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow) << Dataflow.message();
  auto M = sim::Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M) << M.message();
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Stats.KernelExec, "jit");
  EXPECT_GE(Result->Stats.JittedUnits, 1);
  ASSERT_FALSE(Result->Stats.UnitKernelTiers.empty());
  int64_t Jitted = 0;
  for (const auto &[Unit, Tier] : Result->Stats.UnitKernelTiers)
    Jitted += Tier == "jit" ? 1 : 0;
  EXPECT_EQ(Jitted, Result->Stats.JittedUnits);
  EXPECT_NE(Result->Stats.kernelTierSummary().find("jit x"),
            std::string::npos);
}
