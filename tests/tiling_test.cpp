//===- tests/tiling_test.cpp - Spatial tiling tests ----------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "runtime/InputData.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/SpatialTiling.h"
#include "runtime/Validation.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

TEST(TransitiveHaloTest, SingleStencil) {
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  EXPECT_EQ(computeTransitiveHalo(*Compiled),
            (std::vector<int64_t>{1, 1}));
}

TEST(TransitiveHaloTest, GrowsWithChainDepth) {
  // Each chained Jacobi step adds one cell of reach per dimension
  // ("proportional to the DAG depth", Sec. IX-D).
  for (int Length : {1, 2, 4}) {
    auto Compiled =
        CompiledProgram::compile(jacobi3dChain(Length, 10, 10, 10));
    ASSERT_TRUE(Compiled);
    EXPECT_EQ(computeTransitiveHalo(*Compiled),
              (std::vector<int64_t>(3, Length)));
  }
}

TEST(TransitiveHaloTest, LowerRankFieldsContribute) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8, 8});
  addInput(P, "a");
  Field C;
  C.Name = "c";
  C.DimensionMask = {true, false, false};
  P.Inputs.push_back(C);
  addStencil(P, "out", "out = a[0,0,0] + c[-2] + c[2];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  EXPECT_EQ(computeTransitiveHalo(*Compiled),
            (std::vector<int64_t>{2, 0, 0}));
}

namespace {

/// Runs \p Program tiled and untiled and demands bit-identical outputs.
TiledExecution expectTiledMatches(StencilProgram Program,
                                  const std::vector<int64_t> &Tiles) {
  auto Compiled = CompiledProgram::compile(std::move(Program));
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Untiled = runReference(*Compiled, Inputs);
  EXPECT_TRUE(Untiled);
  auto Tiled = runTiledReference(*Compiled, Inputs, Tiles);
  EXPECT_TRUE(Tiled) << Tiled.message();
  for (const std::string &Output : Compiled->program().Outputs) {
    ValidationReport Report = validateField(
        Output, Tiled->Outputs.at(Output), Untiled->field(Output));
    EXPECT_TRUE(Report.Passed) << Report.Summary;
  }
  return Tiled.takeValue();
}

} // namespace

TEST(SpatialTilingTest, LaplaceExactAcrossTileSizes) {
  for (int64_t Tile : {4, 8, 16, 32}) {
    TiledExecution Result =
        expectTiledMatches(laplace2d(32, 32), {Tile, Tile});
    if (Tile < 32) {
      EXPECT_GT(Result.Tiles, 1);
    }
  }
}

TEST(SpatialTilingTest, DeepChainExact) {
  // Chain of 4: transitive halo 4 in every dimension; seams and global
  // boundaries must both reproduce the untiled values exactly.
  expectTiledMatches(jacobi3dChain(4, 12, 12, 12), {6, 6, 6});
}

TEST(SpatialTilingTest, DiamondAndBoundariesExact) {
  expectTiledMatches(diamondProgram(24, 24), {8, 8});
}

TEST(SpatialTilingTest, CopyBoundaryExact) {
  StencilProgram P;
  P.IterationSpace = Shape({16, 16});
  addInput(P, "a", DataType::Float32, DataSource::random(9));
  addStencil(P, "mid",
             "mid = a[-1, 0] + a[0, 0] + a[1, 0];", DataType::Float32,
             {{"a", BoundaryCondition::copy()}});
  addStencil(P, "out", "out = mid[0, -1] + mid[0, 0] + mid[0, 1];",
             DataType::Float32,
             {{"mid", BoundaryCondition::constant(0.5)}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  expectTiledMatches(std::move(P), {4, 4});
}

TEST(SpatialTilingTest, ShrinkOutputExact) {
  StencilProgram P;
  P.IterationSpace = Shape({12, 12});
  addInput(P, "a", DataType::Float32, DataSource::random(10));
  StencilNode Node;
  Node.Name = "out";
  Node.ShrinkOutput = true;
  Node.Code = parseStencilCode(
                  "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1];")
                  .takeValue();
  P.Nodes.push_back(std::move(Node));
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  expectTiledMatches(std::move(P), {4, 4});
}

TEST(SpatialTilingTest, HdiffExact) {
  expectTiledMatches(workloads::horizontalDiffusion(4, 16, 16), {2, 8, 8});
}

TEST(SpatialTilingTest, RandomProgramsExact) {
  for (uint64_t Seed = 500; Seed <= 510; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    StencilProgram P = randomProgram(Seed);
    std::vector<int64_t> Tiles(P.IterationSpace.rank(), 4);
    expectTiledMatches(std::move(P), Tiles);
  }
}

TEST(SpatialTilingTest, RedundancyGrowsWithDepthAndSmallTiles) {
  // Sec. IX-D: redundancy ~ DAG depth x surface-to-volume ratio.
  auto Shallow = CompiledProgram::compile(jacobi3dChain(1, 12, 12, 12));
  auto Deep = CompiledProgram::compile(jacobi3dChain(4, 12, 12, 12));
  auto Inputs = materializeInputs(Shallow->program());
  auto SmallTiles = runTiledReference(*Shallow, Inputs, {4, 4, 4});
  auto LargeTiles = runTiledReference(*Shallow, Inputs, {12, 12, 12});
  auto DeepInputs = materializeInputs(Deep->program());
  auto DeepSmall = runTiledReference(*Deep, DeepInputs, {4, 4, 4});
  ASSERT_TRUE(SmallTiles);
  ASSERT_TRUE(LargeTiles);
  ASSERT_TRUE(DeepSmall);
  EXPECT_GT(SmallTiles->RedundancyFactor, LargeTiles->RedundancyFactor);
  EXPECT_GT(DeepSmall->RedundancyFactor, SmallTiles->RedundancyFactor);
  EXPECT_DOUBLE_EQ(LargeTiles->RedundancyFactor, 1.0); // One tile.
}

TEST(SpatialTilingTest, ShrinksBufferFootprint) {
  // The point of tiling: the per-tile working set (and with it the
  // internal/delay buffer footprint) is bounded by the tile, not the
  // domain.
  auto Compiled = CompiledProgram::compile(jacobi3dChain(2, 16, 16, 16));
  auto Inputs = materializeInputs(Compiled->program());
  auto Tiled = runTiledReference(*Compiled, Inputs, {4, 4, 4});
  ASSERT_TRUE(Tiled);
  EXPECT_LT(Tiled->MaxTileCells,
            Compiled->program().IterationSpace.numCells());
}

TEST(SpatialTilingTest, RejectsBadArguments) {
  auto Compiled = CompiledProgram::compile(laplace2d(8, 8));
  auto Inputs = materializeInputs(Compiled->program());
  EXPECT_FALSE(runTiledReference(*Compiled, Inputs, {4}));      // Rank.
  EXPECT_FALSE(runTiledReference(*Compiled, Inputs, {0, 4}));   // Zero.
  std::map<std::string, std::vector<double>> Empty;
  EXPECT_FALSE(runTiledReference(*Compiled, Empty, {4, 4}));    // No data.
}
