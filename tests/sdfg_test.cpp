//===- tests/sdfg_test.cpp - SDFG, transformations, fusion --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "core/DataflowAnalysis.h"
#include "runtime/InputData.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"
#include "sdfg/Graph.h"
#include "sdfg/Lowering.h"
#include "sdfg/StencilFusion.h"
#include "sdfg/Transforms.h"

#include "core/ValidRegion.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::sdfg;
using namespace stencilflow::testing;

namespace {

/// Compares \p Actual and \p Expected on the interior region of the fused
/// node \p Name of \p Fused — the exactness contract of spatial fusion
/// (boundary cells compute through the halo; see sdfg/StencilFusion.h).
void expectInteriorMatch(const StencilProgram &Fused,
                         const std::string &Name,
                         const std::vector<double> &Actual,
                         const std::vector<double> &Expected) {
  const StencilNode *Node = Fused.findNode(Name);
  ASSERT_NE(Node, nullptr);
  StencilNode Trimmed = Node->clone();
  Trimmed.ShrinkOutput = true;
  ValidRegion Region = computeValidRegion(Fused, Trimmed);
  ASSERT_GT(Region.numCells(), 0);
  int64_t Mismatches = 0;
  for (int64_t Cell = 0; Cell != Fused.IterationSpace.numCells(); ++Cell) {
    if (!Region.contains(Fused.IterationSpace.delinearize(Cell)))
      continue;
    Mismatches += Actual[static_cast<size_t>(Cell)] !=
                  Expected[static_cast<size_t>(Cell)];
  }
  EXPECT_EQ(Mismatches, 0) << "interior mismatch in field '" << Name << "'";
}

} // namespace

//===----------------------------------------------------------------------===//
// Graph basics
//===----------------------------------------------------------------------===//

TEST(SdfgGraphTest, BuildAndQuery) {
  SDFG G("test");
  G.Domain = Shape({8, 8});
  ASSERT_FALSE(G.addContainer(
      Container{"a", DataType::Float32, {true, true},
                ContainerKind::Array, 0, false}));
  EXPECT_TRUE(G.addContainer(
      Container{"a", DataType::Float32, {true, true},
                ContainerKind::Array, 0, false})); // Duplicate.
  State &S = G.addState("main");
  AccessNode *A = S.addAccess("a");
  TaskletNode *T = S.addTasklet("t", "x = a");
  S.connect(A, T, "a");
  EXPECT_EQ(S.successors(A->id()), std::vector<int>{T->id()});
  EXPECT_EQ(S.predecessors(T->id()), std::vector<int>{A->id()});
  EXPECT_FALSE(G.validate());
}

TEST(SdfgGraphTest, ValidateCatchesUndeclaredContainer) {
  SDFG G("test");
  G.Domain = Shape({8});
  State &S = G.addState("main");
  S.addAccess("ghost");
  EXPECT_TRUE(G.validate());
}

TEST(SdfgGraphTest, ScopeContents) {
  SDFG G("test");
  G.Domain = Shape({8, 8});
  State &S = G.addState("main");
  auto [Entry, Exit] = S.addMap("k", 0, 8);
  TaskletNode *Inner = S.addTasklet("inner", "");
  TaskletNode *Outer = S.addTasklet("outer", "");
  S.connect(Entry, Inner);
  S.connect(Inner, Exit);
  S.connect(Exit, Outer);
  std::vector<int> Contents = S.scopeContents(Entry->id());
  EXPECT_EQ(Contents, std::vector<int>{Inner->id()});
}

TEST(SdfgGraphTest, RemoveNodeDropsEdges) {
  SDFG G("test");
  G.Domain = Shape({8});
  ASSERT_FALSE(G.addContainer(
      Container{"a", DataType::Float32, {true}, ContainerKind::Array, 0,
                false}));
  State &S = G.addState("main");
  AccessNode *A = S.addAccess("a");
  TaskletNode *T = S.addTasklet("t", "");
  S.connect(A, T, "a");
  int TId = T->id();
  S.removeNode(TId);
  EXPECT_TRUE(S.edges().empty());
  EXPECT_EQ(S.findNode(TId), nullptr);
}

//===----------------------------------------------------------------------===//
// Program -> SDFG lowering and expansion
//===----------------------------------------------------------------------===//

TEST(SdfgLoweringTest, BuildsStreamsWithBufferDepths) {
  StencilProgram P = diamondProgram(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  auto G = buildSDFG(*Compiled, *Dataflow);
  ASSERT_TRUE(G) << G.message();
  // Streams for each edge; the A->C stream carries the delay buffer.
  const Container *AC = G->findContainer("A__to__C");
  ASSERT_NE(AC, nullptr);
  EXPECT_EQ(AC->Kind, ContainerKind::Stream);
  EXPECT_EQ(AC->BufferDepth,
            Dataflow->findEdge("A", "C")->BufferDepth);
  EXPECT_GT(AC->BufferDepth, 0);
  // Library nodes present.
  size_t LibraryCount = 0;
  for (const auto &N : G->states()[0].nodes())
    LibraryCount += isa<StencilLibraryNode>(N.get());
  EXPECT_EQ(LibraryCount, 3u);
}

TEST(SdfgLoweringTest, DotRendering) {
  StencilProgram P = laplace2d(8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Dataflow = analyzeDataflow(*Compiled);
  auto G = buildSDFG(*Compiled, *Dataflow);
  ASSERT_TRUE(G);
  std::string Dot = G->toDot();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("stencil b"), std::string::npos);
}

TEST(SdfgLoweringTest, ExpansionCreatesFig12Structure) {
  StencilProgram P = laplace2d(8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Dataflow = analyzeDataflow(*Compiled);
  auto G = buildSDFG(*Compiled, *Dataflow);
  ASSERT_TRUE(G);
  ASSERT_FALSE(expandAllStencilNodes(*G, *Compiled, *Dataflow));

  State &S = G->states()[0];
  // No library nodes remain.
  for (const auto &N : S.nodes())
    EXPECT_FALSE(isa<StencilLibraryNode>(N.get()));
  // A pipeline scope with init/drain phases exists.
  auto Pipelines = S.nodesOfType<PipelineEntryNode>();
  ASSERT_EQ(Pipelines.size(), 1u);
  EXPECT_GT(Pipelines[0]->initIterations(), 0);
  // Shift registers became containers, and an unrolled shift map exists.
  EXPECT_NE(G->findContainer("b__sreg__a"), nullptr);
  bool HasUnrolledMap = false;
  for (auto *Map : S.nodesOfType<MapEntryNode>())
    HasUnrolledMap |= Map->unrolled();
  EXPECT_TRUE(HasUnrolledMap);
  // Shift, update, compute and guarded-write tasklets all present.
  std::vector<std::string> Labels;
  for (const auto &N : S.nodes())
    if (isa<TaskletNode>(N.get()))
      Labels.push_back(N->label());
  auto contains = [&](const std::string &Needle) {
    for (const std::string &Label : Labels)
      if (Label.find(Needle) != std::string::npos)
        return true;
    return false;
  };
  EXPECT_TRUE(contains("shift_"));
  EXPECT_TRUE(contains("update_"));
  EXPECT_TRUE(contains("compute_"));
  EXPECT_TRUE(contains("write_"));
  EXPECT_FALSE(G->validate());
}

//===----------------------------------------------------------------------===//
// Stencil fusion (Sec. V-B)
//===----------------------------------------------------------------------===//

TEST(FusionTest, LegalityConditions) {
  // Diamond: A has two consumers -> not fusible. B has one consumer and is
  // not an output -> fusible into C.
  StencilProgram P = diamondProgram();
  EXPECT_FALSE(canFuseInto(P, "A"));
  auto Consumer = canFuseInto(P, "B");
  ASSERT_TRUE(Consumer);
  EXPECT_EQ(*Consumer, "C");
  // C is a program output -> not fusible.
  EXPECT_FALSE(canFuseInto(P, "C"));
}

TEST(FusionTest, RejectsMismatchedBoundaries) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "x", "x = a[0, -1] + a[0, 1];", DataType::Float32,
             {{"a", BoundaryCondition::constant(1.0)}});
  addStencil(P, "y", "y = x[0, 0] + a[0, 0];", DataType::Float32,
             {{"a", BoundaryCondition::constant(2.0)}});
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Result = canFuseInto(P, "x");
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.message().find("boundary"), std::string::npos);
}

TEST(FusionTest, RejectsCopyBoundaryAtShiftedOffset) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "x", "x = a[0, -1] + a[0, 0];", DataType::Float32,
             {{"a", BoundaryCondition::copy()}});
  addStencil(P, "y", "y = x[0, -1] + x[0, 1];", DataType::Float32,
             {{"x", BoundaryCondition::constant(0.0)}});
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  EXPECT_FALSE(canFuseInto(P, "x"));
}

TEST(FusionTest, AllowsCopyBoundaryAtCenterOnlyRead) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "x", "x = a[0, -1] + a[0, 0];", DataType::Float32,
             {{"a", BoundaryCondition::copy()}});
  addStencil(P, "y", "y = x[0, 0] * 2.0;");
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  EXPECT_TRUE(canFuseInto(P, "x"));
}

TEST(FusionTest, FusionPreservesSemanticsOnChain) {
  StencilProgram Original = jacobi3dChain(4, 12, 12, 12);
  StencilProgram Fused = Original.clone();
  auto Report = fuseAllStencils(Fused);
  ASSERT_TRUE(Report) << Report.message();
  EXPECT_EQ(Report->FusedPairs, 3);
  EXPECT_EQ(Fused.Nodes.size(), 1u);

  auto CompiledOriginal = CompiledProgram::compile(std::move(Original));
  auto CompiledFused = CompiledProgram::compile(std::move(Fused));
  ASSERT_TRUE(CompiledOriginal);
  ASSERT_TRUE(CompiledFused) << CompiledFused.message();
  auto Inputs = materializeInputs(CompiledOriginal->program());
  auto ResultOriginal = runReference(*CompiledOriginal, Inputs);
  auto ResultFused = runReference(*CompiledFused, Inputs);
  ASSERT_TRUE(ResultOriginal);
  ASSERT_TRUE(ResultFused);
  // Fusion computes through the halo; exactness holds on the interior.
  expectInteriorMatch(CompiledFused->program(), "a4",
                      ResultFused->field("a4"),
                      ResultOriginal->field("a4"));
}

TEST(FusionTest, FusionPreservesSemanticsOnDiamond) {
  StencilProgram Original = diamondProgram(12, 12);
  StencilProgram Fused = Original.clone();
  auto Report = fuseAllStencils(Fused);
  ASSERT_TRUE(Report) << Report.message();
  // B fuses into C; A then has a single consumer left and fuses too.
  EXPECT_EQ(Report->FusedPairs, 2);
  EXPECT_EQ(Fused.Nodes.size(), 1u);
  auto CompiledOriginal = CompiledProgram::compile(std::move(Original));
  auto CompiledFused = CompiledProgram::compile(std::move(Fused));
  ASSERT_TRUE(CompiledFused) << CompiledFused.message();
  auto Inputs = materializeInputs(CompiledOriginal->program());
  auto ResultOriginal = runReference(*CompiledOriginal, Inputs);
  auto ResultFused = runReference(*CompiledFused, Inputs);
  expectInteriorMatch(CompiledFused->program(), "C",
                      ResultFused->field("C"), ResultOriginal->field("C"));
}

TEST(FusionTest, FusionNeverIncreasesPipelineLatency) {
  // For a symmetric chain the fused window distance equals the sum of the
  // individual ones, so L is unchanged; it must never grow (Fig. 11b:
  // spatial fusion "only reduces latency").
  StencilProgram Original = jacobi3dChain(3, 6, 8, 8);
  StencilProgram Fused = Original.clone();
  ASSERT_TRUE(fuseAllStencils(Fused));
  auto CompiledOriginal = CompiledProgram::compile(std::move(Original));
  auto CompiledFused = CompiledProgram::compile(std::move(Fused));
  auto DataflowOriginal = analyzeDataflow(*CompiledOriginal);
  auto DataflowFused = analyzeDataflow(*CompiledFused);
  ASSERT_TRUE(DataflowOriginal);
  ASSERT_TRUE(DataflowFused);
  EXPECT_LE(DataflowFused->PipelineLatency,
            DataflowOriginal->PipelineLatency);
}

TEST(FusionTest, OverlappingWindowsReducePipelineLatency) {
  // When the consumer reads the producer at a forward offset, the fused
  // access window overlaps the producer's own window, and the combined
  // initialization phase is shorter than the chained ones (the latency
  // reduction of Sec. V-B).
  StencilProgram P;
  P.IterationSpace = Shape({16, 16});
  addInput(P, "a");
  addStencil(P, "x", "x = a[-1, 0] + a[1, 0];", DataType::Float32,
             {{"a", BoundaryCondition::constant(0.0)}});
  addStencil(P, "y", "y = x[1, 0] * 2.0;", DataType::Float32,
             {{"x", BoundaryCondition::constant(0.0)}});
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  StencilProgram Fused = P.clone();
  ASSERT_TRUE(fuseAllStencils(Fused));
  auto CompiledOriginal = CompiledProgram::compile(std::move(P));
  auto CompiledFused = CompiledProgram::compile(std::move(Fused));
  ASSERT_TRUE(CompiledFused) << CompiledFused.message();
  auto DataflowOriginal = analyzeDataflow(*CompiledOriginal);
  auto DataflowFused = analyzeDataflow(*CompiledFused);
  EXPECT_LT(DataflowFused->PipelineLatency,
            DataflowOriginal->PipelineLatency);
}

TEST(FusionTest, FusedProgramCombinesInternalBuffers) {
  // After fusing two Jacobi steps, the single node reads the input over a
  // doubled window: one merged buffer instead of two separate ones.
  StencilProgram P = jacobi3dChain(2, 6, 8, 8);
  ASSERT_TRUE(fuseAllStencils(P));
  ASSERT_EQ(P.Nodes.size(), 1u);
  NodeBuffers Buffers = computeNodeBuffers(P, P.Nodes[0]);
  ASSERT_EQ(Buffers.Buffers.size(), 1u);
  // Window spans [-2JI .. +2JI]: 4*J*I + 1 elements.
  EXPECT_EQ(Buffers.Buffers[0].SizeElements, 4 * 8 * 8 + 1);
}

TEST(FusionTest, ShiftedInstantiationUsesDistinctWindows) {
  // y reads x at two offsets; x reads a at two offsets. The fused node
  // must read a at the combined offsets {-2, 0, 2} (via two instances).
  StencilProgram P;
  P.IterationSpace = Shape({1, 16});
  addInput(P, "a");
  addStencil(P, "x", "x = a[0, -1] + a[0, 1];", DataType::Float32,
             {{"a", BoundaryCondition::constant(0.0)}});
  addStencil(P, "y", "y = x[0, -1] * x[0, 1];", DataType::Float32,
             {{"x", BoundaryCondition::constant(0.0)}});
  P.Outputs = {"y"};
  ASSERT_FALSE(analyzeProgram(P));
  StencilProgram Original = P.clone();
  ASSERT_TRUE(fuseAllStencils(P));
  ASSERT_EQ(P.Nodes.size(), 1u);
  const FieldAccesses *FA = P.Nodes[0].accessesFor("a");
  ASSERT_NE(FA, nullptr);
  EXPECT_EQ(FA->Offsets.size(), 3u); // {-2, 0, 2}.

  auto CompiledOriginal = CompiledProgram::compile(std::move(Original));
  auto CompiledFused = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(CompiledFused) << CompiledFused.message();
  auto Inputs = materializeInputs(CompiledOriginal->program());
  auto A = runReference(*CompiledOriginal, Inputs);
  auto B = runReference(*CompiledFused, Inputs);
  expectInteriorMatch(CompiledFused->program(), "y", B->field("y"),
                      A->field("y"));
}

TEST(FusionTest, RandomChainsFuseCorrectly) {
  // Chains with constant boundaries fuse fully as long as the fused code
  // stays below the growth limit (length 4 is the deepest 7-point chain
  // under it); results must be preserved on the interior.
  for (int Length : {2, 3, 4}) {
    StencilProgram Original = jacobi3dChain(Length, 12, 12, 12);
    StencilProgram Fused = Original.clone();
    ASSERT_TRUE(fuseAllStencils(Fused));
    auto CompiledOriginal = CompiledProgram::compile(std::move(Original));
    auto CompiledFused = CompiledProgram::compile(std::move(Fused));
    ASSERT_TRUE(CompiledFused);
    auto Inputs = materializeInputs(CompiledOriginal->program());
    auto A = runReference(*CompiledOriginal, Inputs);
    auto B = runReference(*CompiledFused, Inputs);
    std::string Out = formatString("a%d", Length);
    expectInteriorMatch(CompiledFused->program(), Out, B->field(Out),
                        A->field(Out));
  }
}

//===----------------------------------------------------------------------===//
// NestDim / MapFission / extraction (Fig. 13 external path)
//===----------------------------------------------------------------------===//

namespace {

/// Builds a Fig. 17a-style SDFG: a vertical map over k containing a chain
/// of two 2D stencils with a scoped transient between them.
SDFG buildVerticalMapSDFG() {
  SDFG G("external");
  G.Domain = Shape({4, 8, 8});
  EXPECT_FALSE(G.addContainer(
      Container{"in_field", DataType::Float32, {true, true, true},
                ContainerKind::Array, 0, false}));
  EXPECT_FALSE(G.addContainer(
      Container{"tmp", DataType::Float32, {false, true, true},
                ContainerKind::Array, 0, true}));
  EXPECT_FALSE(G.addContainer(
      Container{"out_field", DataType::Float32, {true, true, true},
                ContainerKind::Array, 0, false}));

  State &S = G.addState("main");
  auto [Entry, Exit] = S.addMap("k", 0, 4);

  // Stencil 1: 2D laplace on the k-th slice of in_field -> tmp.
  StencilNode S1;
  S1.Name = "lap";
  auto Code1 = parseStencilCode(
      "lap = in_field[0,-1] + in_field[0,1] + in_field[-1,0] + "
      "in_field[1,0] - 4.0 * in_field[0,0];");
  EXPECT_TRUE(Code1);
  S1.Code = Code1.takeValue();
  S1.Boundaries["in_field"] = BoundaryCondition::constant(0.0);
  StencilLibraryNode *Lib1 = S.addStencil(std::move(S1));

  // Stencil 2: scale tmp -> out_field.
  StencilNode S2;
  S2.Name = "scale";
  auto Code2 = parseStencilCode("scale = tmp[0,0] * 0.5;");
  EXPECT_TRUE(Code2);
  S2.Code = Code2.takeValue();
  StencilLibraryNode *Lib2 = S.addStencil(std::move(S2));

  AccessNode *In = S.addAccess("in_field");
  AccessNode *Tmp = S.addAccess("tmp");
  AccessNode *Out = S.addAccess("out_field");
  S.connect(In, Entry, "in_field");
  S.connect(Entry, Lib1, "in_field");
  S.connect(Lib1, Tmp, "tmp");
  S.connect(Tmp, Lib2, "tmp");
  S.connect(Lib2, Exit, "out_field");
  S.connect(Exit, Out, "out_field");
  return G;
}

} // namespace

TEST(TransformsTest, MapFissionSplitsScopes) {
  SDFG G = buildVerticalMapSDFG();
  State &S = G.states()[0];
  int MapId = S.nodesOfType<MapEntryNode>()[0]->id();
  ASSERT_FALSE(applyMapFission(G, 0, MapId, 0));
  // Two separate maps now; the transient spans k.
  EXPECT_EQ(G.states()[0].nodesOfType<MapEntryNode>().size(), 2u);
  const Container *Tmp = G.findContainer("tmp");
  ASSERT_NE(Tmp, nullptr);
  EXPECT_TRUE(Tmp->DimensionMask[0]);
}

TEST(TransformsTest, NestDimRaisesRank) {
  SDFG G = buildVerticalMapSDFG();
  State &S = G.states()[0];
  int MapId = S.nodesOfType<MapEntryNode>()[0]->id();
  ASSERT_FALSE(applyMapFission(G, 0, MapId, 0));
  // Nest both remaining maps.
  while (!G.states()[0].nodesOfType<MapEntryNode>().empty()) {
    int Id = G.states()[0].nodesOfType<MapEntryNode>()[0]->id();
    ASSERT_FALSE(applyNestDim(G, 0, Id, 0));
  }
  auto Libraries = G.states()[0].nodesOfType<StencilLibraryNode>();
  ASSERT_EQ(Libraries.size(), 2u);
  // The laplace stencil's offsets are now rank 3 with a leading 0.
  for (auto *Lib : Libraries) {
    for (const Assignment &Stmt : Lib->stencil().Code.Statements)
      walkExpr(*Stmt.Value, [&](const Expr &E) {
        if (const auto *Access = dyn_cast<FieldAccessExpr>(&E)) {
          EXPECT_EQ(Access->offset().size(), 3u);
          EXPECT_EQ(Access->offset()[0], 0);
        }
      });
  }
}

TEST(TransformsTest, NestDimRequiresSingleStencil) {
  SDFG G = buildVerticalMapSDFG();
  int MapId = G.states()[0].nodesOfType<MapEntryNode>()[0]->id();
  Error Err = applyNestDim(G, 0, MapId, 0);
  ASSERT_TRUE(Err);
  EXPECT_NE(Err.message().find("MapFission"), std::string::npos);
}

TEST(TransformsTest, CanonicalizeAndExtractRunsEndToEnd) {
  SDFG G = buildVerticalMapSDFG();
  ASSERT_FALSE(canonicalize(G));
  auto Program = extractStencilProgram(G);
  ASSERT_TRUE(Program) << Program.message();
  EXPECT_EQ(Program->Nodes.size(), 2u);
  EXPECT_EQ(Program->Inputs.size(), 1u);
  EXPECT_EQ(Program->Outputs, std::vector<std::string>{"out_field"});

  // The extracted program must compute exactly what a hand-written 3D
  // program computes.
  StencilProgram Manual;
  Manual.IterationSpace = Shape({4, 8, 8});
  addInput(Manual, "in_field", DataType::Float32,
           Program->Inputs[0].Source);
  addStencil(Manual, "tmp",
             "tmp = in_field[0,0,-1] + in_field[0,0,1] + in_field[0,-1,0] "
             "+ in_field[0,1,0] - 4.0 * in_field[0,0,0];",
             DataType::Float32,
             {{"in_field", BoundaryCondition::constant(0.0)}});
  addStencil(Manual, "out_field", "out_field = tmp[0,0,0] * 0.5;");
  Manual.Outputs = {"out_field"};
  ASSERT_FALSE(analyzeProgram(Manual));

  auto CompiledExtracted = CompiledProgram::compile(Program->clone());
  auto CompiledManual = CompiledProgram::compile(std::move(Manual));
  ASSERT_TRUE(CompiledExtracted) << CompiledExtracted.message();
  ASSERT_TRUE(CompiledManual);
  auto Inputs = materializeInputs(CompiledExtracted->program());
  auto A = runReference(*CompiledExtracted, Inputs);
  auto B = runReference(*CompiledManual, Inputs);
  ASSERT_TRUE(A);
  ASSERT_TRUE(B);
  ValidationReport Validation = validateField(
      "out_field", A->field("out_field"), B->field("out_field"));
  EXPECT_TRUE(Validation.Passed) << Validation.Summary;
}

TEST(TransformsTest, ExtractionThenFusionShrinksDag) {
  // The full case-study pipeline shape: canonicalize, extract, fuse.
  SDFG G = buildVerticalMapSDFG();
  ASSERT_FALSE(canonicalize(G));
  auto Program = extractStencilProgram(G);
  ASSERT_TRUE(Program);
  EXPECT_EQ(Program->Nodes.size(), 2u);
  auto Report = fuseAllStencils(*Program);
  ASSERT_TRUE(Report) << Report.message();
  EXPECT_EQ(Report->FusedPairs, 1);
  EXPECT_EQ(Program->Nodes.size(), 1u);
  EXPECT_FALSE(Program->validate());
}

TEST(FusionTest, GrowthLimitStopsExponentialChains) {
  // Each fusion instantiates the producer once per read offset, so deep
  // 7-point chains grow exponentially; the legality check must refuse
  // before the code explodes, leaving a partially fused (still valid)
  // program.
  StencilProgram P = jacobi3dChain(8, 12, 12, 12);
  auto Report = fuseAllStencils(P);
  ASSERT_TRUE(Report) << Report.message();
  EXPECT_GT(Report->FusedPairs, 0);
  EXPECT_GT(P.Nodes.size(), 1u); // Fusion stopped early.
  EXPECT_FALSE(P.validate());
  size_t Statements = 0;
  for (const StencilNode &Node : P.Nodes)
    Statements = std::max(Statements, Node.Code.Statements.size());
  EXPECT_LE(Statements, 768u);
}
