//===- tests/fuzz_test.cpp - Fuzz subsystem tests ------------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests for src/fuzz: the seeded program generator's determinism and
// validity contracts, the differential runner's seeded matrix and oracle,
// the finding reproducer format, the greedy minimizer, and the checked-in
// regression corpus (tests/fuzz_corpus) of previously-found-and-fixed
// bugs, which must never reproduce again.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"
#include "fuzz/Generate.h"
#include "fuzz/Minimize.h"

#include "common/TestPrograms.h"
#include "frontend/ProgramLoader.h"
#include "support/Json.h"
#include "workloads/Workloads.h"

#include "gtest/gtest.h"

#include <dirent.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::fuzz;

namespace {

std::string programText(const StencilProgram &Program) {
  return programToJson(Program).toString();
}

/// Options for in-test differential runs: never write reproducer files,
/// keep the resume axis' scratch in a test-owned directory.
DiffOptions quietOptions() {
  DiffOptions Options;
  Options.ScratchDir = "fuzz_test_scratch";
  return Options;
}

int maxAccessRadius(const StencilProgram &Program) {
  int Max = 0;
  for (const StencilNode &Node : Program.Nodes)
    for (const FieldAccesses &FA : Node.Accesses)
      for (const Offset &Off : FA.Offsets)
        for (int C : Off)
          Max = std::max(Max, std::abs(C));
  return Max;
}

/// A small two-node program with no time-loop bindings. Running it at a
/// temporal degree > 1 is a deterministic typed failure (temporal
/// unrolling requires bindings) while the oracle succeeds, so runConfig
/// classifies it as an error-asymmetry finding — a synthetic reproducer
/// the minimizer tests can shrink without depending on a live bug.
StencilProgram chainWithoutTimeLoop() {
  StencilProgram Program;
  Program.Name = "fuzz_chain";
  Program.IterationSpace = Shape({8, 8});
  stencilflow::testing::addInput(Program, "a");
  stencilflow::testing::addStencil(Program, "n1",
                      "n1 = a[0,-1] + 2.0 * a[0,0] + a[0,1];");
  stencilflow::testing::addStencil(Program, "n2", "n2 = n1[-1,0] + n1[1,0] + 0.5;");
  Program.Outputs = {"n2"};
  return stencilflow::testing::buildProgram(std::move(Program));
}

std::optional<FuzzFinding> syntheticAsymmetryFinding() {
  DiffConfig Config;
  Config.TemporalDegree = 2;
  return runConfig(chainWithoutTimeLoop(), /*Seed=*/99, Config,
                   quietOptions());
}

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(GenerateTest, SameSeedSameProgram) {
  for (uint64_t Seed = 1; Seed <= 24; ++Seed) {
    StencilProgram A = generateProgram(Seed);
    StencilProgram B = generateProgram(Seed);
    EXPECT_EQ(programText(A), programText(B)) << "seed " << Seed;
  }
}

TEST(GenerateTest, EveryProfileGeneratesValidAnalyzedPrograms) {
  struct Profile {
    const char *Name;
    GenConfig Config;
  };
  const Profile Profiles[] = {{"default", GenConfig()},
                              {"deep-rings", GenConfig::deepRings()},
                              {"wide-dags", GenConfig::wideDags()},
                              {"degenerate", GenConfig::degenerate()}};
  for (const Profile &P : Profiles) {
    for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
      StencilProgram Program = generateProgram(Seed, P.Config);
      ASSERT_FALSE(static_cast<bool>(Program.validate()))
          << P.Name << " seed " << Seed;
      EXPECT_FALSE(Program.Nodes.empty());
      EXPECT_FALSE(Program.Outputs.empty());
      // Generated programs arrive analyzed: every node knows its accesses.
      for (const StencilNode &Node : Program.Nodes)
        EXPECT_FALSE(Node.Accesses.empty())
            << P.Name << " seed " << Seed << " node " << Node.Name;
    }
  }
}

TEST(GenerateTest, SeedSweepCoversTheKeyRegimes) {
  bool SawTimeLoop = false, SawVectorized = false, SawRank3 = false;
  bool SawDeepRing = false, SawFloat64 = false, SawMultiNode = false;
  for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
    StencilProgram Program = generateProgram(Seed);
    SawTimeLoop |= !Program.TimeLoop.empty();
    SawVectorized |= Program.VectorWidth > 1;
    SawRank3 |= Program.IterationSpace.rank() == 3;
    SawDeepRing |= maxAccessRadius(Program) >= 3;
    SawMultiNode |= Program.Nodes.size() > 1;
    for (const StencilNode &Node : Program.Nodes)
      SawFloat64 |= Node.Type == DataType::Float64;
  }
  EXPECT_TRUE(SawTimeLoop);
  EXPECT_TRUE(SawVectorized);
  EXPECT_TRUE(SawRank3);
  EXPECT_TRUE(SawDeepRing);
  EXPECT_TRUE(SawFloat64);
  EXPECT_TRUE(SawMultiNode);
}

TEST(GenerateTest, DistinctSeedsDiverge) {
  std::set<std::string> Texts;
  for (uint64_t Seed = 1; Seed <= 10; ++Seed)
    Texts.insert(programText(generateProgram(Seed)));
  // Tiny collisions are conceivable in principle; wholesale collapse is
  // a generator bug.
  EXPECT_GE(Texts.size(), 8u);
}

TEST(GenerateTest, ProgramsRoundTripThroughJson) {
  // Covers the whole reproducer path, including the 53-bit data-seed
  // mask: programToJson stores numbers as doubles, so any generated seed
  // must survive serialize -> parse -> serialize unchanged.
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    StencilProgram Program = generateProgram(Seed);
    std::string Text = programToJson(Program).toString();
    Expected<json::Value> Doc = json::parse(Text);
    ASSERT_TRUE(static_cast<bool>(Doc)) << "seed " << Seed;
    Expected<StencilProgram> Loaded = programFromJson(*Doc);
    ASSERT_TRUE(static_cast<bool>(Loaded))
        << "seed " << Seed << ": " << Loaded.message();
    EXPECT_EQ(programToJson(*Loaded).toString(), Text) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Differential runner
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, MatrixSamplingIsSeededAndDeterministic) {
  StencilProgram Program = workloads::wave2dChain(1, 1, 8, 8);
  DiffOptions Options = quietOptions();
  Options.Matrix.ConfigsPerProgram = 4;
  DiffResult A = runDifferential(Program, 5, Options);
  DiffResult B = runDifferential(Program, 5, Options);
  ASSERT_EQ(A.Configs.size(), B.Configs.size());
  for (size_t I = 0; I != A.Configs.size(); ++I)
    EXPECT_EQ(A.Configs[I].id(), B.Configs[I].id());
  EXPECT_EQ(A.Runs, B.Runs);
  // The base configuration always anchors the matrix.
  ASSERT_FALSE(A.Configs.empty());
  EXPECT_EQ(A.Configs.front().id(), "serial/specialized/t1");
}

TEST(DifferentialTest, KnownGoodHighOrderWorkloadsAreClean) {
  DiffOptions Options = quietOptions();
  Options.Matrix.ConfigsPerProgram = 4;
  std::vector<StencilProgram> Programs;
  Programs.push_back(workloads::wave2dChain(2, 1, 16, 16));
  Programs.push_back(workloads::hotspot2dChain(1, 12, 12));
  for (const StencilProgram &Program : Programs) {
    DiffResult Result = runDifferential(Program, 11, Options);
    EXPECT_GE(Result.Runs, static_cast<int>(Result.Configs.size()));
    for (const FuzzFinding &Finding : Result.Findings)
      ADD_FAILURE() << Program.Name << ": " << findingKindName(Finding.Kind)
                    << " under " << Finding.Config.id() << ": "
                    << Finding.Detail;
  }
}

TEST(DifferentialTest, GeneratedProgramsAgreeAcrossTheMatrix) {
  // A miniature campaign: a handful of generated programs, each under a
  // reduced seeded matrix. Any finding here is a real pipeline bug.
  GenConfig Small;
  Small.MaxExtent = 8;
  Small.MaxNodes = 3;
  DiffOptions Options = quietOptions();
  Options.Matrix.ConfigsPerProgram = 3;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    StencilProgram Program = generateProgram(Seed, Small);
    DiffResult Result = runDifferential(Program, Seed, Options);
    for (const FuzzFinding &Finding : Result.Findings)
      ADD_FAILURE() << "seed " << Seed << ": "
                    << findingKindName(Finding.Kind) << " under "
                    << Finding.Config.id() << ": " << Finding.Detail;
  }
}

TEST(DifferentialTest, DegenerateProfileAgreesAcrossTheMatrix) {
  GenConfig Config = GenConfig::degenerate();
  Config.MaxExtent = 8;
  DiffOptions Options = quietOptions();
  Options.Matrix.ConfigsPerProgram = 3;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    StencilProgram Program = generateProgram(Seed, Config);
    DiffResult Result = runDifferential(Program, Seed, Options);
    for (const FuzzFinding &Finding : Result.Findings)
      ADD_FAILURE() << "seed " << Seed << ": "
                    << findingKindName(Finding.Kind) << " under "
                    << Finding.Config.id() << ": " << Finding.Detail;
  }
}

TEST(DifferentialTest, OracleCrcIsDeterministic) {
  StencilProgram Program = workloads::wave2dChain(2, 1, 12, 12);
  Expected<uint64_t> A = oracleCrc(Program, 2);
  Expected<uint64_t> B = oracleCrc(Program, 2);
  ASSERT_TRUE(static_cast<bool>(A)) << A.message();
  ASSERT_TRUE(static_cast<bool>(B)) << B.message();
  EXPECT_EQ(*A, *B);
  // A different temporal depth is a different trajectory.
  Expected<uint64_t> Deeper = oracleCrc(Program, 4);
  ASSERT_TRUE(static_cast<bool>(Deeper)) << Deeper.message();
  EXPECT_NE(*A, *Deeper);
}

TEST(DifferentialTest, OutputsCrcSeesSingleBitFlips) {
  std::map<std::string, std::vector<double>> Fields;
  Fields["out"] = {1.0, 2.0, 3.0};
  uint64_t Base = outputsCrc({"out"}, Fields);
  // Flip the lowest mantissa bit of one element.
  uint64_t Bits;
  std::memcpy(&Bits, &Fields["out"][1], sizeof(Bits));
  Bits ^= 1;
  std::memcpy(&Fields["out"][1], &Bits, sizeof(Bits));
  EXPECT_NE(outputsCrc({"out"}, Fields), Base);
  // Field order is part of the identity.
  Fields["aux"] = {0.0};
  EXPECT_NE(outputsCrc({"aux", "out"}, Fields),
            outputsCrc({"out", "aux"}, Fields));
}

TEST(DifferentialTest, TemporalDegreeWithoutTimeLoopIsAnErrorAsymmetry) {
  std::optional<FuzzFinding> Finding = syntheticAsymmetryFinding();
  ASSERT_TRUE(Finding.has_value());
  EXPECT_EQ(Finding->Kind, FindingKind::ErrorAsymmetry);
  EXPECT_EQ(Finding->Config.id(), "serial/specialized/t2");
  EXPECT_NE(Finding->ExpectedCrc, 0u); // The oracle side succeeded.
  EXPECT_NE(Finding->Detail.find("temporal"), std::string::npos)
      << Finding->Detail;
}

//===----------------------------------------------------------------------===//
// Findings
//===----------------------------------------------------------------------===//

TEST(FindingTest, ReproducerJsonRoundTrips) {
  std::optional<FuzzFinding> Finding = syntheticAsymmetryFinding();
  ASSERT_TRUE(Finding.has_value());
  // Seeds and CRCs are rendered as hex strings, so even full 64-bit
  // values survive the JSON double format.
  Finding->Seed = 0xdeadbeefcafebabeull;
  Finding->ActualCrc = 0xffffffffffffffffull;
  Expected<FuzzFinding> Loaded = FuzzFinding::fromJson(Finding->toJson());
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_EQ(Loaded->Kind, Finding->Kind);
  EXPECT_EQ(Loaded->Seed, Finding->Seed);
  EXPECT_EQ(Loaded->Config.id(), Finding->Config.id());
  EXPECT_EQ(Loaded->Detail, Finding->Detail);
  EXPECT_EQ(Loaded->ExpectedCrc, Finding->ExpectedCrc);
  EXPECT_EQ(Loaded->ActualCrc, Finding->ActualCrc);
  EXPECT_EQ(programText(Loaded->Program), programText(Finding->Program));
}

TEST(FindingTest, ExitCodesRankFindingsBySeverity) {
  EXPECT_EQ(exitCodeForFindings({}), 0);
  auto Of = [](FindingKind Kind) {
    FuzzFinding Finding;
    Finding.Kind = Kind;
    return Finding;
  };
  std::vector<FuzzFinding> Findings;
  Findings.push_back(Of(FindingKind::ErrorAsymmetry));
  EXPECT_EQ(exitCodeForFindings(Findings), 1);
  Findings.push_back(Of(FindingKind::Deadlock));
  EXPECT_EQ(exitCodeForFindings(Findings),
            exitCodeFor(ErrorCode::Deadlock));
  Findings.push_back(Of(FindingKind::Mismatch));
  EXPECT_EQ(exitCodeForFindings(Findings),
            exitCodeFor(ErrorCode::ValidationMismatch));
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(MinimizeTest, ShrinksTheReproducerWhilePreservingTheKind) {
  std::optional<FuzzFinding> Finding = syntheticAsymmetryFinding();
  ASSERT_TRUE(Finding.has_value());
  int64_t OriginalCells = Finding->Program.IterationSpace.numCells();

  MinimizeResult Result =
      minimizeFinding(*Finding, quietOptions(), /*MaxAttempts=*/80);
  EXPECT_EQ(Result.Finding.Kind, FindingKind::ErrorAsymmetry);
  EXPECT_GE(Result.Attempts, Result.Steps);
  // The failure is independent of the program shape, so the greedy loop
  // must land at least the drop-sink-node and shrink-extent mutations.
  EXPECT_GE(Result.Steps, 1);
  EXPECT_LE(Result.Finding.Program.Nodes.size(), 2u);
  EXPECT_LE(Result.Finding.Program.IterationSpace.numCells(), OriginalCells);

  // The minimized program is itself a well-formed reproducer.
  ASSERT_FALSE(static_cast<bool>(Result.Finding.Program.validate()));
  std::optional<FuzzFinding> Replayed =
      runConfig(Result.Finding.Program, Result.Finding.Seed,
                Result.Finding.Config, quietOptions());
  ASSERT_TRUE(Replayed.has_value());
  EXPECT_EQ(Replayed->Kind, FindingKind::ErrorAsymmetry);
}

TEST(MinimizeTest, MinimizedFindingSerializes) {
  // Regression: the minimizer used to steal the replayed finding's
  // program before stealing the finding itself, leaving a moved-from
  // rank-0 program whose serialization asserted. The minimized result
  // must always carry a live program that round-trips.
  std::optional<FuzzFinding> Finding = syntheticAsymmetryFinding();
  ASSERT_TRUE(Finding.has_value());
  MinimizeResult Result =
      minimizeFinding(*Finding, quietOptions(), /*MaxAttempts=*/40);
  ASSERT_GE(Result.Finding.Program.IterationSpace.rank(), 1);
  json::Value Doc = Result.Finding.toJson();
  EXPECT_FALSE(Doc.toPrettyString().empty());
  Expected<FuzzFinding> Loaded = FuzzFinding::fromJson(Doc);
  ASSERT_TRUE(static_cast<bool>(Loaded)) << Loaded.message();
  EXPECT_EQ(Loaded->Kind, Result.Finding.Kind);
}

//===----------------------------------------------------------------------===//
// Regression corpus
//===----------------------------------------------------------------------===//

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Paths;
  DIR *D = opendir(SF_FUZZ_CORPUS_DIR);
  if (!D)
    return Paths;
  while (dirent *Entry = readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 5 && Name.substr(Name.size() - 5) == ".json")
      Paths.push_back(std::string(SF_FUZZ_CORPUS_DIR) + "/" + Name);
  }
  closedir(D);
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

TEST(CorpusTest, RegressionReproducersStayFixed) {
  // Every corpus entry is the reproducer of a bug that has since been
  // fixed; replaying it must not find anything. A reproduction here
  // means a fixed bug came back.
  std::vector<std::string> Paths = corpusFiles();
  ASSERT_GE(Paths.size(), 3u) << "corpus missing at " << SF_FUZZ_CORPUS_DIR;
  for (const std::string &Path : Paths) {
    Expected<json::Value> Doc = json::parseFile(Path);
    ASSERT_TRUE(static_cast<bool>(Doc)) << Path << ": " << Doc.message();
    Expected<FuzzFinding> Finding = FuzzFinding::fromJson(*Doc);
    ASSERT_TRUE(static_cast<bool>(Finding))
        << Path << ": " << Finding.message();
    std::optional<FuzzFinding> Replayed =
        runConfig(Finding->Program, Finding->Seed, Finding->Config,
                  quietOptions());
    EXPECT_FALSE(Replayed.has_value())
        << Path << " reproduced: "
        << (Replayed ? Replayed->Detail : std::string());
  }
}

} // namespace
