//===- tests/checkpoint_test.cpp - Checkpoint/restart tests --------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the checkpoint/restart subsystem end to end:
//
//  - the encoding primitives (CRC-32 known vectors, FNV-1a, the
//    bounds-checked ByteReader);
//  - the snapshot file layer: round trips, crash-consistent naming,
//    latest-snapshot resolution, bounded retention;
//  - rejection of damaged files — corrupted, truncated, bad magic,
//    version skew — with ErrorCode::SnapshotInvalid, and of mismatched
//    programs/inputs with ErrorCode::SnapshotIncompatible;
//  - the kill/resume parity harness: a run resumed from any snapshot must
//    be cycle- and bit-exact with the uninterrupted run, across
//    {serial, parallel} engines x kernel tiers x {no plan, fault plan},
//    on single- and multi-device placements;
//  - kernel-tier reassignment on restore (the exact signature excludes
//    the execution tier by design);
//  - the pipeline's device-loss recovery resuming from the last snapshot
//    instead of cycle zero (CyclesSavedByCheckpoint).
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "core/Partitioner.h"
#include "runtime/InputData.h"
#include "runtime/Pipeline.h"
#include "sim/Checkpoint.h"
#include "sim/Fault.h"
#include "sim/Machine.h"
#include "support/Error.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace stencilflow;
using namespace stencilflow::sim;
using namespace stencilflow::testing;

namespace {

/// A per-test scratch directory under the gtest temp root, cleared of any
/// leftover snapshot files from a previous in-process run.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "/sf_ckpt_" + Name;
  ::mkdir(Dir.c_str(), 0755);
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *Entry = ::readdir(D)) {
      std::string File = Entry->d_name;
      if (File != "." && File != "..")
        ::unlink((Dir + "/" + File).c_str());
    }
    ::closedir(D);
  }
  return Dir;
}

/// All snapshot files in \p Dir, sorted ascending by cycle (the zero-padded
/// names make lexical order numeric order).
std::vector<std::string> listSnapshotFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Files;
  while (dirent *Entry = ::readdir(D)) {
    std::string Name = Entry->d_name;
    if (Name.size() > 10 && Name.compare(0, 5, "ckpt-") == 0 &&
        Name.compare(Name.size() - 5, 5, ".sfck") == 0)
      Files.push_back(Dir + "/" + Name);
  }
  ::closedir(D);
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::vector<uint8_t> slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void spit(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
  EXPECT_TRUE(Out.good()) << Path;
}

/// Asserts that two completed runs agree on everything the bit-exactness
/// guarantee covers: outputs (bitwise), cycle count, termination, stall
/// attribution, channel peaks, byte counters, and link statistics.
void expectSameRun(const SimResult &A, const SimResult &B,
                   const std::string &Tag) {
  EXPECT_EQ(A.Stats.Cycles, B.Stats.Cycles) << Tag;
  EXPECT_EQ(A.Termination, B.Termination) << Tag;
  ASSERT_EQ(A.Outputs.size(), B.Outputs.size()) << Tag;
  for (const auto &[Name, Values] : A.Outputs) {
    const auto &Other = B.Outputs.at(Name);
    ASSERT_EQ(Other.size(), Values.size()) << Tag << " " << Name;
    for (size_t I = 0; I != Values.size(); ++I)
      ASSERT_EQ(Other[I], Values[I])
          << Tag << " " << Name << "[" << I << "]";
  }
  EXPECT_EQ(A.Stats.NetworkBytesMoved, B.Stats.NetworkBytesMoved) << Tag;
  ASSERT_EQ(A.Stats.MemoryBytesMoved.size(),
            B.Stats.MemoryBytesMoved.size())
      << Tag;
  for (size_t I = 0; I != A.Stats.MemoryBytesMoved.size(); ++I)
    EXPECT_EQ(A.Stats.MemoryBytesMoved[I], B.Stats.MemoryBytesMoved[I])
        << Tag << " device " << I;
  for (const auto &[Name, Stalls] : A.Stats.UnitStalls)
    for (int Cause = 0; Cause != NumStallCauses; ++Cause)
      EXPECT_EQ(B.Stats.UnitStalls.at(Name).Counts[Cause],
                Stalls.Counts[Cause])
          << Tag << " unit " << Name << " cause " << Cause;
  for (const auto &[Name, Stalls] : A.Stats.ReaderStalls)
    for (int Cause = 0; Cause != NumStallCauses; ++Cause)
      EXPECT_EQ(B.Stats.ReaderStalls.at(Name).Counts[Cause],
                Stalls.Counts[Cause])
          << Tag << " reader " << Name;
  for (const auto &[Name, Stalls] : A.Stats.WriterStalls)
    for (int Cause = 0; Cause != NumStallCauses; ++Cause)
      EXPECT_EQ(B.Stats.WriterStalls.at(Name).Counts[Cause],
                Stalls.Counts[Cause])
          << Tag << " writer " << Name;
  for (const auto &[Name, Peak] : A.Stats.ChannelPeakOccupancy)
    EXPECT_EQ(B.Stats.ChannelPeakOccupancy.at(Name), Peak)
        << Tag << " channel " << Name;
  for (const auto &[Name, High] : A.Stats.ChannelHighWater)
    EXPECT_EQ(B.Stats.ChannelHighWater.at(Name), High)
        << Tag << " channel " << Name;
  ASSERT_EQ(A.Stats.Links.size(), B.Stats.Links.size()) << Tag;
  for (const auto &[Name, Link] : A.Stats.Links) {
    const LinkStats &Other = B.Stats.Links.at(Name);
    EXPECT_EQ(Other.Transmissions, Link.Transmissions) << Tag << Name;
    EXPECT_EQ(Other.Retransmissions, Link.Retransmissions) << Tag << Name;
    EXPECT_EQ(Other.CorruptedVectors, Link.CorruptedVectors) << Tag << Name;
  }
}

/// Builds a multi-device partition by budgeting \p SplitAt nodes per
/// device (7 DSPs per scalar node), as in tests/fault_test.cpp.
Partition makeSplitPartition(const CompiledProgram &Compiled,
                             const DataflowAnalysis &Dataflow, int SplitAt) {
  PartitionOptions Options;
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs = 7 * Compiled.program().VectorWidth * SplitAt;
  Options.MaxDevices = 64;
  auto Result = partitionProgram(Compiled, Dataflow, Options);
  EXPECT_TRUE(Result) << Result.message();
  return Result.takeValue();
}

/// The kill/resume parity harness. Runs \p Program three ways under
/// \p Base: uninterrupted, checkpointing (which must not perturb the
/// simulation at all), and resumed from the first/middle/last snapshot on
/// a fresh machine — every resumed run must be bit- and cycle-exact with
/// the uninterrupted one. Resuming from snapshot K is exactly what a
/// process killed right after snapshot K does on restart, so this covers
/// the kill at every sampled point of the run.
void expectKillResumeParity(StencilProgram Program, SimConfig Base,
                            bool MultiDevice, const std::string &Tag) {
  auto Compiled = CompiledProgram::compile(std::move(Program));
  ASSERT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow) << Dataflow.message();
  Partition Placement;
  if (MultiDevice) {
    Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
    ASSERT_GE(Placement.numDevices(), 2u) << Tag;
  }
  const Partition *Where = MultiDevice ? &Placement : nullptr;
  auto Inputs = materializeInputs(Compiled->program());

  auto M0 = Machine::build(*Compiled, *Dataflow, Where, Base);
  ASSERT_TRUE(M0) << M0.message();
  auto Uninterrupted = M0->run(Inputs);
  ASSERT_TRUE(Uninterrupted) << Tag << ": " << Uninterrupted.message();
  EXPECT_EQ(Uninterrupted->Stats.ResumedFromCycle, -1) << Tag;

  SimConfig Ck = Base;
  Ck.CheckpointDir = freshDir(Tag);
  Ck.CheckpointEveryCycles =
      std::max<int64_t>(1, Uninterrupted->Stats.Cycles / 5);
  Ck.CheckpointKeep = 1000; // Keep every snapshot for the sweep below.
  auto M1 = Machine::build(*Compiled, *Dataflow, Where, Ck);
  ASSERT_TRUE(M1) << M1.message();
  auto Checkpointed = M1->run(Inputs);
  ASSERT_TRUE(Checkpointed) << Tag << ": " << Checkpointed.message();
  EXPECT_GE(Checkpointed->Stats.CheckpointsWritten, 2) << Tag;
  expectSameRun(*Uninterrupted, *Checkpointed, Tag + " (checkpointing)");

  std::vector<std::string> Files = listSnapshotFiles(Ck.CheckpointDir);
  ASSERT_GE(Files.size(), 2u) << Tag;
  for (const std::string &File :
       {Files.front(), Files[Files.size() / 2], Files.back()}) {
    auto Snap = readSnapshotFile(File);
    ASSERT_TRUE(Snap) << Tag << ": " << Snap.message();
    auto M2 = Machine::build(*Compiled, *Dataflow, Where, Base);
    ASSERT_TRUE(M2) << M2.message();
    auto Resumed = M2->run(Inputs, &*Snap);
    ASSERT_TRUE(Resumed) << Tag << " resume@" << Snap->Cycle << ": "
                         << Resumed.message();
    EXPECT_EQ(Resumed->Stats.ResumedFromCycle, Snap->Cycle) << Tag;
    expectSameRun(*Uninterrupted, *Resumed,
                  Tag + formatString(" (resume@%lld)",
                                     static_cast<long long>(Snap->Cycle)));
  }
}

/// A two-event corruption plan exercising the Go-Back-N transport.
FaultPlan corruptionPlan() {
  FaultPlan Plan;
  Plan.Seed = 20260808;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.StartCycle = 0;
  Corrupt.EndCycle = 50000;
  Corrupt.Probability = 0.05;
  Plan.Events.push_back(Corrupt);
  return Plan;
}

} // namespace

//===----------------------------------------------------------------------===//
// Encoding primitives
//===----------------------------------------------------------------------===//

TEST(CheckpointCodecTest, Crc32KnownVectors) {
  // The IEEE 802.3 / zlib check value.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Sensitivity: one flipped bit changes the sum.
  EXPECT_NE(crc32("123456789", 9), crc32("123456788", 9));
}

TEST(CheckpointCodecTest, Fnv1aIsSeededAndDeterministic) {
  EXPECT_EQ(fnv1a("abc", 3), fnv1a("abc", 3));
  EXPECT_NE(fnv1a("abc", 3), fnv1a("abd", 3));
  EXPECT_NE(fnv1a("abc", 3), fnv1a("abc", 3, /*Seed=*/99));
  EXPECT_EQ(fnv1a("", 0), 1469598103934665603ull);
}

TEST(CheckpointCodecTest, ByteRoundTrip) {
  ByteWriter W;
  W.u8(7);
  W.u32(0xDEADBEEFu);
  W.u64(1ull << 60);
  W.i64(-42);
  W.f64(3.25);
  double Span[3] = {1.0, -0.0, 2e300};
  W.f64span(Span, 3);
  W.str("channel a->b");
  W.blob({1, 2, 3});

  ByteReader R(W.bytes());
  EXPECT_EQ(R.u8(), 7);
  EXPECT_EQ(R.u32(), 0xDEADBEEFu);
  EXPECT_EQ(R.u64(), 1ull << 60);
  EXPECT_EQ(R.i64(), -42);
  EXPECT_EQ(R.f64(), 3.25);
  std::vector<double> Back = R.f64span();
  ASSERT_EQ(Back.size(), 3u);
  EXPECT_EQ(Back[0], 1.0);
  EXPECT_TRUE(std::signbit(Back[1]));
  EXPECT_EQ(Back[2], 2e300);
  EXPECT_EQ(R.str(), "channel a->b");
  EXPECT_EQ(R.blob(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(R.exhausted());
  EXPECT_FALSE(R.failed());
}

TEST(CheckpointCodecTest, ReaderRejectsOverruns) {
  ByteWriter W;
  W.u64(1ull << 50); // A count claiming far more doubles than exist.
  ByteReader R(W.bytes());
  EXPECT_TRUE(R.f64span().empty());
  EXPECT_TRUE(R.failed());

  ByteReader Short(nullptr, 0);
  EXPECT_EQ(Short.u64(), 0u);
  EXPECT_TRUE(Short.failed());
}

TEST(CheckpointCodecTest, InputsHashCoversNamesAndData) {
  std::map<std::string, std::vector<double>> A = {{"a", {1.0, 2.0}}};
  std::map<std::string, std::vector<double>> B = {{"a", {1.0, 2.5}}};
  std::map<std::string, std::vector<double>> C = {{"b", {1.0, 2.0}}};
  EXPECT_EQ(hashInputFields(A), hashInputFields(A));
  EXPECT_NE(hashInputFields(A), hashInputFields(B));
  EXPECT_NE(hashInputFields(A), hashInputFields(C));
}

//===----------------------------------------------------------------------===//
// Snapshot file layer
//===----------------------------------------------------------------------===//

namespace {

MachineSnapshot sampleSnapshot() {
  MachineSnapshot Snap;
  Snap.Cycle = 12345;
  Snap.ExactSignature = 0x1111222233334444ull;
  Snap.TopologySignature = 0x5555666677778888ull;
  Snap.InputsHash = 0x9999aaaabbbbccccull;
  Snap.State = {0, 1, 2, 3, 4, 255, 254, 253};
  return Snap;
}

} // namespace

TEST(SnapshotFileTest, RoundTrip) {
  std::string Dir = freshDir("roundtrip");
  MachineSnapshot Snap = sampleSnapshot();
  std::string Path = Dir + "/" + snapshotFileName(Snap.Cycle);
  ASSERT_FALSE(writeSnapshotFile(Path, Snap));
  auto Back = readSnapshotFile(Path);
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->Cycle, Snap.Cycle);
  EXPECT_EQ(Back->ExactSignature, Snap.ExactSignature);
  EXPECT_EQ(Back->TopologySignature, Snap.TopologySignature);
  EXPECT_EQ(Back->InputsHash, Snap.InputsHash);
  EXPECT_EQ(Back->State, Snap.State);
  // No staging temp files survive a successful write.
  for (const std::string &File : listSnapshotFiles(Dir))
    EXPECT_EQ(File.find(".tmp."), std::string::npos);
}

TEST(SnapshotFileTest, NamesSortNumerically) {
  EXPECT_LT(snapshotFileName(999), snapshotFileName(1000));
  EXPECT_LT(snapshotFileName(0), snapshotFileName(1));
  EXPECT_EQ(snapshotFileName(5).find("ckpt-"), 0u);
}

TEST(SnapshotFileTest, FindLatestAndPrune) {
  std::string Dir = freshDir("retention");
  for (int64_t Cycle : {100, 200, 300, 400}) {
    MachineSnapshot Snap = sampleSnapshot();
    Snap.Cycle = Cycle;
    ASSERT_FALSE(
        writeSnapshotFile(Dir + "/" + snapshotFileName(Cycle), Snap));
  }
  auto Latest = findLatestSnapshot(Dir);
  ASSERT_TRUE(Latest) << Latest.message();
  EXPECT_NE(Latest->find(snapshotFileName(400)), std::string::npos);
  // A direct file path resolves to itself.
  auto Direct = findLatestSnapshot(*Latest);
  ASSERT_TRUE(Direct);
  EXPECT_EQ(*Direct, *Latest);
  // Retention keeps only the most recent K.
  pruneSnapshots(Dir, 2);
  std::vector<std::string> Files = listSnapshotFiles(Dir);
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_NE(Files[0].find(snapshotFileName(300)), std::string::npos);
  EXPECT_NE(Files[1].find(snapshotFileName(400)), std::string::npos);
  // An empty directory is a typed error, not a crash.
  std::string Empty = freshDir("retention_empty");
  auto None = findLatestSnapshot(Empty);
  ASSERT_FALSE(None);
  EXPECT_EQ(None.code(), ErrorCode::SnapshotInvalid);
}

TEST(SnapshotFileTest, RejectsDamagedFiles) {
  // Each damage mode must produce ErrorCode::SnapshotInvalid (exit 9) —
  // never a misparse, never a crash.
  EXPECT_EQ(exitCodeFor(ErrorCode::SnapshotInvalid), 9);
  EXPECT_EQ(exitCodeFor(ErrorCode::SnapshotIncompatible), 10);

  std::string Dir = freshDir("damage");
  std::string Path = Dir + "/" + snapshotFileName(777);
  ASSERT_FALSE(writeSnapshotFile(Path, sampleSnapshot()));
  std::vector<uint8_t> Good = slurp(Path);
  ASSERT_GT(Good.size(), 24u); // magic + version + crc + size

  // Corrupted body byte: the CRC catches it.
  std::vector<uint8_t> Corrupt = Good;
  Corrupt[Corrupt.size() - 1] ^= 0x40;
  spit(Path, Corrupt);
  auto R1 = readSnapshotFile(Path);
  ASSERT_FALSE(R1);
  EXPECT_EQ(R1.code(), ErrorCode::SnapshotInvalid);

  // Truncated file.
  std::vector<uint8_t> Truncated(Good.begin(),
                                 Good.begin() + Good.size() / 2);
  spit(Path, Truncated);
  auto R2 = readSnapshotFile(Path);
  ASSERT_FALSE(R2);
  EXPECT_EQ(R2.code(), ErrorCode::SnapshotInvalid);

  // Bad magic.
  std::vector<uint8_t> BadMagic = Good;
  BadMagic[0] = 'X';
  spit(Path, BadMagic);
  auto R3 = readSnapshotFile(Path);
  ASSERT_FALSE(R3);
  EXPECT_EQ(R3.code(), ErrorCode::SnapshotInvalid);

  // Version skew: the version word sits outside the CRC so a future
  // format bump is reported as such, not as corruption.
  std::vector<uint8_t> Skewed = Good;
  Skewed[8] = static_cast<uint8_t>(SnapshotFormatVersion + 1);
  spit(Path, Skewed);
  auto R4 = readSnapshotFile(Path);
  ASSERT_FALSE(R4);
  EXPECT_EQ(R4.code(), ErrorCode::SnapshotInvalid);
  EXPECT_NE(R4.message().find("version"), std::string::npos)
      << R4.message();

  // A missing file.
  auto R5 = readSnapshotFile(Dir + "/no-such-file.sfck");
  ASSERT_FALSE(R5);
  EXPECT_EQ(R5.code(), ErrorCode::SnapshotInvalid);
}

//===----------------------------------------------------------------------===//
// Kill/resume parity
//===----------------------------------------------------------------------===//

TEST(CheckpointParityTest, SerialSingleDevice) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  expectKillResumeParity(laplace2d(16, 16), Config, /*MultiDevice=*/false,
                         "serial_laplace");
}

TEST(CheckpointParityTest, SerialConstrainedMemory) {
  // Carry-over memory/writer budgets are state; a resume that zeroed
  // them would shift every subsequent grant by a cycle.
  SimConfig Config;
  expectKillResumeParity(laplace2d(16, 16), Config, /*MultiDevice=*/false,
                         "serial_constrained");
}

TEST(CheckpointParityTest, SerialMultiDevice) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  expectKillResumeParity(jacobi3dChain(6, 4, 6, 6), Config,
                         /*MultiDevice=*/true, "serial_chain");
}

TEST(CheckpointParityTest, SerialMultiDeviceWithFaults) {
  // The hardest state: Go-Back-N windows, in-flight wire vectors,
  // retransmit backoff, and the corruption-PRNG nonces all must survive
  // the snapshot for the resumed run to replay the same fault history.
  FaultPlan Plan = corruptionPlan();
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Faults = &Plan;
  expectKillResumeParity(jacobi3dChain(6, 4, 6, 6), Config,
                         /*MultiDevice=*/true, "serial_faults");
}

TEST(CheckpointParityTest, ParallelMultiDevice) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Engine = SimEngine::Parallel;
  Config.Threads = 2;
  expectKillResumeParity(jacobi3dChain(6, 4, 6, 6), Config,
                         /*MultiDevice=*/true, "parallel_chain");
}

TEST(CheckpointParityTest, ParallelMultiDeviceWithFaults) {
  FaultPlan Plan = corruptionPlan();
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Engine = SimEngine::Parallel;
  Config.Threads = 2;
  Config.Faults = &Plan;
  expectKillResumeParity(jacobi3dChain(6, 4, 6, 6), Config,
                         /*MultiDevice=*/true, "parallel_faults");
}

TEST(CheckpointParityTest, ScalarKernelTier) {
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.KernelExec = compute::KernelEngine::Scalar;
  expectKillResumeParity(laplace2d(12, 16, 4), Config,
                         /*MultiDevice=*/false, "scalar_tier");
}

TEST(CheckpointParityTest, AutoKernelTier) {
  // Exercises per-unit tier selection (and the jit when a host compiler
  // exists) across the snapshot boundary.
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.KernelExec = compute::KernelEngine::Auto;
  expectKillResumeParity(laplace2d(12, 16, 4), Config,
                         /*MultiDevice=*/false, "auto_tier");
}

TEST(CheckpointParityTest, WallClockCadenceSnapshots) {
  // The wall-clock cadence alone (no cycle cadence) must also produce
  // resumable snapshots; with a zero-ish period every eligible boundary
  // snapshots.
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  auto Inputs = materializeInputs(Compiled->program());

  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M0 = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M0);
  auto Baseline = M0->run(Inputs);
  ASSERT_TRUE(Baseline) << Baseline.message();

  SimConfig Ck = Config;
  Ck.CheckpointDir = freshDir("wallclock");
  Ck.CheckpointEverySeconds = 1e-9;
  auto M1 = Machine::build(*Compiled, *Dataflow, nullptr, Ck);
  ASSERT_TRUE(M1);
  auto Run = M1->run(Inputs);
  ASSERT_TRUE(Run) << Run.message();
  EXPECT_GE(Run->Stats.CheckpointsWritten, 1);
  // Default retention bounds the directory.
  EXPECT_LE(listSnapshotFiles(Ck.CheckpointDir).size(),
            static_cast<size_t>(Ck.CheckpointKeep));

  auto Latest = findLatestSnapshot(Ck.CheckpointDir);
  ASSERT_TRUE(Latest) << Latest.message();
  auto Snap = readSnapshotFile(*Latest);
  ASSERT_TRUE(Snap) << Snap.message();
  auto M2 = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M2);
  auto Resumed = M2->run(Inputs, &*Snap);
  ASSERT_TRUE(Resumed) << Resumed.message();
  expectSameRun(*Baseline, *Resumed, "wallclock resume");
}

//===----------------------------------------------------------------------===//
// Restore-time compatibility checks
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Program once with checkpointing and returns the last snapshot.
MachineSnapshot snapshotOf(StencilProgram Program, const std::string &Tag,
                           SimConfig Config = SimConfig{}) {
  auto Compiled = CompiledProgram::compile(std::move(Program));
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  EXPECT_TRUE(Dataflow) << Dataflow.message();
  Config.UnconstrainedMemory = true;
  Config.CheckpointDir = freshDir(Tag);
  Config.CheckpointEveryCycles = 64;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  EXPECT_TRUE(M) << M.message();
  auto Result = M->run(materializeInputs(Compiled->program()));
  EXPECT_TRUE(Result) << Result.message();
  EXPECT_GE(Result->Stats.CheckpointsWritten, 1);
  auto Latest = findLatestSnapshot(Config.CheckpointDir);
  EXPECT_TRUE(Latest) << Latest.message();
  auto Snap = readSnapshotFile(*Latest);
  EXPECT_TRUE(Snap) << Snap.message();
  return Snap.takeValue();
}

} // namespace

TEST(CheckpointRestoreTest, RejectsWrongProgram) {
  MachineSnapshot Snap = snapshotOf(laplace2d(16, 16), "wrong_program");
  StencilProgram Other = diamondProgram(10, 10);
  auto Compiled = CompiledProgram::compile(std::move(Other));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()), &Snap);
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::SnapshotIncompatible);
}

TEST(CheckpointRestoreTest, RejectsWrongInputs) {
  MachineSnapshot Snap = snapshotOf(laplace2d(16, 16), "wrong_inputs");
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Inputs = materializeInputs(Compiled->program());
  Inputs.begin()->second[0] += 1.0; // Not the inputs that were snapshotted.
  auto Result = M->run(Inputs, &Snap);
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::SnapshotIncompatible);
}

TEST(CheckpointRestoreTest, ConfigChangeFallsBackToRehydrate) {
  // Channel sizing changes the simulated trajectory, so the exact
  // signature includes it; a machine with different sizing cannot take
  // the verbatim restore. The topology still matches, so the restore
  // degrades to the rehydrate path: the run resumes, and the output
  // *values* — which are data-flow deterministic regardless of timing —
  // still come out right.
  MachineSnapshot Snap = snapshotOf(laplace2d(16, 16), "wrong_config");
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.MinChannelDepth = 16; // Default is 8.
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Inputs = materializeInputs(Compiled->program());
  auto Resumed = M->run(Inputs, &Snap);
  ASSERT_TRUE(Resumed) << Resumed.message();
  EXPECT_EQ(Resumed->Stats.ResumedFromCycle, Snap.Cycle);

  auto MRef = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(MRef);
  auto Fresh = MRef->run(Inputs);
  ASSERT_TRUE(Fresh) << Fresh.message();
  for (const auto &[Name, Values] : Fresh->Outputs) {
    const auto &Other = Resumed->Outputs.at(Name);
    ASSERT_EQ(Other.size(), Values.size());
    for (size_t I = 0; I != Values.size(); ++I)
      ASSERT_EQ(Other[I], Values[I]) << Name << "[" << I << "]";
  }
}

TEST(CheckpointRestoreTest, EngineAndTierAreResumeInvariant) {
  // The exact signature deliberately EXCLUDES the engine, thread count,
  // and kernel tier: a snapshot from a serial Specialized run resumes on
  // a machine with a different tier, reports the reassignment, and still
  // reproduces the uninterrupted outputs bit-exactly.
  auto Compiled = CompiledProgram::compile(laplace2d(16, 16));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  auto Inputs = materializeInputs(Compiled->program());

  SimConfig Spec;
  Spec.UnconstrainedMemory = true;
  Spec.KernelExec = compute::KernelEngine::Specialized;
  auto M0 = Machine::build(*Compiled, *Dataflow, nullptr, Spec);
  ASSERT_TRUE(M0);
  auto Baseline = M0->run(Inputs);
  ASSERT_TRUE(Baseline) << Baseline.message();

  SimConfig Ck = Spec;
  Ck.CheckpointDir = freshDir("tier_reassign");
  Ck.CheckpointEveryCycles =
      std::max<int64_t>(1, Baseline->Stats.Cycles / 3);
  Ck.CheckpointKeep = 1000;
  auto M1 = Machine::build(*Compiled, *Dataflow, nullptr, Ck);
  ASSERT_TRUE(M1);
  auto Run = M1->run(Inputs);
  ASSERT_TRUE(Run) << Run.message();

  std::vector<std::string> Files = listSnapshotFiles(Ck.CheckpointDir);
  ASSERT_FALSE(Files.empty());
  auto Snap = readSnapshotFile(Files[Files.size() / 2]);
  ASSERT_TRUE(Snap) << Snap.message();

  SimConfig Scalar = Spec;
  Scalar.KernelExec = compute::KernelEngine::Scalar;
  auto M2 = Machine::build(*Compiled, *Dataflow, nullptr, Scalar);
  ASSERT_TRUE(M2);
  auto Resumed = M2->run(Inputs, &*Snap);
  ASSERT_TRUE(Resumed) << Resumed.message();
  EXPECT_GT(Resumed->Stats.TierReassignedUnits, 0);
  expectSameRun(*Baseline, *Resumed, "tier reassignment");
}

//===----------------------------------------------------------------------===//
// Device-loss recovery through the pipeline
//===----------------------------------------------------------------------===//

TEST(CheckpointRecoveryTest, DeviceLossResumesFromSnapshot) {
  // The incremental-recovery path: a two-device deployment checkpoints,
  // loses device 1 mid-run, re-partitions across the survivors, and
  // rehydrates the last snapshot onto the new placement instead of
  // restarting from cycle zero. The final outputs still validate against
  // the reference executor.
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 1;
  Death.StartCycle = 150;
  Plan.Events.push_back(Death);

  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Faults = &Plan;
  Options.Simulator.CheckpointDir = freshDir("device_loss");
  Options.Simulator.CheckpointEveryCycles = 25;
  Options.Simulator.CheckpointKeep = 2;
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs = 7 * 3;
  Options.Partitioning.MaxDevices = 64;

  auto Result = runPipeline(jacobi3dChain(6, 4, 6, 6), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Recovery.Attempts, 2);
  EXPECT_EQ(Result->Recovery.DevicesLost, 1);
  EXPECT_GT(Result->Recovery.CyclesSavedByCheckpoint, 0);
  EXPECT_TRUE(Result->ValidationPassed);
  bool SawRehydrate = false;
  for (const std::string &Line : Result->Recovery.Log)
    SawRehydrate |= Line.find("rehydrating") != std::string::npos;
  EXPECT_TRUE(SawRehydrate);
  // Bounded retention held even across the crash/retry sequence.
  EXPECT_LE(
      listSnapshotFiles(Options.Simulator.CheckpointDir).size(),
      static_cast<size_t>(Options.Simulator.CheckpointKeep));
}

TEST(CheckpointRecoveryTest, ExplicitResumeErrorsAreHard) {
  // --resume pointing at nothing usable must fail the pipeline with the
  // typed snapshot error, not silently start from zero.
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.ResumeFrom = freshDir("resume_empty");
  auto Result = runPipeline(laplace2d(12, 12), Options);
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::SnapshotInvalid);
}
