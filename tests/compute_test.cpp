//===- tests/compute_test.cpp - Compute library tests -------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "compute/Kernel.h"
#include "core/CompiledProgram.h"
#include "core/DataflowAnalysis.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace stencilflow;
using namespace stencilflow::compute;
using namespace stencilflow::testing;

namespace {

/// Compiles a single-node program around \p Source with input fields
/// \p Fields in a 2D space.
Kernel compileKernel(const std::string &Source,
                     const std::vector<std::string> &Fields = {"a"},
                     const KernelOptions &Options = {},
                     DataType Type = DataType::Float32) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  for (const std::string &F : Fields)
    addInput(P, F);
  addStencil(P, "out", Source, Type);
  P.Outputs = {"out"};
  Error Err = analyzeProgram(P);
  EXPECT_FALSE(Err) << (Err ? Err.message() : "");
  auto Compiled = Kernel::compile(*P.findNode("out"), Options);
  EXPECT_TRUE(Compiled);
  return Compiled.takeValue();
}

} // namespace

TEST(KernelTest, EvaluatesArithmetic) {
  Kernel K = compileKernel("out = a[0, 0] * 2.0 + a[0, 1];");
  ASSERT_EQ(K.inputs().size(), 2u);
  // Input order is deterministic: first use first.
  int Center = K.inputIndex("a", {0, 0});
  int East = K.inputIndex("a", {0, 1});
  ASSERT_GE(Center, 0);
  ASSERT_GE(East, 0);
  std::vector<double> Inputs(2);
  Inputs[static_cast<size_t>(Center)] = 3.0;
  Inputs[static_cast<size_t>(East)] = 4.0;
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 10.0);
}

TEST(KernelTest, EvaluatesLocals) {
  Kernel K = compileKernel("t = a[0, 0] + 1.0; u = t * t; out = u - t;");
  std::vector<double> Inputs{2.0};
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 9.0 - 3.0);
}

TEST(KernelTest, EvaluatesSelect) {
  Kernel K = compileKernel("out = a[0, 0] > 0.0 ? a[0, 1] : a[0, -1];");
  int Guard = K.inputIndex("a", {0, 0});
  int TrueVal = K.inputIndex("a", {0, 1});
  int FalseVal = K.inputIndex("a", {0, -1});
  std::vector<double> Inputs(3);
  Inputs[static_cast<size_t>(Guard)] = 1.0;
  Inputs[static_cast<size_t>(TrueVal)] = 10.0;
  Inputs[static_cast<size_t>(FalseVal)] = 20.0;
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 10.0);
  Inputs[static_cast<size_t>(Guard)] = -1.0;
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 20.0);
}

TEST(KernelTest, EvaluatesIntrinsics) {
  Kernel K = compileKernel(
      "out = min(sqrt(a[0, 0]), max(a[0, 1], 2.0)) + fabs(a[0, -1]);");
  int A = K.inputIndex("a", {0, 0});
  int B = K.inputIndex("a", {0, 1});
  int C = K.inputIndex("a", {0, -1});
  std::vector<double> Inputs(3);
  Inputs[static_cast<size_t>(A)] = 16.0;
  Inputs[static_cast<size_t>(B)] = 1.0;
  Inputs[static_cast<size_t>(C)] = -3.0;
  EXPECT_FLOAT_EQ(static_cast<float>(K.evaluate(Inputs)),
                  static_cast<float>(std::fmin(4.0, 2.0) + 3.0));
}

TEST(KernelTest, Float32RoundsIntermediates) {
  // 1 + 1e-9 rounds to 1.0f in fp32 but not in fp64.
  Kernel K32 = compileKernel("out = a[0, 0] + 0.000000001;", {"a"}, {},
                             DataType::Float32);
  Kernel K64 = compileKernel("out = a[0, 0] + 0.000000001;", {"a"}, {},
                             DataType::Float64);
  EXPECT_DOUBLE_EQ(K32.evaluate({1.0}), 1.0);
  EXPECT_GT(K64.evaluate({1.0}), 1.0);
}

TEST(KernelTest, CSEDeduplicatesSubexpressions) {
  KernelOptions NoCSE;
  NoCSE.EnableCSE = false;
  Kernel WithCSE =
      compileKernel("out = (a[0,0] + a[0,1]) * (a[0,0] + a[0,1]);");
  Kernel WithoutCSE = compileKernel(
      "out = (a[0,0] + a[0,1]) * (a[0,0] + a[0,1]);", {"a"}, NoCSE);
  EXPECT_LT(WithCSE.instructions().size(), WithoutCSE.instructions().size());
  EXPECT_EQ(WithCSE.census().Additions, 1);
  EXPECT_EQ(WithoutCSE.census().Additions, 2);
  // Semantics identical.
  EXPECT_DOUBLE_EQ(WithCSE.evaluate({2.0, 3.0}), 25.0);
  EXPECT_DOUBLE_EQ(WithoutCSE.evaluate({2.0, 3.0}), 25.0);
}

TEST(KernelTest, ConstantFolding) {
  Kernel K = compileKernel("out = a[0, 0] + (2.0 * 3.0 - 4.0);");
  // The constant subtree folds to a single constant: one add remains.
  OpCensus Census = K.census();
  EXPECT_EQ(Census.Additions, 1);
  EXPECT_EQ(Census.Multiplications, 0);
  EXPECT_DOUBLE_EQ(K.evaluate({1.0}), 3.0);
}

TEST(KernelTest, ConstantFoldingDisabled) {
  KernelOptions NoFold;
  NoFold.EnableConstantFolding = false;
  Kernel K = compileKernel("out = a[0, 0] + 2.0 * 3.0;", {"a"}, NoFold);
  EXPECT_EQ(K.census().Multiplications, 1);
  EXPECT_DOUBLE_EQ(K.evaluate({1.0}), 7.0);
}

TEST(KernelTest, CensusMatchesPaperAccounting) {
  Kernel K = compileKernel(
      "t = a[0,0] - a[0,1];"
      "u = sqrt(t * t);"
      "v = min(u, 1.0);"
      "w = max(v, 0.0);"
      "out = a[0,0] > 0.5 ? w / 2.0 : w + t;");
  OpCensus Census = K.census();
  EXPECT_EQ(Census.Additions, 2);       // sub + add
  EXPECT_EQ(Census.Multiplications, 1); // t * t
  EXPECT_EQ(Census.Divisions, 1);
  EXPECT_EQ(Census.SquareRoots, 1);
  EXPECT_EQ(Census.MinMax, 2);
  EXPECT_EQ(Census.Comparisons, 1);
  EXPECT_EQ(Census.Branches, 1);
  // Paper flop accounting: adds + muls + sqrts (+ divs).
  EXPECT_EQ(Census.flops(), 2 + 1 + 1 + 1);
}

TEST(KernelTest, CriticalPathLatency) {
  LatencyTable Latencies;
  // Chain of two adds: 8 cycles. Balanced tree of two adds: also depends
  // on structure.
  Kernel Chain = compileKernel("out = a[0,0] + a[0,1] + a[0,-1];");
  EXPECT_EQ(Chain.criticalPathLatency(Latencies),
            2 * Latencies.latency(OpCode::Add));

  Kernel Single = compileKernel("out = a[0,0] + a[0,1];");
  EXPECT_EQ(Single.criticalPathLatency(Latencies),
            Latencies.latency(OpCode::Add));
}

TEST(KernelTest, CriticalPathUsesConfiguredLatencies) {
  Kernel K = compileKernel("out = sqrt(a[0,0]) + 1.0;");
  LatencyTable Default;
  LatencyTable Custom;
  Custom.setLatency(OpCode::Sqrt, 100);
  EXPECT_EQ(K.criticalPathLatency(Default),
            Default.latency(OpCode::Sqrt) + Default.latency(OpCode::Add));
  EXPECT_EQ(K.criticalPathLatency(Custom),
            100 + Custom.latency(OpCode::Add));
}

TEST(KernelTest, CriticalPathPicksLongestBranch) {
  // One branch has a sqrt (deep); the other a single add (shallow).
  Kernel K = compileKernel("out = sqrt(a[0,0]) * (a[0,1] + 1.0);");
  LatencyTable Latencies;
  EXPECT_EQ(K.criticalPathLatency(Latencies),
            Latencies.latency(OpCode::Sqrt) +
                Latencies.latency(OpCode::Mul));
}

TEST(KernelTest, InputSlotsAreUnique) {
  Kernel K = compileKernel("out = a[0,0] + a[0,0] * a[0,1];");
  EXPECT_EQ(K.inputs().size(), 2u);
}

TEST(KernelTest, DumpShowsTape) {
  Kernel K = compileKernel("out = a[0, 0] + 1.0;");
  std::string Dump = K.dump();
  EXPECT_NE(Dump.find("input a[0, 0]"), std::string::npos);
  EXPECT_NE(Dump.find("add"), std::string::npos);
  EXPECT_NE(Dump.find("; output"), std::string::npos);
}

TEST(KernelTest, LogicalOperators) {
  Kernel K = compileKernel(
      "out = (a[0,0] > 0.0 && a[0,1] > 0.0) || !(a[0,-1] > 0.0) ? 1.0 : "
      "0.0;");
  int A = K.inputIndex("a", {0, 0});
  int B = K.inputIndex("a", {0, 1});
  int C = K.inputIndex("a", {0, -1});
  std::vector<double> Inputs(3, 1.0);
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 1.0);
  Inputs[static_cast<size_t>(A)] = -1.0;
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 0.0); // and fails, not-c fails
  Inputs[static_cast<size_t>(C)] = -1.0;
  EXPECT_DOUBLE_EQ(K.evaluate(Inputs), 1.0); // !(c>0) holds
  (void)B;
}

TEST(CompiledProgramTest, CompilesAllNodes) {
  StencilProgram P = diamondProgram();
  auto Compiled = CompiledProgram::compile(P.clone());
  ASSERT_TRUE(Compiled) << Compiled.message();
  EXPECT_EQ(Compiled->topologicalOrder().size(), 3u);
  EXPECT_GT(Compiled->kernelFor("B").census().Additions, 0);
}

TEST(CompiledProgramTest, TotalCensusAggregates) {
  StencilProgram P = jacobi3dChain(3, 8, 8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  // Each Jacobi has 6 adds + 1 mul.
  EXPECT_EQ(Compiled->totalCensus().Additions, 18);
  EXPECT_EQ(Compiled->totalCensus().Multiplications, 3);
  EXPECT_EQ(Compiled->totalCensus().flops(), 21);
}

TEST(CompiledProgramTest, RejectsInvalidProgram) {
  StencilProgram P;
  P.IterationSpace = Shape({8});
  EXPECT_FALSE(CompiledProgram::compile(std::move(P)));
}

//===----------------------------------------------------------------------===//
// Algebraic simplification
//===----------------------------------------------------------------------===//

#include "compute/LatencyConfig.h"
#include "compute/Simplify.h"

namespace {

/// Parses, simplifies and prints an expression.
std::string simplified(const std::string &Source) {
  auto E = parseExpression(Source);
  EXPECT_TRUE(E);
  ExprPtr Root = E.takeValue();
  compute::simplifyExpr(Root);
  return Root->toString();
}

} // namespace

TEST(SimplifyTest, AdditiveIdentities) {
  EXPECT_EQ(simplified("a + 0.0"), "a");
  EXPECT_EQ(simplified("0.0 + a"), "a");
  EXPECT_EQ(simplified("a - 0.0"), "a");
}

TEST(SimplifyTest, MultiplicativeIdentities) {
  EXPECT_EQ(simplified("a * 1.0"), "a");
  EXPECT_EQ(simplified("1.0 * a"), "a");
  EXPECT_EQ(simplified("a / 1.0"), "a");
  EXPECT_EQ(simplified("a * 0.0"), "0.0");
  EXPECT_EQ(simplified("0.0 * a"), "0.0");
}

TEST(SimplifyTest, SelectFolding) {
  EXPECT_EQ(simplified("1.0 ? a : b"), "a");
  EXPECT_EQ(simplified("0.0 ? a : b"), "b");
  EXPECT_EQ(simplified("c > 0.0 ? a : a"), "a");
}

TEST(SimplifyTest, DoubleNegation) {
  EXPECT_EQ(simplified("-(-a)"), "a");
}

TEST(SimplifyTest, CascadesToFixpoint) {
  // (a * 1 + 0) * 1 -> a in one call.
  EXPECT_EQ(simplified("(a * 1.0 + 0.0) * 1.0"), "a");
  // Select collapse exposes a multiplicative identity.
  EXPECT_EQ(simplified("(1.0 ? a : b) * 1.0 + 0.0 * c"), "a");
}

TEST(SimplifyTest, LeavesRealWorkAlone) {
  EXPECT_EQ(simplified("a + b"), "(a + b)");
  EXPECT_EQ(simplified("a * 2.0"), "(a * 2.0)");
  EXPECT_EQ(simplified("!(!a)"), "(!(!a))"); // Not idempotent on floats.
}

TEST(SimplifyTest, ReducesOpCensus) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out", "out = a[0, 0] * 1.0 + a[0, 1] * 0.0;");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  StencilNode &Node = P.Nodes[0];
  EXPECT_GT(compute::simplifyNodeCode(Node), 0);
  ASSERT_FALSE(analyzeNode(P, Node)); // Refresh accesses.
  auto Kernel = compute::Kernel::compile(Node);
  ASSERT_TRUE(Kernel);
  EXPECT_EQ(Kernel->census().Multiplications, 0);
  // The a[0,1] access disappeared entirely.
  EXPECT_EQ(Node.Accesses[0].Offsets.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Degenerate tapes: simplified vs unsimplified, across tiers
//===----------------------------------------------------------------------===//
//
// Degenerate shapes — constant-only subexpressions, zero coefficients,
// copy chains — are what the fuzzer's `degenerate` profile generates and
// what the tape compiler's folding/DRE passes rewrite most aggressively.
// Every tier must stay bit-exact with the scalar interpreter on them, and
// simplifying first (compute/Simplify.h) must not change a single bit.

#include "compute/Engine.h"

namespace {

/// Deterministic awkward input value for one cell, keyed by the slot's
/// (field, offset) identity so simplification-induced slot renumbering
/// cannot shift the grid: not exactly representable in float32,
/// sign-varying.
double cellValue(const KernelInput &Slot, int Lane) {
  size_t H = std::hash<std::string>{}(Slot.Field);
  for (int C : Slot.Off)
    H = H * 31 + static_cast<size_t>(C + 7);
  double Salt = static_cast<double>(H % 97);
  return 0.1 + 0.7 * Salt - 1.3 * static_cast<double>(Lane) + 1e-7 * Salt;
}

/// Evaluates \p K under \p Engine at width \p Lanes on the cellValue grid.
std::vector<double> evalTiered(const Kernel &K, KernelEngine Engine,
                               int Lanes) {
  KernelEvaluator E = KernelEvaluator::compile(K, Engine, Lanes);
  std::vector<double> SoA(K.inputs().size() * static_cast<size_t>(Lanes));
  for (size_t Slot = 0; Slot != K.inputs().size(); ++Slot)
    for (int Lane = 0; Lane != Lanes; ++Lane)
      SoA[Slot * static_cast<size_t>(Lanes) + static_cast<size_t>(Lane)] =
          cellValue(K.inputs()[Slot], Lane);
  std::vector<double> Out(static_cast<size_t>(Lanes));
  std::vector<double> Scratch(std::max<size_t>(1, E.scratchDoubles()));
  E.evaluate(SoA.data(), Out.data(), Scratch.data());
  return Out;
}

/// Builds the node, compiles it as-is and after simplification, and
/// asserts all tiers at widths {1, 4} agree bit-exactly on both.
void expectDegenerateParity(const std::string &Source, DataType Type,
                            const std::string &What) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addInput(P, "b");
  addStencil(P, "out", Source, Type);
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P)) << What;
  StencilNode &Node = P.Nodes[0];

  auto Unsimplified = Kernel::compile(Node);
  ASSERT_TRUE(Unsimplified) << What;
  compute::simplifyNodeCode(Node);
  ASSERT_FALSE(analyzeNode(P, Node)) << What;
  auto Simplified = Kernel::compile(Node);
  ASSERT_TRUE(Simplified) << What;

  for (int Lanes : {1, 4}) {
    // The scalar interpreter on the unsimplified kernel is the reference
    // everything else must hit bit-for-bit.
    std::vector<double> Want =
        evalTiered(*Unsimplified, KernelEngine::Scalar, Lanes);
    for (KernelEngine Engine :
         {KernelEngine::Scalar, KernelEngine::Batched,
          KernelEngine::Specialized, KernelEngine::Jit, KernelEngine::Auto})
      for (const Kernel *K : {&*Unsimplified, &*Simplified}) {
        std::vector<double> Got = evalTiered(*K, Engine, Lanes);
        ASSERT_EQ(Got.size(), Want.size());
        for (size_t I = 0; I != Got.size(); ++I)
          ASSERT_EQ(Got[I], Want[I])
              << What << " tier " << kernelEngineName(Engine) << " lanes "
              << Lanes << " (simplified: " << (K == &*Simplified) << ")";
      }
  }
}

} // namespace

TEST(SimplifyTest, DegenerateZeroCoefficientParity) {
  for (DataType Type : {DataType::Float32, DataType::Float64})
    expectDegenerateParity("out = a[0, 0] * 1.0 + b[0, 0] * 0.0;", Type,
                           "zero-coefficient");
}

TEST(SimplifyTest, DegenerateCopyChainParity) {
  for (DataType Type : {DataType::Float32, DataType::Float64})
    expectDegenerateParity(
        "t1 = a[0, 0]; t2 = t1 * 1.0; t3 = t2 + 0.0; out = t3;", Type,
        "copy-chain");
}

TEST(SimplifyTest, DegenerateConstantSelectParity) {
  for (DataType Type : {DataType::Float32, DataType::Float64})
    expectDegenerateParity(
        "c = 1.0 * 4.0; out = (0.0 ? b[0, 0] : a[0, 0]) + c * 0.0;", Type,
        "constant-select");
}

TEST(SimplifyTest, DegenerateConstantOnlyLocalParity) {
  // The local folds to a constant inside the tape; the field read keeps
  // the node legal.
  for (DataType Type : {DataType::Float32, DataType::Float64})
    expectDegenerateParity(
        "c = 2.0 + 3.0; d = c * 0.5; out = a[0, 0] + d - d;", Type,
        "constant-only-local");
}

TEST(KernelEngineTest, JitRoundsPureCopyTapes) {
  // Regression: a pure-copy tape of a float32 node must round its input
  // load to float32 in every tier. The JIT's (double)(float)x round-trip
  // was folded into a plain copy by the host compiler's vectorizer at
  // lanes >= 2 until -fno-tree-vectorize joined the JIT compile flags
  // (found by sf_fuzz; see runCompiler in compute/Jit.cpp).
  Kernel K = compileKernel("out = a[0, 0];");
  ASSERT_EQ(K.elementType(), DataType::Float32);
  for (int Lanes : {1, 2, 4, 8}) {
    KernelEvaluator Jit =
        KernelEvaluator::compile(K, KernelEngine::Jit, Lanes);
    std::vector<double> SoA(static_cast<size_t>(Lanes), 0.1);
    std::vector<double> Out(static_cast<size_t>(Lanes));
    std::vector<double> Scratch(std::max<size_t>(1, Jit.scratchDoubles()));
    Jit.evaluate(SoA.data(), Out.data(), Scratch.data());
    for (double V : Out)
      EXPECT_EQ(V, static_cast<double>(static_cast<float>(0.1)))
          << "lanes " << Lanes;
  }
}

//===----------------------------------------------------------------------===//
// Latency configuration
//===----------------------------------------------------------------------===//

TEST(LatencyConfigTest, OverridesFromJson) {
  auto Table = compute::latencyTableFromJsonText(
      R"({"add": 3, "sqrt": 28, "select": 2})");
  ASSERT_TRUE(Table) << Table.message();
  EXPECT_EQ(Table->latency(compute::OpCode::Add), 3);
  EXPECT_EQ(Table->latency(compute::OpCode::Sqrt), 28);
  EXPECT_EQ(Table->latency(compute::OpCode::Select), 2);
  // Unlisted ops keep defaults.
  compute::LatencyTable Defaults;
  EXPECT_EQ(Table->latency(compute::OpCode::Mul),
            Defaults.latency(compute::OpCode::Mul));
}

TEST(LatencyConfigTest, RejectsUnknownOps) {
  EXPECT_FALSE(compute::latencyTableFromJsonText(R"({"frobnicate": 1})"));
}

TEST(LatencyConfigTest, RejectsBadValues) {
  EXPECT_FALSE(compute::latencyTableFromJsonText(R"({"add": -1})"));
  EXPECT_FALSE(compute::latencyTableFromJsonText(R"({"add": 1.5})"));
  EXPECT_FALSE(compute::latencyTableFromJsonText(R"([1, 2])"));
}

TEST(LatencyConfigTest, ConfiguredLatenciesReachTheModel) {
  // Larger configured latencies increase circuit critical paths and with
  // them the pipeline latency L.
  StencilProgram P = laplace2d(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Slow = compute::latencyTableFromJsonText(R"({"add": 40})");
  ASSERT_TRUE(Slow);
  auto DataflowDefault = analyzeDataflow(*Compiled);
  auto DataflowSlow = analyzeDataflow(*Compiled, *Slow);
  EXPECT_GT(DataflowSlow->PipelineLatency,
            DataflowDefault->PipelineLatency);
}
