//===- tests/runtime_test.cpp - Runtime library tests -------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "runtime/InputData.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace stencilflow;
using namespace stencilflow::testing;

//===----------------------------------------------------------------------===//
// Input materialization
//===----------------------------------------------------------------------===//

TEST(InputDataTest, SourcesProduceExpectedPatterns) {
  Shape Space({4, 4});
  Field F;
  F.Name = "a";
  F.DimensionMask = {true, true};

  F.Source = DataSource::zero();
  for (double V : materializeField(F, Space))
    EXPECT_EQ(V, 0.0);

  F.Source = DataSource::constant(2.5);
  for (double V : materializeField(F, Space))
    EXPECT_EQ(V, 2.5);

  F.Source = DataSource::ramp(0.5);
  std::vector<double> Ramp = materializeField(F, Space);
  EXPECT_EQ(Ramp[0], 0.0);
  EXPECT_EQ(Ramp[4], 2.0);

  F.Source = DataSource::random(7);
  std::vector<double> R1 = materializeField(F, Space);
  std::vector<double> R2 = materializeField(F, Space);
  EXPECT_EQ(R1, R2); // Deterministic.
  F.Source = DataSource::random(8);
  EXPECT_NE(R1, materializeField(F, Space));
}

TEST(InputDataTest, ValuesRoundedToFloat32) {
  Shape Space({8});
  Field F;
  F.Name = "a";
  F.DimensionMask = {true};
  F.Source = DataSource::random(3);
  for (double V : materializeField(F, Space))
    EXPECT_EQ(V, static_cast<double>(static_cast<float>(V)));
}

TEST(InputDataTest, LowerRankFieldSized) {
  Shape Space({4, 8, 16});
  Field F;
  F.Name = "c";
  F.DimensionMask = {true, false, false};
  EXPECT_EQ(materializeField(F, Space).size(), 4u);
}

//===----------------------------------------------------------------------===//
// Reference executor
//===----------------------------------------------------------------------===//

TEST(ReferenceTest, LaplaceInterior) {
  StencilProgram P = laplace2d(8, 8);
  P.Inputs[0].Source = DataSource::ramp(1.0);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = runReference(*Compiled, Inputs);
  ASSERT_TRUE(Result) << Result.message();
  // Laplace of a linear ramp is zero in the interior.
  const std::vector<double> &B = Result->field("b");
  for (int64_t J = 1; J < 7; ++J)
    for (int64_t I = 1; I < 7; ++I)
      EXPECT_NEAR(B[static_cast<size_t>(J * 8 + I)], 0.0, 1e-4);
}

TEST(ReferenceTest, ConstantBoundaryApplied) {
  StencilProgram P;
  P.IterationSpace = Shape({1, 4});
  addInput(P, "a", DataType::Float32, DataSource::constant(1.0));
  addStencil(P, "out", "out = a[0, -1];", DataType::Float32,
             {{"a", BoundaryCondition::constant(9.0)}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Result = runReference(*Compiled, materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result);
  const std::vector<double> &Out = Result->field("out");
  EXPECT_EQ(Out[0], 9.0); // i=0 reads a[-1]: out of bounds.
  EXPECT_EQ(Out[1], 1.0);
}

TEST(ReferenceTest, CopyBoundaryUsesCenter) {
  StencilProgram P;
  P.IterationSpace = Shape({1, 4});
  addInput(P, "a", DataType::Float32, DataSource::ramp(1.0));
  addStencil(P, "out", "out = a[0, -1] + a[0, 0] * 0.0;", DataType::Float32,
             {{"a", BoundaryCondition::copy()}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Result = runReference(*Compiled, materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result);
  const std::vector<double> &Out = Result->field("out");
  EXPECT_EQ(Out[0], 0.0); // Copy: center value a[0] = 0.
  EXPECT_EQ(Out[1], 0.0); // In bounds: a[0] = 0.
  EXPECT_EQ(Out[2], 1.0);
}

TEST(ReferenceTest, ShrinkLeavesBoundaryUntouched) {
  StencilProgram P;
  P.IterationSpace = Shape({4, 4});
  addInput(P, "a", DataType::Float32, DataSource::constant(1.0));
  StencilNode Node;
  Node.Name = "out";
  Node.ShrinkOutput = true;
  auto Code = parseStencilCode(
      "out = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1];");
  ASSERT_TRUE(Code);
  Node.Code = Code.takeValue();
  P.Nodes.push_back(std::move(Node));
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Result = runReference(*Compiled, materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result);
  const std::vector<double> &Out = Result->field("out");
  // Border cells dropped (remain 0), interior computed.
  EXPECT_EQ(Out[0], 0.0);
  EXPECT_EQ(Out[3], 0.0);
  EXPECT_EQ(Out[static_cast<size_t>(1 * 4 + 1)], 4.0);
}

TEST(ReferenceTest, ChainPropagates) {
  StencilProgram P = jacobi3dChain(3, 6, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Result = runReference(*Compiled, materializeInputs(Compiled->program()));
  ASSERT_TRUE(Result);
  // All intermediates present.
  EXPECT_TRUE(Result->Fields.count("a1"));
  EXPECT_TRUE(Result->Fields.count("a2"));
  EXPECT_TRUE(Result->Fields.count("a3"));
}

TEST(ReferenceTest, MissingInputRejected) {
  StencilProgram P = laplace2d(4, 4);
  auto Compiled = CompiledProgram::compile(std::move(P));
  std::map<std::string, std::vector<double>> Empty;
  EXPECT_FALSE(runReference(*Compiled, Empty));
}

TEST(ReferenceTest, WrongSizeInputRejected) {
  StencilProgram P = laplace2d(4, 4);
  auto Compiled = CompiledProgram::compile(std::move(P));
  std::map<std::string, std::vector<double>> Inputs;
  Inputs["a"] = std::vector<double>(7, 0.0);
  EXPECT_FALSE(runReference(*Compiled, Inputs));
}

TEST(ReferenceTest, ParallelMatchesSequential) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    StencilProgram P = randomProgram(Seed);
    auto Compiled = CompiledProgram::compile(std::move(P));
    ASSERT_TRUE(Compiled);
    auto Inputs = materializeInputs(Compiled->program());
    auto Sequential = runReference(*Compiled, Inputs);
    auto Parallel = runReferenceParallel(*Compiled, Inputs, 4);
    ASSERT_TRUE(Sequential);
    ASSERT_TRUE(Parallel);
    for (const auto &[Name, Data] : Sequential->Fields) {
      ValidationReport Report =
          validateField(Name, Parallel->field(Name), Data);
      EXPECT_TRUE(Report.Passed) << "seed " << Seed << ": "
                                 << Report.Summary;
    }
  }
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

TEST(ValidationTest, ExactMatchPasses) {
  std::vector<double> A{1.0, 2.0, 3.0};
  ValidationReport Report = validateField("x", A, A);
  EXPECT_TRUE(Report.Passed);
  EXPECT_EQ(Report.Mismatches, 0);
}

TEST(ValidationTest, MismatchLocated) {
  std::vector<double> A{1.0, 2.0, 3.0};
  std::vector<double> B{1.0, 2.5, 3.0};
  ValidationReport Report = validateField("x", A, B);
  EXPECT_FALSE(Report.Passed);
  EXPECT_EQ(Report.Mismatches, 1);
  EXPECT_EQ(Report.FirstMismatch, 1);
  EXPECT_DOUBLE_EQ(Report.MaxAbsoluteError, 0.5);
}

TEST(ValidationTest, ToleranceAccepted) {
  std::vector<double> A{1.0, 2.0};
  std::vector<double> B{1.0, 2.0 + 1e-9};
  EXPECT_FALSE(validateField("x", A, B).Passed);
  EXPECT_TRUE(validateField("x", A, B, 1e-6).Passed);
}

TEST(ValidationTest, SizeMismatchFails) {
  std::vector<double> A{1.0};
  std::vector<double> B{1.0, 2.0};
  ValidationReport Report = validateField("x", A, B);
  EXPECT_FALSE(Report.Passed);
  EXPECT_NE(Report.Summary.find("size mismatch"), std::string::npos);
}

TEST(ValidationTest, NaNsCompareEqual) {
  double NaN = std::nan("");
  std::vector<double> A{NaN};
  std::vector<double> B{NaN};
  EXPECT_TRUE(validateField("x", A, B).Passed);
}

//===----------------------------------------------------------------------===//
// Iterative (time-loop) execution
//===----------------------------------------------------------------------===//

#include "runtime/Iterate.h"
#include "workloads/Workloads.h"

TEST(IterateTest, SingleStepEqualsPlainRun) {
  StencilProgram P = laplace2d(10, 10);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Inputs = materializeInputs(Compiled->program());
  auto Plain = runReference(*Compiled, Inputs);
  auto Iterated = iterateReference(*Compiled, Inputs, {}, 1);
  ASSERT_TRUE(Plain);
  ASSERT_TRUE(Iterated) << Iterated.message();
  EXPECT_EQ(Iterated->field("b"), Plain->field("b"));
}

TEST(IterateTest, IteratedSingleStepEqualsSpatialChain) {
  // The core equivalence behind the paper's scaling workload: iterating
  // one Jacobi step T times through memory is bit-identical to the
  // spatially chained T-deep program evaluated once (Sec. VIII-C).
  const int Steps = 4;
  StencilProgram Chain = workloads::jacobi3dChain(Steps, 8, 10, 10);
  StencilProgram Single = workloads::jacobi3dChain(1, 8, 10, 10);
  auto CompiledChain = CompiledProgram::compile(std::move(Chain));
  auto CompiledSingle = CompiledProgram::compile(std::move(Single));
  ASSERT_TRUE(CompiledChain);
  ASSERT_TRUE(CompiledSingle);

  auto Inputs = materializeInputs(CompiledChain->program());
  auto ChainResult = runReference(*CompiledChain, Inputs);
  ASSERT_TRUE(ChainResult);

  auto Iterated = iterateReference(
      *CompiledSingle, Inputs, {IterationBinding{"a1", "a0"}}, Steps);
  ASSERT_TRUE(Iterated) << Iterated.message();

  ValidationReport Report =
      validateField("a4", Iterated->field("a1"),
                    ChainResult->field(formatString("a%d", Steps)));
  EXPECT_TRUE(Report.Passed) << Report.Summary;
}

TEST(IterateTest, HdiffTimeLoopRuns) {
  // The production usage pattern: horizontal diffusion applied to the
  // wind/pressure fields every timestep.
  StencilProgram P = workloads::horizontalDiffusion(4, 12, 12);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Inputs = materializeInputs(Compiled->program());
  std::vector<IterationBinding> Bindings = {
      {"u_out", "u_in"}, {"v_out", "v_in"}, {"w_out", "w_in"},
      {"pp_out", "pp_in"}};
  auto Result = iterateReference(*Compiled, Inputs, Bindings, 3);
  ASSERT_TRUE(Result) << Result.message();
  // Three applications differ from one.
  auto Once = runReference(*Compiled, Inputs);
  EXPECT_NE(Result->field("u_out"), Once->field("u_out"));
}

TEST(IterateTest, RejectsBadBindings) {
  StencilProgram P = laplace2d(8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  auto Inputs = materializeInputs(Compiled->program());
  EXPECT_FALSE(iterateReference(*Compiled, Inputs,
                                {IterationBinding{"nope", "a"}}, 2));
  EXPECT_FALSE(iterateReference(*Compiled, Inputs,
                                {IterationBinding{"b", "nope"}}, 2));
  EXPECT_FALSE(iterateReference(*Compiled, Inputs, {}, 0));
}
