//===- tests/common/TestPrograms.h - Shared program builders ------*- C++ -*-==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program builders shared by tests and benchmarks: classic kernels
/// (Laplace, Jacobi, diffusion), the Fig. 4 diamond DAG, linear chains for
/// the scaling experiments, and a random-program generator for
/// property-based tests.
///
//===----------------------------------------------------------------------===//

#ifndef STENCILFLOW_TESTS_COMMON_TESTPROGRAMS_H
#define STENCILFLOW_TESTS_COMMON_TESTPROGRAMS_H

#include "frontend/ProgramLoader.h"
#include "frontend/Parser.h"
#include "frontend/SemanticAnalysis.h"
#include "ir/StencilProgram.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <vector>

namespace stencilflow {
namespace testing {

/// Builds and analyzes a program from parts; asserts success (programs in
/// tests are expected to be well-formed).
inline StencilProgram buildProgram(StencilProgram Program) {
  Error Err = analyzeProgram(Program);
  if (Err) {
    assert(false && "test program failed analysis");
  }
  return Program;
}

/// Adds a stencil node parsed from source to \p Program.
inline void addStencil(StencilProgram &Program, const std::string &Name,
                       const std::string &Source,
                       DataType Type = DataType::Float32,
                       std::map<std::string, BoundaryCondition> Boundaries =
                           {}) {
  StencilNode Node;
  Node.Name = Name;
  Node.Type = Type;
  Expected<StencilCode> Code = parseStencilCode(Source);
  assert(Code && "test stencil failed to parse");
  Node.Code = Code.takeValue();
  Node.Boundaries = std::move(Boundaries);
  Program.Nodes.push_back(std::move(Node));
}

/// Adds a full-rank input field.
inline void addInput(StencilProgram &Program, const std::string &Name,
                     DataType Type = DataType::Float32,
                     DataSource Source = DataSource::random(7)) {
  Field Input;
  Input.Name = Name;
  Input.Type = Type;
  Input.DimensionMask =
      std::vector<bool>(Program.IterationSpace.rank(), true);
  Input.Source = Source;
  Program.Inputs.push_back(std::move(Input));
}

/// 2D Laplace: b = a[N] + a[S] + a[W] + a[E] - 4*a[C] (Fig. 9).
inline StencilProgram laplace2d(int64_t J = 32, int64_t I = 32,
                                int VectorWidth = 1) {
  StencilProgram Program;
  Program.Name = "laplace2d";
  Program.IterationSpace = Shape({J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "a");
  addStencil(Program, "b",
             "b = a[-1, 0] + a[1, 0] + a[0, -1] + a[0, 1] - 4.0 * a[0, 0];",
             DataType::Float32,
             {{"a", BoundaryCondition::constant(0.0)}});
  Program.Outputs = {"b"};
  return buildProgram(std::move(Program));
}

/// Jacobi 3D 7-point: 6 additions + 1 multiplication per cell.
inline std::string jacobi3dSource(const std::string &Out,
                                  const std::string &In) {
  return Out + " = 0.142857 * (" + In + "[0,0,0] + " + In + "[-1,0,0] + " +
         In + "[1,0,0] + " + In + "[0,-1,0] + " + In + "[0,1,0] + " + In +
         "[0,0,-1] + " + In + "[0,0,1]);";
}

/// A chain of \p Length Jacobi 3D stencils (the iterative-stencil scaling
/// workload of Sec. VIII-C: "chaining together long linear sequences of
/// stencils ... analogous to time-tiled iterative stencils").
inline StencilProgram jacobi3dChain(int Length, int64_t K = 16,
                                    int64_t J = 16, int64_t I = 16,
                                    int VectorWidth = 1) {
  assert(Length >= 1);
  StencilProgram Program;
  Program.Name = formatString("jacobi3d_chain_%d", Length);
  Program.IterationSpace = Shape({K, J, I});
  Program.VectorWidth = VectorWidth;
  addInput(Program, "a0");
  for (int Step = 0; Step < Length; ++Step) {
    std::string In = formatString("a%d", Step);
    std::string Out = formatString("a%d", Step + 1);
    addStencil(Program, Out, jacobi3dSource(Out, In), DataType::Float32,
               {{In, BoundaryCondition::constant(0.0)}});
  }
  Program.Outputs = {formatString("a%d", Length)};
  return buildProgram(std::move(Program));
}

/// The Fig. 4 diamond: A feeds both B and C; C also consumes A directly.
/// B's initialization delay forces a delay buffer on the A->C edge.
inline StencilProgram diamondProgram(int64_t J = 24, int64_t I = 24) {
  StencilProgram Program;
  Program.Name = "diamond";
  Program.IterationSpace = Shape({J, I});
  addInput(Program, "in");
  addStencil(Program, "A", "A = in[0, 0] * 2.0;");
  addStencil(Program, "B",
             "B = A[-1, 0] + A[1, 0] + A[0, -1] + A[0, 1];",
             DataType::Float32, {{"A", BoundaryCondition::constant(0.0)}});
  addStencil(Program, "C", "C = A[0, 0] + B[0, 0];");
  Program.Outputs = {"C"};
  return buildProgram(std::move(Program));
}

/// Generates a random, valid stencil DAG for property-based testing.
///
/// The generator produces programs with 1-3 dimensions, multiple inputs,
/// fan-out and fan-in, mixed boundary conditions, ternaries, and varying
/// offset patterns — exercising the full analysis surface.
struct RandomProgramOptions {
  int MinNodes = 2;
  int MaxNodes = 8;
  int MaxInputs = 3;
  int MaxOffset = 2;
  int64_t MaxExtent = 12;
  bool AllowSelect = true;
  int VectorWidth = 1;
};

inline StencilProgram randomProgram(uint64_t Seed,
                                    RandomProgramOptions Options = {}) {
  Random Rng(Seed);
  StencilProgram Program;
  Program.Name = formatString("random_%llu",
                              static_cast<unsigned long long>(Seed));

  size_t Rank = static_cast<size_t>(Rng.nextInRange(1, 3));
  std::vector<int64_t> Extents;
  for (size_t Dim = 0; Dim != Rank; ++Dim) {
    int64_t Extent = Rng.nextInRange(4, Options.MaxExtent);
    Extents.push_back(Extent);
  }
  // Make the innermost extent divisible by the vector width.
  Extents.back() =
      ((Extents.back() + Options.VectorWidth - 1) / Options.VectorWidth) *
      Options.VectorWidth;
  Program.IterationSpace = Shape(Extents);
  Program.VectorWidth = Options.VectorWidth;

  int NumInputs = static_cast<int>(Rng.nextInRange(1, Options.MaxInputs));
  for (int In = 0; In < NumInputs; ++In)
    addInput(Program, formatString("in%d", In), DataType::Float32,
             DataSource::random(Seed * 31 + static_cast<uint64_t>(In)));

  int NumNodes = static_cast<int>(
      Rng.nextInRange(Options.MinNodes, Options.MaxNodes));
  std::vector<std::string> Available;
  for (const Field &Input : Program.Inputs)
    Available.push_back(Input.Name);

  for (int N = 0; N < NumNodes; ++N) {
    std::string Name = formatString("s%d", N);
    // Pick 1-3 distinct upstream fields.
    int NumSources = static_cast<int>(
        Rng.nextInRange(1, std::min<int64_t>(3, Available.size())));
    std::vector<std::string> Sources;
    while (static_cast<int>(Sources.size()) < NumSources) {
      std::string Candidate =
          Available[Rng.nextBounded(Available.size())];
      if (std::find(Sources.begin(), Sources.end(), Candidate) ==
          Sources.end())
        Sources.push_back(Candidate);
    }

    auto randomAccess = [&](const std::string &Field) {
      std::string Access = Field + "[";
      for (size_t Dim = 0; Dim != Rank; ++Dim) {
        if (Dim)
          Access += ", ";
        // Keep offsets small relative to extents.
        int MaxOff = static_cast<int>(
            std::min<int64_t>(Options.MaxOffset,
                              Program.IterationSpace.extent(Dim) / 2 - 1));
        if (MaxOff < 0)
          MaxOff = 0;
        Access += formatString(
            "%d", static_cast<int>(Rng.nextInRange(-MaxOff, MaxOff)));
      }
      return Access + "]";
    };

    // Build an expression summing a few accesses, with optional ternary.
    std::string Source;
    int Terms = static_cast<int>(Rng.nextInRange(2, 5));
    std::string Expr;
    for (int T = 0; T < Terms; ++T) {
      if (T)
        Expr += Rng.nextBool(0.7) ? " + " : " * ";
      const std::string &Field = Sources[Rng.nextBounded(Sources.size())];
      Expr += randomAccess(Field);
    }
    Expr = formatString("0.25 * (%s)", Expr.c_str());
    if (Options.AllowSelect && Rng.nextBool(0.3)) {
      std::string Guard = randomAccess(Sources[0]);
      Expr = formatString("(%s > 0.5) ? (%s) : (%s * 0.5)", Guard.c_str(),
                          Expr.c_str(), Expr.c_str());
    }
    Source = Name + " = " + Expr + ";";

    addStencil(Program, Name, Source, DataType::Float32, {});
    // Boundary conditions may only name fields the stencil actually reads;
    // the random expression does not necessarily use every candidate
    // source, so derive them from the recovered accesses.
    StencilNode &Node = Program.Nodes.back();
    Error AccessErr = analyzeNode(Program, Node);
    assert(!AccessErr && "random stencil failed analysis");
    (void)AccessErr;
    for (const FieldAccesses &FA : Node.Accesses) {
      bool HasCenter = false;
      for (const Offset &Off : FA.Offsets)
        HasCenter |= std::all_of(Off.begin(), Off.end(),
                                 [](int O) { return O == 0; });
      // Copy boundaries require a center access (validated by the IR).
      if (HasCenter && Rng.nextBool(0.5))
        Node.Boundaries[FA.Field] = BoundaryCondition::copy();
      else
        Node.Boundaries[FA.Field] =
            BoundaryCondition::constant(Rng.nextDoubleInRange(-1.0, 1.0));
    }
    Available.push_back(Name);
  }

  // Outputs: every node with no consumer. Need semantic analysis first.
  for (StencilNode &Node : Program.Nodes) {
    Error Err = analyzeNode(Program, Node);
    assert(!Err && "random program node failed analysis");
    (void)Err;
  }
  for (const StencilNode &Node : Program.Nodes)
    if (Program.consumersOf(Node.Name).empty())
      Program.Outputs.push_back(Node.Name);

  return buildProgram(std::move(Program));
}

} // namespace testing
} // namespace stencilflow

#endif // STENCILFLOW_TESTS_COMMON_TESTPROGRAMS_H
