//===- tests/temporal_test.cpp - Temporal blocking tests -----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers temporal blocking (sdfg/TemporalUnroll.h) end to end:
//
//  - the unroll transformation itself: naming, pruning of dead
//    intermediate copies, TimeLoop preservation, legality rules as typed
//    InvalidInput errors, and the `time_loop` JSON round trip;
//  - the parity oracle: unrolling T timesteps and evaluating once is
//    bit-identical to iterating the single-step program T times through
//    off-chip memory (iterateReference), for T in {1, 2, 4, 8} on
//    jacobi2d/jacobi3d/diffusion2d, across serial/parallel engines and
//    the scalar/specialized/jit kernel tiers;
//  - the unrolled graph under the rest of the system: fault plans on
//    multi-device placements, checkpoint/resume, fusion on top of the
//    unroll, and the Session::temporalDegree surface.
//
//===----------------------------------------------------------------------===//

#include "frontend/ProgramLoader.h"
#include "runtime/InputData.h"
#include "runtime/Iterate.h"
#include "runtime/Pipeline.h"
#include "runtime/Session.h"
#include "sdfg/TemporalUnroll.h"
#include "sim/Fault.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <map>
#include <string>
#include <vector>

using namespace stencilflow;

namespace {

/// A per-test scratch directory under the gtest temp root, cleared of any
/// leftover snapshot files from a previous in-process run.
std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "/sf_temporal_" + Name;
  ::mkdir(Dir.c_str(), 0755);
  if (DIR *D = ::opendir(Dir.c_str())) {
    while (dirent *Entry = ::readdir(D)) {
      std::string File = Entry->d_name;
      if (File != "." && File != "..")
        ::unlink((Dir + "/" + File).c_str());
    }
    ::closedir(D);
  }
  return Dir;
}

/// Iterates the single-step \p Program T times through off-chip memory
/// with the reference executor — the parity oracle.
std::map<std::string, std::vector<double>>
referenceAfterSteps(const StencilProgram &Program, int Steps) {
  auto Compiled = CompiledProgram::compile(Program.clone(), {});
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = iterateReference(*Compiled, Inputs,
                                 Compiled->program().TimeLoop, Steps);
  EXPECT_TRUE(Result) << Result.message();
  std::map<std::string, std::vector<double>> Fields;
  for (const std::string &Output : Program.Outputs)
    Fields[Output] = Result->field(Output);
  return Fields;
}

/// Asserts two field vectors are bit-identical (EXPECT_EQ on doubles is
/// exact equality; these workloads produce no NaNs).
void expectBitExact(const std::vector<double> &Got,
                    const std::vector<double> &Want,
                    const std::string &What) {
  ASSERT_EQ(Got.size(), Want.size()) << What;
  for (size_t I = 0; I != Got.size(); ++I)
    ASSERT_EQ(Got[I], Want[I]) << What << " diverges at element " << I;
}

} // namespace

//===----------------------------------------------------------------------===//
// The transformation
//===----------------------------------------------------------------------===//

TEST(TemporalUnrollTest, DegreeOneIsAClone) {
  StencilProgram P = workloads::diffusion2dChain(2, 8, 8);
  auto U = sdfg::unrollTimeSteps(P, 1);
  ASSERT_TRUE(U) << U.message();
  EXPECT_EQ(U->Nodes.size(), P.Nodes.size());
  EXPECT_EQ(U->Outputs, P.Outputs);
  ASSERT_EQ(U->TimeLoop.size(), 1u);
  EXPECT_EQ(U->TimeLoop[0].Output, "a2");
  EXPECT_EQ(U->TimeLoop[0].Input, "a0");
}

TEST(TemporalUnrollTest, ChainsStepsAndKeepsFinalNames) {
  StencilProgram P = workloads::diffusion2dChain(1, 8, 8);
  auto U = sdfg::unrollTimeSteps(P, 4);
  ASSERT_TRUE(U) << U.message();
  // One node per step; the final step keeps the original name so the
  // program outputs (and the TimeLoop boundary) are unchanged.
  ASSERT_EQ(U->Nodes.size(), 4u);
  EXPECT_NE(U->findNode("a1__t0"), nullptr);
  EXPECT_NE(U->findNode("a1__t1"), nullptr);
  EXPECT_NE(U->findNode("a1__t2"), nullptr);
  EXPECT_NE(U->findNode("a1"), nullptr);
  EXPECT_EQ(U->Outputs, P.Outputs);
  ASSERT_EQ(U->TimeLoop.size(), 1u);
  EXPECT_EQ(U->TimeLoop[0].Output, "a1");
  // Step 0 reads the bound input; step 1 reads step 0's output through an
  // on-chip channel instead of off-chip memory.
  EXPECT_NE(U->findNode("a1__t0")->accessesFor("a0"), nullptr);
  EXPECT_NE(U->findNode("a1__t1")->accessesFor("a1__t0"), nullptr);
  EXPECT_EQ(U->findNode("a1__t1")->accessesFor("a0"), nullptr);
  // Boundary conditions composed onto the renamed producer.
  EXPECT_EQ(U->findNode("a1__t1")->Boundaries.count("a1__t0"), 1u);
  EXPECT_FALSE(static_cast<bool>(U->validate()));
}

TEST(TemporalUnrollTest, UnrollMatchesHandWrittenChain) {
  // unroll(diffusion2d x1, 4) computes exactly what diffusion2d x4
  // computes — the chain workloads are hand-unrolled time loops.
  StencilProgram Single = workloads::diffusion2dChain(1, 12, 16);
  StencilProgram Chain = workloads::diffusion2dChain(4, 12, 16);
  auto U = sdfg::unrollTimeSteps(Single, 4);
  ASSERT_TRUE(U) << U.message();

  auto CompiledU = CompiledProgram::compile(U.takeValue(), {});
  auto CompiledC = CompiledProgram::compile(std::move(Chain), {});
  ASSERT_TRUE(CompiledU) << CompiledU.message();
  ASSERT_TRUE(CompiledC) << CompiledC.message();
  auto GotU = runReference(*CompiledU, materializeInputs(CompiledU->program()));
  auto GotC = runReference(*CompiledC, materializeInputs(CompiledC->program()));
  ASSERT_TRUE(GotU) << GotU.message();
  ASSERT_TRUE(GotC) << GotC.message();
  expectBitExact(GotU->field("a1"), GotC->field("a4"), "unroll vs chain");
}

TEST(TemporalUnrollTest, PrunesDeadIntermediateCopies) {
  // An output that is not a binding source only matters in the final
  // step; its earlier copies feed nothing and must be pruned.
  const char *Json = R"({
    "name": "two_outputs",
    "dimensions": [8, 8],
    "inputs": {"a": {"data": {"kind": "random", "seed": 5}}},
    "outputs": ["b", "d"],
    "time_loop": [{"output": "b", "input": "a"}],
    "program": {
      "b": {"computation": "b = 0.25 * (a[0,-1] + a[0,1] + a[-1,0] + a[1,0]);"},
      "d": {"computation": "d = 2.0 * b[0,0];"}
    }
  })";
  auto P = programFromJsonText(Json);
  ASSERT_TRUE(P) << P.message();
  auto U = sdfg::unrollTimeSteps(*P, 3);
  ASSERT_TRUE(U) << U.message();
  // 3 copies of b, but only the final d: 4 nodes, not 6.
  EXPECT_EQ(U->Nodes.size(), 4u);
  EXPECT_EQ(U->findNode("d__t0"), nullptr);
  EXPECT_EQ(U->findNode("d__t1"), nullptr);
  EXPECT_NE(U->findNode("d"), nullptr);
  EXPECT_FALSE(static_cast<bool>(U->validate()));
}

TEST(TemporalUnrollTest, LegalityRulesAreTypedErrors) {
  StencilProgram P = workloads::diffusion2dChain(1, 8, 8);

  auto NonPositive = sdfg::unrollTimeSteps(P, 0);
  ASSERT_FALSE(NonPositive);
  EXPECT_EQ(NonPositive.code(), ErrorCode::InvalidInput);

  StencilProgram NoLoop = P.clone();
  NoLoop.TimeLoop.clear();
  auto Unbound = sdfg::unrollTimeSteps(NoLoop, 2);
  ASSERT_FALSE(Unbound);
  EXPECT_EQ(Unbound.code(), ErrorCode::InvalidInput);

  auto BadSource = sdfg::unrollTimeSteps(P, {{"nope", "a0"}}, 2);
  ASSERT_FALSE(BadSource);
  EXPECT_EQ(BadSource.code(), ErrorCode::InvalidInput);

  auto BadTarget = sdfg::unrollTimeSteps(P, {{"a1", "nope"}}, 2);
  ASSERT_FALSE(BadTarget);
  EXPECT_EQ(BadTarget.code(), ErrorCode::InvalidInput);

  auto Duplicate =
      sdfg::unrollTimeSteps(P, {{"a1", "a0"}, {"a1", "a0"}}, 2);
  ASSERT_FALSE(Duplicate);
  EXPECT_EQ(Duplicate.code(), ErrorCode::InvalidInput);
}

TEST(TemporalUnrollTest, TimeLoopJsonRoundTrip) {
  StencilProgram P = workloads::jacobi2dChain(1, 8, 8);
  auto Back = programFromJsonText(programToJson(P).toString());
  ASSERT_TRUE(Back) << Back.message();
  ASSERT_EQ(Back->TimeLoop.size(), 1u);
  EXPECT_EQ(Back->TimeLoop[0].Output, "a1");
  EXPECT_EQ(Back->TimeLoop[0].Input, "a0");

  // Loop-free programs serialize without the key, so existing program
  // fingerprints (serve/PlanCache.h) are unchanged.
  StencilProgram Free = P.clone();
  Free.TimeLoop.clear();
  EXPECT_EQ(programToJson(Free).toString().find("time_loop"),
            std::string::npos);
}

TEST(TemporalUnrollTest, UnrolledProgramComposesWithHostLoop) {
  // iterate(unroll(P, 2), 2) == iterate(P, 4): the unrolled program keeps
  // its TimeLoop with unchanged boundary names.
  StencilProgram P = workloads::jacobi2dChain(1, 10, 12);
  auto U = sdfg::unrollTimeSteps(P, 2);
  ASSERT_TRUE(U) << U.message();
  auto Twice = referenceAfterSteps(*U, 2);
  auto Four = referenceAfterSteps(P, 4);
  expectBitExact(Twice.at("a1"), Four.at("a1"), "unroll(2) iterated twice");
}

//===----------------------------------------------------------------------===//
// Parity: unrolled dataflow graph vs host loop, engines x tiers
//===----------------------------------------------------------------------===//

namespace {

struct ParityCase {
  const char *Name;
  StencilProgram Program;
};

std::vector<ParityCase> parityWorkloads() {
  std::vector<ParityCase> Cases;
  Cases.push_back({"jacobi2d", workloads::jacobi2dChain(1, 12, 16)});
  Cases.push_back({"jacobi3d", workloads::jacobi3dChain(1, 4, 6, 8)});
  Cases.push_back({"diffusion2d", workloads::diffusion2dChain(1, 12, 16)});
  return Cases;
}

/// Runs \p Program through the pipeline with TemporalDegree \p T under
/// \p Engine/\p Tier and asserts the simulated outputs are bit-identical
/// to iterating the single-step program T times.
void expectTemporalParity(const StencilProgram &Program, int T,
                          sim::SimEngine Engine,
                          compute::KernelEngine Tier,
                          const std::string &What) {
  PipelineOptions Options;
  Options.TemporalDegree = T;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Engine = Engine;
  Options.Simulator.KernelExec = Tier;
  auto Result = runPipeline(Program.clone(), Options);
  ASSERT_TRUE(Result) << What << ": " << Result.message();
  EXPECT_TRUE(Result->ValidationPassed) << What;
  auto Want = referenceAfterSteps(Program, T);
  for (const std::string &Output : Program.Outputs)
    expectBitExact(Result->Simulation.Outputs.at(Output), Want.at(Output),
                   What + " output " + Output);
}

} // namespace

TEST(TemporalParityTest, AllDegreesBothEnginesScalarTier) {
  for (ParityCase &C : parityWorkloads())
    for (int T : {1, 2, 4, 8})
      for (sim::SimEngine Engine :
           {sim::SimEngine::Serial, sim::SimEngine::Parallel}) {
        std::string What =
            std::string(C.Name) + " T=" + std::to_string(T) +
            (Engine == sim::SimEngine::Parallel ? " parallel" : " serial");
        expectTemporalParity(C.Program, T, Engine,
                             compute::KernelEngine::Scalar, What);
      }
}

TEST(TemporalParityTest, AllDegreesSpecializedTier) {
  for (ParityCase &C : parityWorkloads())
    for (int T : {1, 2, 4, 8})
      expectTemporalParity(C.Program, T, sim::SimEngine::Serial,
                           compute::KernelEngine::Specialized,
                           std::string(C.Name) + " T=" + std::to_string(T) +
                               " specialized");
}

TEST(TemporalParityTest, JitAndAutoTiers) {
  // The JIT tier falls back to Specialized without a host compiler; either
  // way the outputs must stay bit-exact.
  for (ParityCase &C : parityWorkloads())
    for (compute::KernelEngine Tier :
         {compute::KernelEngine::Jit, compute::KernelEngine::Auto})
      expectTemporalParity(C.Program, 4, sim::SimEngine::Serial, Tier,
                           std::string(C.Name) + " T=4 jit/auto");
}

TEST(TemporalParityTest, ParallelSpecializedAndBatchedTiers) {
  for (ParityCase &C : parityWorkloads()) {
    expectTemporalParity(C.Program, 4, sim::SimEngine::Parallel,
                         compute::KernelEngine::Specialized,
                         std::string(C.Name) + " T=4 parallel specialized");
    expectTemporalParity(C.Program, 4, sim::SimEngine::Serial,
                         compute::KernelEngine::Batched,
                         std::string(C.Name) + " T=4 batched");
  }
}

TEST(TemporalParityTest, FusionComposesWithUnroll) {
  // Unroll first, fuse second: the fused unrolled graph still matches the
  // host loop (fused programs compute through the halo, so compare the
  // pipeline's own interior-tolerant validation plus exact centers via
  // the default zero tolerance on these boundary-free comparisons).
  StencilProgram P = workloads::jacobi2dChain(1, 12, 16);
  PipelineOptions Options;
  Options.TemporalDegree = 4;
  Options.FuseStencils = true;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Tolerance = 1e-6; // Fused halo cells differ at the boundary.
  auto Result = runPipeline(P.clone(), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  // Fusion collapsed the unrolled chain.
  EXPECT_LT(Result->Compiled.program().Nodes.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Resilience, checkpointing, and the Session surface
//===----------------------------------------------------------------------===//

TEST(TemporalResilienceTest, FaultPlanOnUnrolledMultiDeviceRun) {
  // A 4-deep unrolled diffusion chain split across two devices, with
  // payload corruption on the remote stream and a memory brownout: the
  // reliable transport absorbs the faults and the result still matches
  // the host loop bit-exactly.
  StencilProgram P = workloads::diffusion2dChain(1, 12, 16);

  sim::FaultPlan Plan;
  Plan.Seed = 99;
  sim::FaultEvent Corrupt;
  Corrupt.Kind = sim::FaultKind::PayloadCorruption;
  Corrupt.Probability = 0.25;
  Plan.Events.push_back(Corrupt);
  sim::FaultEvent Brownout;
  Brownout.Kind = sim::FaultKind::MemoryBrownout;
  Brownout.Device = 0;
  Brownout.StartCycle = 16;
  Brownout.EndCycle = 128;
  Brownout.Factor = 0.5;
  Plan.Events.push_back(Brownout);

  PipelineOptions Options;
  Options.TemporalDegree = 4;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Faults = &Plan;
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs = 9 * 2; // Two diffusion nodes each.
  Options.Partitioning.MaxDevices = 4;
  auto Result = runPipeline(P.clone(), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Placement.numDevices(), 2u);
  EXPECT_TRUE(Result->ValidationPassed);
  auto Want = referenceAfterSteps(P, 4);
  expectBitExact(Result->Simulation.Outputs.at("a1"), Want.at("a1"),
                 "faulted unrolled run");
}

TEST(TemporalResilienceTest, CheckpointResumeOfUnrolledRun) {
  // Checkpoint an unrolled run, then resume a fresh pipeline run from the
  // snapshot directory: the resumed run skips completed cycles and its
  // outputs stay bit-exact vs the host loop.
  StencilProgram P = workloads::jacobi2dChain(1, 12, 16);
  PipelineOptions Options;
  Options.TemporalDegree = 4;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.CheckpointDir = freshDir("unrolled");
  Options.Simulator.CheckpointEveryCycles = 32;
  Options.Simulator.CheckpointKeep = 1000;
  auto First = runPipeline(P.clone(), Options);
  ASSERT_TRUE(First) << First.message();
  ASSERT_TRUE(First->ValidationPassed);

  PipelineOptions Resume;
  Resume.TemporalDegree = 4;
  Resume.Simulator.UnconstrainedMemory = true;
  Resume.ResumeFrom = Options.Simulator.CheckpointDir;
  auto Second = runPipeline(P.clone(), Resume);
  ASSERT_TRUE(Second) << Second.message();
  EXPECT_TRUE(Second->ValidationPassed);
  EXPECT_GT(Second->Recovery.CyclesSavedByCheckpoint, 0);
  EXPECT_EQ(Second->Simulation.Stats.Cycles, First->Simulation.Stats.Cycles);
  auto Want = referenceAfterSteps(P, 4);
  expectBitExact(Second->Simulation.Outputs.at("a1"), Want.at("a1"),
                 "resumed unrolled run");
}

TEST(TemporalSessionTest, TemporalDegreeSetterRuns) {
  Session S = Session::fromProgram(workloads::jacobi2dChain(1, 12, 16));
  S.temporalDegree(4).unconstrainedMemory(true);
  auto Result = S.run();
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Compiled.program().Nodes.size(), 4u);
  auto Want = referenceAfterSteps(S.program(), 4);
  expectBitExact(Result->Simulation.Outputs.at("a1"), Want.at("a1"),
                 "session temporal run");
}

TEST(TemporalSessionTest, DegreeWithoutTimeLoopIsTypedError) {
  StencilProgram P = workloads::jacobi2dChain(1, 8, 8);
  P.TimeLoop.clear();
  Session S = Session::fromProgram(std::move(P));
  S.temporalDegree(2).unconstrainedMemory(true);
  auto Result = S.run();
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::InvalidInput);
}

TEST(TemporalSessionTest, HorizontalDiffusionUnrollsAcrossItsFourBindings) {
  // The COSMO case study feeds four outputs back into four inputs; the
  // unrolled graph chains all of them and stays bit-exact.
  StencilProgram P = workloads::horizontalDiffusion(2, 8, 8);
  PipelineOptions Options;
  Options.TemporalDegree = 2;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result = runPipeline(P.clone(), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  auto Want = referenceAfterSteps(P, 2);
  for (const std::string &Output : P.Outputs)
    expectBitExact(Result->Simulation.Outputs.at(Output), Want.at(Output),
                   "hdiff T=2 output " + Output);
}
