//===- tests/fault_test.cpp - Fault injection and resilience tests -------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the resilience subsystem end to end:
//
//  - the ErrorCode taxonomy (name round-trips, distinct exit codes);
//  - FaultPlan validation, JSON round-trips, and deterministic corruption;
//  - FailureReport rendering and JSON round-trips;
//  - the Fig. 4 diamond deadlock as a structured report regression;
//  - the reliable transport: zero-overhead parity with faults disabled,
//    bit-exact completion under transient corruption, bounded-retransmit
//    exhaustion, detection-only aborts;
//  - brownouts, outages, the progress watchdog, device loss, and the
//    pipeline's graceful-degradation retry.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "core/Partitioner.h"
#include "runtime/InputData.h"
#include "runtime/Pipeline.h"
#include "runtime/ReferenceExecutor.h"
#include "runtime/Validation.h"
#include "sim/Fault.h"
#include "sim/Machine.h"
#include "support/Error.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <set>

using namespace stencilflow;
using namespace stencilflow::sim;
using namespace stencilflow::testing;

//===----------------------------------------------------------------------===//
// ErrorCode taxonomy
//===----------------------------------------------------------------------===//

TEST(ErrorCodeTest, NamesRoundTrip) {
  std::set<std::string> Names;
  for (int I = 0; I != NumErrorCodes; ++I) {
    ErrorCode Code = static_cast<ErrorCode>(I);
    std::string Name = errorCodeName(Code);
    EXPECT_TRUE(Names.insert(Name).second) << "duplicate name " << Name;
    auto Back = errorCodeFromName(Name);
    ASSERT_TRUE(Back.has_value()) << Name;
    EXPECT_EQ(*Back, Code);
  }
  EXPECT_FALSE(errorCodeFromName("no-such-code").has_value());
}

TEST(ErrorCodeTest, ExitCodesDistinguishResilienceFailures) {
  // CI scripts branch on the exit code; each resilience outcome must map
  // to its own nonzero value.
  std::set<int> Exits;
  for (ErrorCode Code :
       {ErrorCode::ValidationMismatch, ErrorCode::Deadlock,
        ErrorCode::CycleLimit, ErrorCode::DeviceLost,
        ErrorCode::LinkFailure, ErrorCode::DataCorruption,
        ErrorCode::Starvation}) {
    int Exit = exitCodeFor(Code);
    EXPECT_NE(Exit, 0) << errorCodeName(Code);
    EXPECT_TRUE(Exits.insert(Exit).second)
        << "exit code collision for " << errorCodeName(Code);
  }
  // Unclassified failures share the generic exit code 1.
  EXPECT_EQ(exitCodeFor(ErrorCode::Unknown), 1);
  EXPECT_EQ(exitCodeFor(ErrorCode::InvalidInput), 1);
}

TEST(ErrorCodeTest, ErrorsCarryCodesThroughContext) {
  Error Err = Error::failure(ErrorCode::DeviceLost, "node 2 gone");
  EXPECT_EQ(Err.code(), ErrorCode::DeviceLost);
  Err.addContext("simulation");
  EXPECT_EQ(Err.code(), ErrorCode::DeviceLost);
  EXPECT_NE(Err.message().find("node 2 gone"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// FaultPlan
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, NamesRoundTrip) {
  for (int I = 0; I != NumFaultKinds; ++I) {
    FaultKind Kind = static_cast<FaultKind>(I);
    auto Back = faultKindFromName(faultKindName(Kind));
    ASSERT_TRUE(Back.has_value()) << faultKindName(Kind);
    EXPECT_EQ(*Back, Kind);
  }
  EXPECT_FALSE(faultKindFromName("meteor-strike").has_value());
}

TEST(FaultPlanTest, ValidateRejectsBadEvents) {
  FaultPlan Plan;
  FaultEvent Bad;
  Bad.Kind = FaultKind::LinkDegrade;
  Bad.StartCycle = 100;
  Bad.EndCycle = 50; // Window ends before it starts.
  Plan.Events.push_back(Bad);
  Error Err = Plan.validate();
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.code(), ErrorCode::InvalidInput);

  Plan.Events.clear();
  FaultEvent BadFactor;
  BadFactor.Kind = FaultKind::MemoryBrownout;
  BadFactor.Factor = 1.5;
  Plan.Events.push_back(BadFactor);
  EXPECT_TRUE(static_cast<bool>(Plan.validate()));

  Plan.Events.clear();
  FaultEvent Good;
  Good.Kind = FaultKind::PayloadCorruption;
  Good.Probability = 0.25;
  Good.StartCycle = 0;
  Good.EndCycle = 1000;
  Plan.Events.push_back(Good);
  EXPECT_FALSE(static_cast<bool>(Plan.validate()));
}

TEST(FaultPlanTest, JsonRoundTrip) {
  FaultPlan Plan;
  Plan.Seed = 0xDEADBEEFu;
  FaultEvent Degrade;
  Degrade.Kind = FaultKind::LinkDegrade;
  Degrade.StartCycle = 10;
  Degrade.EndCycle = 200;
  Degrade.Hop = 1;
  Degrade.Factor = 0.25;
  Plan.Events.push_back(Degrade);
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.StartCycle = 0;
  Corrupt.EndCycle = 5000;
  Corrupt.Probability = 0.125;
  Plan.Events.push_back(Corrupt);
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.StartCycle = 999;
  Death.Device = 3;
  Plan.Events.push_back(Death);

  auto Back = FaultPlan::fromJson(Plan.toJson());
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->Seed, Plan.Seed);
  ASSERT_EQ(Back->Events.size(), Plan.Events.size());
  for (size_t I = 0; I != Plan.Events.size(); ++I) {
    EXPECT_EQ(Back->Events[I].Kind, Plan.Events[I].Kind);
    EXPECT_EQ(Back->Events[I].StartCycle, Plan.Events[I].StartCycle);
    EXPECT_EQ(Back->Events[I].EndCycle, Plan.Events[I].EndCycle);
    EXPECT_EQ(Back->Events[I].Device, Plan.Events[I].Device);
    EXPECT_EQ(Back->Events[I].Hop, Plan.Events[I].Hop);
    EXPECT_EQ(Back->Events[I].Factor, Plan.Events[I].Factor);
    EXPECT_EQ(Back->Events[I].Probability, Plan.Events[I].Probability);
  }
  EXPECT_EQ(Back->earliestDeviceFailure(), 999);
  EXPECT_EQ(Back->firstFailedDevice(1000), 3);
  EXPECT_EQ(Back->firstFailedDevice(998), -1);
}

TEST(FaultPlanTest, FromJsonTextRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::fromJsonText("{"));
  EXPECT_FALSE(
      FaultPlan::fromJsonText(R"({"events": [{"kind": "nope"}]})"));
  auto Empty = FaultPlan::fromJsonText(R"({"seed": 7, "events": []})");
  ASSERT_TRUE(Empty) << Empty.message();
  EXPECT_EQ(Empty->Seed, 7u);
  EXPECT_TRUE(Empty->empty());
}

TEST(FaultPlanTest, CorruptionIsDeterministicAndSeeded) {
  FaultPlan Plan;
  Plan.Seed = 42;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 0.5;
  Plan.Events.push_back(Corrupt);

  FaultPlan Other = Plan;
  Other.Seed = 43;

  int Corrupted = 0, Differs = 0;
  for (int64_t Seq = 0; Seq != 256; ++Seq) {
    bool A = Plan.corruptsTransmission(100, 0, Seq, 0, 0, 1);
    bool B = Plan.corruptsTransmission(100, 0, Seq, 0, 0, 1);
    EXPECT_EQ(A, B); // Same key, same decision, every time.
    Corrupted += A;
    Differs += A != Other.corruptsTransmission(100, 0, Seq, 0, 0, 1);
  }
  // A fair coin: roughly half corrupted, and the seed matters.
  EXPECT_GT(Corrupted, 64);
  EXPECT_LT(Corrupted, 192);
  EXPECT_GT(Differs, 0);

  // The retry nonce re-rolls the coin: some first-attempt corruptions
  // succeed on retransmission (otherwise Go-Back-N could never recover).
  int Recovered = 0;
  for (int64_t Seq = 0; Seq != 256; ++Seq)
    if (Plan.corruptsTransmission(100, 0, Seq, 0, 0, 1) &&
        !Plan.corruptsTransmission(100, 0, Seq, 1, 0, 1))
      ++Recovered;
  EXPECT_GT(Recovered, 0);
}

TEST(FaultPlanTest, WindowedFactors) {
  FaultPlan Plan;
  FaultEvent Brownout;
  Brownout.Kind = FaultKind::MemoryBrownout;
  Brownout.Device = 1;
  Brownout.StartCycle = 100;
  Brownout.EndCycle = 200;
  Brownout.Factor = 0.5;
  Plan.Events.push_back(Brownout);
  FaultEvent Outage;
  Outage.Kind = FaultKind::LinkOutage;
  Outage.Hop = 0;
  Outage.StartCycle = 50;
  Outage.EndCycle = 60;
  Plan.Events.push_back(Outage);

  EXPECT_EQ(Plan.memoryFactor(1, 99), 1.0);
  EXPECT_EQ(Plan.memoryFactor(1, 150), 0.5);
  EXPECT_EQ(Plan.memoryFactor(1, 200), 1.0); // End is exclusive.
  EXPECT_EQ(Plan.memoryFactor(0, 150), 1.0); // Wrong device.
  EXPECT_TRUE(Plan.memoryBrownoutAt(1, 150));
  EXPECT_FALSE(Plan.memoryBrownoutAt(1, 99));
  EXPECT_EQ(Plan.linkFactor(0, 55), 0.0);
  EXPECT_EQ(Plan.linkFactor(0, 60), 1.0);
  EXPECT_EQ(Plan.linkFactor(1, 55), 1.0); // Wrong hop.
}

//===----------------------------------------------------------------------===//
// FailureReport
//===----------------------------------------------------------------------===//

TEST(FailureReportTest, JsonRoundTrip) {
  FailureReport Report;
  Report.Code = ErrorCode::Deadlock;
  Report.Cycle = 1234;
  Report.Component = "stencil_b";
  Report.DominantCause = StallCause::OutputBlocked;
  Report.FailedDevice = -1;
  FailureComponent FC;
  FC.Name = "stencil_b";
  FC.Kind = "unit";
  FC.Device = 0;
  FC.Cause = StallCause::OutputBlocked;
  FC.StallCycles = 1200;
  FC.Progress = 17;
  FC.Total = 1024;
  Report.Components.push_back(FC);
  FailureChannel Ch;
  Ch.Name = "a->b";
  Ch.Occupancy = 4;
  Ch.Capacity = 4;
  Ch.Full = true;
  Report.Channels.push_back(Ch);

  auto Back = FailureReport::fromJsonText(Report.toJson());
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->Code, Report.Code);
  EXPECT_EQ(Back->Cycle, Report.Cycle);
  EXPECT_EQ(Back->Component, Report.Component);
  EXPECT_EQ(Back->DominantCause, Report.DominantCause);
  EXPECT_EQ(Back->FailedDevice, Report.FailedDevice);
  ASSERT_EQ(Back->Components.size(), 1u);
  EXPECT_EQ(Back->Components[0].Name, "stencil_b");
  EXPECT_EQ(Back->Components[0].Cause, StallCause::OutputBlocked);
  EXPECT_EQ(Back->Components[0].Progress, 17);
  ASSERT_EQ(Back->Channels.size(), 1u);
  EXPECT_EQ(Back->Channels[0].Name, "a->b");
  EXPECT_TRUE(Back->Channels[0].Full);

  // The rendered form keeps the grep-able markers.
  std::string Text = Report.render();
  EXPECT_NE(Text.find("deadlock"), std::string::npos);
  EXPECT_NE(Text.find("[FULL]"), std::string::npos);
}

TEST(FailureReportTest, Fig4DiamondProducesStructuredDeadlock) {
  // The Fig. 4 regression: undersized channels on the diamond deadlock,
  // and the structured report names the full channel and the blocked
  // component with its attributed stall cause.
  StencilProgram P = diamondProgram(32, 32);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.ClampChannelsToMinimum = true;
  Config.MinChannelDepth = 4;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::Deadlock);
  EXPECT_EQ(exitCodeFor(Result.code()), 3);

  // The structured report travels with the failure itself.
  const FailureReport &Failure = Result.error().report();
  EXPECT_EQ(Failure.Code, ErrorCode::Deadlock);
  EXPECT_FALSE(Failure.Component.empty());
  EXPECT_FALSE(Failure.Components.empty());
  ASSERT_FALSE(Failure.Channels.empty());
  // At least one adjacent channel is full at visible occupancy == capacity
  // — the cyclic resource dependency the paper's buffer analysis removes.
  bool AnyFull = false;
  for (const FailureChannel &Ch : Failure.Channels) {
    EXPECT_LE(Ch.Occupancy, Ch.Capacity);
    if (Ch.Full) {
      AnyFull = true;
      EXPECT_EQ(Ch.Occupancy, Ch.Capacity);
    }
  }
  EXPECT_TRUE(AnyFull);
  // The structured report survives a JSON round trip.
  auto Back = FailureReport::fromJsonText(Failure.toJson());
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->Code, ErrorCode::Deadlock);
  EXPECT_EQ(Back->Channels.size(), Failure.Channels.size());
}

//===----------------------------------------------------------------------===//
// Reliable remote streams
//===----------------------------------------------------------------------===//

namespace {

/// Builds a multi-device partition of a Jacobi chain by budgeting
/// \p SplitAt nodes per device (7 DSPs per scalar node).
Partition makeSplitPartition(const CompiledProgram &Compiled,
                             const DataflowAnalysis &Dataflow, int SplitAt) {
  PartitionOptions Options;
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs = 7 * Compiled.program().VectorWidth * SplitAt;
  Options.MaxDevices = 64;
  auto Result = partitionProgram(Compiled, Dataflow, Options);
  EXPECT_TRUE(Result) << Result.message();
  return Result.takeValue();
}

struct TwoDeviceRun {
  Expected<SimResult, SimFailure> Result =
      Expected<SimResult, SimFailure>(SimResult{});
  std::map<std::string, std::vector<double>> Reference;
  FailureReport Failure;
};

/// Runs a two-device Jacobi chain under \p Config, returning the result
/// plus the reference-executor outputs.
TwoDeviceRun runTwoDeviceChain(SimConfig Config) {
  TwoDeviceRun Run;
  StencilProgram P = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(std::move(P));
  EXPECT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  Partition Placement = makeSplitPartition(*Compiled, *Dataflow, 3);
  EXPECT_EQ(Placement.numDevices(), 2u);
  Config.UnconstrainedMemory = true;
  auto M = Machine::build(*Compiled, *Dataflow, &Placement, Config);
  EXPECT_TRUE(M) << M.message();
  auto Inputs = materializeInputs(Compiled->program());
  Run.Result = M->run(Inputs);
  if (!Run.Result)
    Run.Failure = Run.Result.error().report();
  auto Reference = runReference(*Compiled, Inputs);
  EXPECT_TRUE(Reference);
  for (const std::string &Output : Compiled->program().Outputs)
    Run.Reference[Output] = Reference->field(Output);
  return Run;
}

} // namespace

TEST(ReliableStreamTest, EmptyPlanIsCycleAndBitExact) {
  // Attaching an empty plan switches the remote streams to the reliable
  // transport; with no faults scheduled, the run must be *identical* to
  // the plain transport — same cycle count, same bits, same peak
  // occupancies. This is the zero-overhead guarantee.
  SimConfig Plain;
  TwoDeviceRun Baseline = runTwoDeviceChain(Plain);
  ASSERT_TRUE(Baseline.Result) << Baseline.Result.message();

  FaultPlan Empty;
  SimConfig WithPlan;
  WithPlan.Faults = &Empty;
  TwoDeviceRun Reliable = runTwoDeviceChain(WithPlan);
  ASSERT_TRUE(Reliable.Result) << Reliable.Result.message();

  EXPECT_EQ(Reliable.Result->Stats.Cycles, Baseline.Result->Stats.Cycles);
  EXPECT_EQ(Reliable.Result->Termination, TerminationReason::Completed);
  for (const auto &[Name, Values] : Baseline.Result->Outputs) {
    const auto &Other = Reliable.Result->Outputs.at(Name);
    ASSERT_EQ(Other.size(), Values.size());
    for (size_t I = 0; I != Values.size(); ++I)
      EXPECT_EQ(Other[I], Values[I]) << Name << "[" << I << "]";
  }
  for (const auto &[Name, Peak] :
       Baseline.Result->Stats.ChannelPeakOccupancy)
    EXPECT_EQ(Reliable.Result->Stats.ChannelPeakOccupancy.at(Name), Peak)
        << Name;
  // No faults, no retransmissions.
  for (const auto &[Name, Link] : Reliable.Result->Stats.Links) {
    EXPECT_EQ(Link.Retransmissions, 0) << Name;
    EXPECT_EQ(Link.CorruptedVectors, 0) << Name;
    EXPECT_EQ(Link.Transmissions, Link.Delivered) << Name;
  }
}

TEST(ReliableStreamTest, TransientCorruptionIsAbsorbedBitExactly) {
  FaultPlan Plan;
  Plan.Seed = 7;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 0.2;
  Corrupt.StartCycle = 0;
  Corrupt.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Corrupt);

  SimConfig Config;
  Config.Faults = &Plan;
  TwoDeviceRun Run = runTwoDeviceChain(Config);
  ASSERT_TRUE(Run.Result) << Run.Result.message();
  EXPECT_EQ(Run.Result->Termination, TerminationReason::CompletedDegraded);

  // Bit-exact despite the in-flight corruption: the checksums caught every
  // bad vector and Go-Back-N replayed it.
  for (const auto &[Name, Values] : Run.Reference) {
    const auto &Sim = Run.Result->Outputs.at(Name);
    ASSERT_EQ(Sim.size(), Values.size());
    for (size_t I = 0; I != Values.size(); ++I)
      EXPECT_EQ(Sim[I], Values[I]) << Name << "[" << I << "]";
  }

  // Counter consistency: every transmission is either delivered or
  // replayed, and every NACK was triggered by a corrupted arrival.
  int64_t TotalRetransmissions = 0, TotalCorrupted = 0;
  for (const auto &[Name, Link] : Run.Result->Stats.Links) {
    EXPECT_EQ(Link.Transmissions - Link.Retransmissions, Link.Delivered)
        << Name;
    EXPECT_LE(Link.Nacks, Link.CorruptedVectors) << Name;
    TotalRetransmissions += Link.Retransmissions;
    TotalCorrupted += Link.CorruptedVectors;
  }
  EXPECT_GT(TotalCorrupted, 0);
  EXPECT_GT(TotalRetransmissions, 0);
}

TEST(ReliableStreamTest, PermanentCorruptionExhaustsRetransmitBudget) {
  FaultPlan Plan;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 1.0; // Every transmission dies in flight.
  Plan.Events.push_back(Corrupt);

  SimConfig Config;
  Config.Faults = &Plan;
  Config.MaxRetransmitAttempts = 4;
  TwoDeviceRun Run = runTwoDeviceChain(Config);
  ASSERT_FALSE(Run.Result);
  EXPECT_EQ(Run.Result.code(), ErrorCode::LinkFailure);
  EXPECT_EQ(exitCodeFor(Run.Result.code()), 6);
  EXPECT_EQ(Run.Failure.Code, ErrorCode::LinkFailure);
  EXPECT_FALSE(Run.Failure.FailedChannel.empty());
}

TEST(ReliableStreamTest, DetectionOnlyModeAbortsOnFirstCorruption) {
  FaultPlan Plan;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 1.0;
  Plan.Events.push_back(Corrupt);

  SimConfig Config;
  Config.Faults = &Plan;
  Config.ReliableStreams = false; // Detect, don't recover.
  TwoDeviceRun Run = runTwoDeviceChain(Config);
  ASSERT_FALSE(Run.Result);
  EXPECT_EQ(Run.Result.code(), ErrorCode::DataCorruption);
  EXPECT_EQ(exitCodeFor(Run.Result.code()), 7);
}

TEST(ReliableStreamTest, LinkDegradeSlowsButStaysCorrect) {
  FaultPlan Plan;
  FaultEvent Degrade;
  Degrade.Kind = FaultKind::LinkDegrade;
  Degrade.Hop = -1;
  Degrade.Factor = 0.1;
  Degrade.StartCycle = 0;
  Degrade.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Degrade);

  SimConfig Baseline;
  TwoDeviceRun Fast = runTwoDeviceChain(Baseline);
  ASSERT_TRUE(Fast.Result);

  SimConfig Config;
  Config.Faults = &Plan;
  // At a tenth of the hop bandwidth (~3.3 B/cycle against an 8 B/cycle
  // stream) the crossing link cannot sustain one vector per cycle, so it
  // throttles the pipeline — but every bit still lands.
  TwoDeviceRun Slow = runTwoDeviceChain(Config);
  ASSERT_TRUE(Slow.Result) << Slow.Result.message();
  EXPECT_GT(Slow.Result->Stats.Cycles, Fast.Result->Stats.Cycles);
  for (const auto &[Name, Values] : Slow.Reference) {
    const auto &Sim = Slow.Result->Outputs.at(Name);
    for (size_t I = 0; I != Values.size(); ++I)
      ASSERT_EQ(Sim[I], Values[I]) << Name << "[" << I << "]";
  }
}

//===----------------------------------------------------------------------===//
// Watchdog, brownout, device loss
//===----------------------------------------------------------------------===//

TEST(WatchdogTest, PermanentOutageReportsStarvation) {
  // A permanent link outage starves the downstream device: upstream
  // keeps local progress for a while, so this is livelock/starvation,
  // not a deadlock — and only the watchdog can call it.
  FaultPlan Plan;
  FaultEvent Outage;
  Outage.Kind = FaultKind::LinkOutage;
  Outage.Hop = -1;
  Outage.StartCycle = 0;
  Outage.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Outage);

  SimConfig Config;
  Config.Faults = &Plan;
  Config.StallTimeoutCycles = 2048;
  TwoDeviceRun Run = runTwoDeviceChain(Config);
  ASSERT_FALSE(Run.Result);
  EXPECT_EQ(Run.Result.code(), ErrorCode::Starvation);
  EXPECT_EQ(Run.Failure.Code, ErrorCode::Starvation);
  EXPECT_FALSE(Run.Failure.Components.empty());
}

TEST(WatchdogTest, MemoryBrownoutSlowsButCompletes) {
  StencilProgram P = laplace2d(24, 24);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);

  SimConfig Plain;
  Plain.UnconstrainedMemory = true;
  auto MFast = Machine::build(*Compiled, *Dataflow, nullptr, Plain);
  ASSERT_TRUE(MFast);
  auto Inputs = materializeInputs(Compiled->program());
  auto Fast = MFast->run(Inputs);
  ASSERT_TRUE(Fast);

  FaultPlan Plan;
  FaultEvent Brownout;
  Brownout.Kind = FaultKind::MemoryBrownout;
  Brownout.Device = 0;
  Brownout.Factor = 0.05; // 5% of peak DRAM bandwidth.
  Brownout.StartCycle = 0;
  Brownout.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Brownout);
  SimConfig Config;
  Config.UnconstrainedMemory = true; // Brownout overrides this.
  Config.Faults = &Plan;
  auto MSlow = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(MSlow);
  auto Slow = MSlow->run(Inputs);
  ASSERT_TRUE(Slow) << Slow.message();
  EXPECT_GT(Slow->Stats.Cycles, Fast->Stats.Cycles);

  auto Reference = runReference(*Compiled, Inputs);
  for (const std::string &Output : Compiled->program().Outputs) {
    ValidationReport Report = validateField(
        Output, Slow->Outputs.at(Output), Reference->field(Output));
    EXPECT_TRUE(Report.Passed) << Report.Summary;
  }
}

TEST(DeviceLossTest, SingleDeviceFailureReportsDeviceLost) {
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 0;
  Death.StartCycle = 64;
  Plan.Events.push_back(Death);

  StencilProgram P = laplace2d(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Faults = &Plan;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::DeviceLost);
  EXPECT_EQ(Result.error().report().FailedDevice, 0);
  EXPECT_GE(Result.error().report().Cycle, 64);
}

TEST(DeviceLossTest, FailureReportTravelsWithTheSimFailure) {
  // The structured report arrives on the failure value itself — no
  // stateful second accessor on the machine (the deprecated shim that
  // once exposed the last run's report is gone).
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 0;
  Death.StartCycle = 64;
  Plan.Events.push_back(Death);

  StencilProgram P = laplace2d(16, 16);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  SimConfig Config;
  Config.UnconstrainedMemory = true;
  Config.Faults = &Plan;
  auto M = Machine::build(*Compiled, *Dataflow, nullptr, Config);
  ASSERT_TRUE(M);
  auto Result = M->run(materializeInputs(Compiled->program()));
  ASSERT_FALSE(Result);
  const FailureReport &Report = Result.error().report();
  EXPECT_EQ(Report.Code, ErrorCode::DeviceLost);
  EXPECT_FALSE(Report.render().empty());
  EXPECT_EQ(Result.message(), Report.render());
}

TEST(DeviceLossTest, PipelineRecoversByRepartitioning) {
  // The graceful-degradation path: a two-device deployment loses device 1
  // mid-run; the failed node leaves the pool, the pipeline re-partitions
  // the DAG across the surviving pool (a spare takes its place), re-runs,
  // and still validates against the reference.
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 1;
  Death.StartCycle = 100;
  Plan.Events.push_back(Death);

  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Faults = &Plan;
  // Budget 3 of the 6 chained stencils per device (cf. makeSplitPartition).
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs = 7 * 3;
  Options.Partitioning.MaxDevices = 64;

  auto Result = runPipeline(jacobi3dChain(6, 4, 6, 6), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Recovery.Attempts, 2);
  EXPECT_EQ(Result->Recovery.DevicesLost, 1);
  EXPECT_FALSE(Result->Recovery.Log.empty());
  EXPECT_EQ(Result->Placement.numDevices(), 2u);
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Termination,
            sim::TerminationReason::Completed);
}

TEST(DeviceLossTest, RecoveryFailsWhenPoolIsExhausted) {
  // Same failure, but the testbed has exactly the two devices the
  // program needs: no spare, no feasible re-partition, so the device
  // loss propagates.
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 1;
  Death.StartCycle = 100;
  Plan.Events.push_back(Death);

  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Faults = &Plan;
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs = 7 * 3;
  Options.Partitioning.MaxDevices = 2;

  auto Result = runPipeline(jacobi3dChain(6, 4, 6, 6), Options);
  ASSERT_FALSE(Result);
  // The retry's re-partition cannot fit the program on the one remaining
  // node, and the classified infeasibility propagates to the caller.
  EXPECT_EQ(Result.code(), ErrorCode::Infeasible);
}

//===----------------------------------------------------------------------===//
// Parallel-engine parity under fault plans
//===----------------------------------------------------------------------===//

namespace {

/// Runs the two-device chain under both engines with otherwise-identical
/// \p Config and asserts exact agreement — cycles, bits, termination,
/// link counters, and channel peaks. Returns the parallel run.
TwoDeviceRun expectFaultParity(SimConfig Config) {
  Config.Engine = SimEngine::Serial;
  TwoDeviceRun Serial = runTwoDeviceChain(Config);
  Config.Engine = SimEngine::Parallel;
  TwoDeviceRun Parallel = runTwoDeviceChain(Config);

  EXPECT_EQ(static_cast<bool>(Serial.Result),
            static_cast<bool>(Parallel.Result));
  if (!Serial.Result || !Parallel.Result) {
    // Both engines must fail identically: same classification, same
    // structured report (same cycle, same culprits).
    if (!Serial.Result && !Parallel.Result) {
      EXPECT_EQ(Serial.Result.code(), Parallel.Result.code());
      EXPECT_EQ(Serial.Failure.render(), Parallel.Failure.render());
    }
    return Parallel;
  }

  EXPECT_EQ(Serial.Result->Stats.Cycles, Parallel.Result->Stats.Cycles);
  EXPECT_EQ(Serial.Result->Termination, Parallel.Result->Termination);
  EXPECT_EQ(Serial.Result->Stats.NetworkBytesMoved,
            Parallel.Result->Stats.NetworkBytesMoved);
  EXPECT_EQ(Serial.Result->Stats.UnitStallCycles,
            Parallel.Result->Stats.UnitStallCycles);
  EXPECT_EQ(Serial.Result->Stats.ChannelHighWater,
            Parallel.Result->Stats.ChannelHighWater);
  EXPECT_EQ(Serial.Result->Stats.ChannelPeakOccupancy,
            Parallel.Result->Stats.ChannelPeakOccupancy);
  EXPECT_EQ(Serial.Result->Stats.Links.size(),
            Parallel.Result->Stats.Links.size());
  for (const auto &[Name, Link] : Serial.Result->Stats.Links) {
    const LinkStats &Other = Parallel.Result->Stats.Links.at(Name);
    EXPECT_EQ(Link.Transmissions, Other.Transmissions) << Name;
    EXPECT_EQ(Link.Retransmissions, Other.Retransmissions) << Name;
    EXPECT_EQ(Link.CorruptedVectors, Other.CorruptedVectors) << Name;
    EXPECT_EQ(Link.Nacks, Other.Nacks) << Name;
    EXPECT_EQ(Link.Delivered, Other.Delivered) << Name;
  }
  for (const auto &[Name, Values] : Serial.Result->Outputs)
    EXPECT_EQ(Values, Parallel.Result->Outputs.at(Name))
        << "output " << Name;
  return Parallel;
}

} // namespace

TEST(ParallelFaultParityTest, EmptyReliablePlan) {
  // The reliable transport without faults: epochs are additionally
  // bounded by the send window and outstanding counts.
  FaultPlan Empty;
  SimConfig Config;
  Config.Faults = &Empty;
  TwoDeviceRun Run = expectFaultParity(Config);
  ASSERT_TRUE(Run.Result);
  EXPECT_EQ(Run.Result->Stats.Engine, "parallel");
}

TEST(ParallelFaultParityTest, TransientCorruption) {
  // Corruption dirties the retransmission state; the parallel engine
  // must detect it and fall back to exact serial stepping for the
  // affected cycles, rejoining epoch execution once the streams recover.
  FaultPlan Plan;
  Plan.Seed = 7;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 0.2;
  Corrupt.StartCycle = 0;
  Corrupt.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Corrupt);
  SimConfig Config;
  Config.Faults = &Plan;
  TwoDeviceRun Run = expectFaultParity(Config);
  ASSERT_TRUE(Run.Result);
  EXPECT_EQ(Run.Result->Termination, TerminationReason::CompletedDegraded);
  EXPECT_GT(Run.Result->Stats.SerialFallbackCycles, 0);
}

TEST(ParallelFaultParityTest, CorruptionBurstThenCleanDrain) {
  // A bounded burst: the engine serial-steps through the burst and must
  // return to epoch slicing afterwards.
  FaultPlan Plan;
  Plan.Seed = 11;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 0.5;
  Corrupt.StartCycle = 100;
  Corrupt.EndCycle = 220;
  Plan.Events.push_back(Corrupt);
  SimConfig Config;
  Config.Faults = &Plan;
  TwoDeviceRun Run = expectFaultParity(Config);
  ASSERT_TRUE(Run.Result);
  EXPECT_GT(Run.Result->Stats.ParallelEpochs, 0);
}

TEST(ParallelFaultParityTest, MemoryBrownoutWindow) {
  FaultPlan Plan;
  FaultEvent Brownout;
  Brownout.Kind = FaultKind::MemoryBrownout;
  Brownout.Device = 0;
  Brownout.Factor = 0.1;
  Brownout.StartCycle = 50;
  Brownout.EndCycle = 400;
  Plan.Events.push_back(Brownout);
  SimConfig Config;
  Config.Faults = &Plan;
  expectFaultParity(Config);
}

TEST(ParallelFaultParityTest, LinkDegradeWindow) {
  FaultPlan Plan;
  FaultEvent Degrade;
  Degrade.Kind = FaultKind::LinkDegrade;
  Degrade.Hop = -1;
  Degrade.Factor = 0.1;
  Degrade.StartCycle = 0;
  Degrade.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Degrade);
  SimConfig Config;
  Config.Faults = &Plan;
  expectFaultParity(Config);
}

TEST(ParallelFaultParityTest, DeviceFailureReportsMatch) {
  // Both engines must abort at the same cycle with the same structured
  // device-lost report — this exercises the parallel engine's fault
  // boundary epoch splitting and mid-epoch abort rollback.
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 1;
  Death.StartCycle = 300;
  Plan.Events.push_back(Death);
  SimConfig Config;
  Config.Faults = &Plan;
  TwoDeviceRun Run = expectFaultParity(Config);
  ASSERT_FALSE(Run.Result);
  EXPECT_EQ(Run.Result.code(), ErrorCode::DeviceLost);
  EXPECT_EQ(Run.Failure.FailedDevice, 1);
}

TEST(ParallelFaultParityTest, RetransmitExhaustionReportsMatch) {
  FaultPlan Plan;
  FaultEvent Corrupt;
  Corrupt.Kind = FaultKind::PayloadCorruption;
  Corrupt.Probability = 1.0;
  Plan.Events.push_back(Corrupt);
  SimConfig Config;
  Config.Faults = &Plan;
  Config.MaxRetransmitAttempts = 4;
  TwoDeviceRun Run = expectFaultParity(Config);
  ASSERT_FALSE(Run.Result);
  EXPECT_EQ(Run.Result.code(), ErrorCode::LinkFailure);
}

TEST(ParallelFaultParityTest, WatchdogStarvationReportsMatch) {
  FaultPlan Plan;
  FaultEvent Outage;
  Outage.Kind = FaultKind::LinkOutage;
  Outage.Hop = -1;
  Outage.StartCycle = 0;
  Outage.EndCycle = std::numeric_limits<int64_t>::max();
  Plan.Events.push_back(Outage);
  SimConfig Config;
  Config.Faults = &Plan;
  Config.StallTimeoutCycles = 2048;
  TwoDeviceRun Run = expectFaultParity(Config);
  ASSERT_FALSE(Run.Result);
  EXPECT_EQ(Run.Result.code(), ErrorCode::Starvation);
}

TEST(DeviceLossTest, RecoveryCanBeDisabled) {
  FaultPlan Plan;
  FaultEvent Death;
  Death.Kind = FaultKind::DeviceFailure;
  Death.Device = 1;
  Death.StartCycle = 100;
  Plan.Events.push_back(Death);

  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Faults = &Plan;
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs = 7 * 3;
  Options.Partitioning.MaxDevices = 64;
  Options.RecoverFromDeviceLoss = false;

  auto Result = runPipeline(jacobi3dChain(6, 4, 6, 6), Options);
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::DeviceLost);
  EXPECT_EQ(exitCodeFor(Result.code()), 5);
}
