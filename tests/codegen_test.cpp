//===- tests/codegen_test.cpp - OpenCL emitter tests ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "codegen/OpenCLEmitter.h"
#include "common/TestPrograms.h"
#include "core/DataflowAnalysis.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

namespace {

std::vector<GeneratedSource> emit(StencilProgram Program,
                                  const Partition *Placement = nullptr) {
  auto Compiled = CompiledProgram::compile(std::move(Program));
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Dataflow = analyzeDataflow(*Compiled);
  EXPECT_TRUE(Dataflow);
  auto Sources = emitOpenCL(*Compiled, *Dataflow, Placement);
  EXPECT_TRUE(Sources) << Sources.message();
  return Sources.takeValue();
}

bool contains(const std::string &Haystack, const std::string &Needle) {
  return Haystack.find(Needle) != std::string::npos;
}

} // namespace

TEST(CodegenTest, LaplaceKernelStructure) {
  auto Sources = emit(laplace2d(16, 16));
  ASSERT_EQ(Sources.size(), 2u); // One device + host summary.
  const std::string &S = Sources[0].Source;
  EXPECT_TRUE(contains(S, "#pragma OPENCL EXTENSION cl_intel_channels"));
  EXPECT_TRUE(contains(S, "__attribute__((autorun))"));
  EXPECT_TRUE(contains(S, "__kernel void stencil_b("));
  EXPECT_TRUE(contains(S, "__kernel void read_a("));
  EXPECT_TRUE(contains(S, "__kernel void write_b("));
  EXPECT_TRUE(contains(S, "float sreg_a[")); // Shift-register pattern.
  EXPECT_TRUE(contains(S, "#pragma unroll"));
  EXPECT_TRUE(contains(S, "read_channel_intel"));
  EXPECT_TRUE(contains(S, "write_channel_intel"));
  // Boundary predication against the iteration indices.
  EXPECT_TRUE(contains(S, "j >= 0 && j <"));
}

TEST(CodegenTest, ChannelDepthsCarryDelayBuffers) {
  StencilProgram P = diamondProgram(24, 24);
  auto Compiled = CompiledProgram::compile(P.clone());
  auto Dataflow = analyzeDataflow(*Compiled);
  int64_t Depth = Dataflow->findEdge("A", "C")->BufferDepth;
  auto Sources = emit(std::move(P));
  const std::string &S = Sources[0].Source;
  EXPECT_TRUE(contains(
      S, formatString("ch_A__to__C __attribute__((depth(%lld)))",
                      static_cast<long long>(Depth + 8))));
  EXPECT_TRUE(contains(S, formatString("// delay buffer %lld",
                                       static_cast<long long>(Depth))));
}

TEST(CodegenTest, VectorizedTypesAndLaneLoop) {
  auto Sources = emit(laplace2d(16, 16, 4));
  const std::string &S = Sources[0].Source;
  EXPECT_TRUE(contains(S, "float4"));
  EXPECT_TRUE(contains(S, "for (int w = 0; w < 4; ++w)"));
  EXPECT_TRUE(contains(S, "result[w] ="));
}

TEST(CodegenTest, BoundaryKindsEmitted) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addInput(P, "b");
  addStencil(P, "out", "out = a[0, -1] + a[0, 0] + b[0, 1];",
             DataType::Float32,
             {{"a", BoundaryCondition::copy()},
              {"b", BoundaryCondition::constant(7.5)}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Sources = emit(std::move(P));
  const std::string &S = Sources[0].Source;
  EXPECT_TRUE(contains(S, "7.5f"));                // Constant fallback.
  EXPECT_TRUE(contains(S, ": sreg_a["));           // Copy fallback (center).
}

TEST(CodegenTest, RomInputsBecomeArguments) {
  StencilProgram P;
  P.IterationSpace = Shape({4, 8, 8});
  addInput(P, "a");
  Field C;
  C.Name = "c";
  C.DimensionMask = {true, false, false};
  P.Inputs.push_back(C);
  addStencil(P, "out", "out = a[0,0,0] * c[0];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Sources = emit(std::move(P));
  const std::string &S = Sources[0].Source;
  EXPECT_TRUE(contains(S, "__global const float *restrict rom_c"));
  EXPECT_TRUE(contains(S, "rom_c["));
  // Kernels with host-passed arguments cannot be autorun.
  EXPECT_FALSE(contains(S, "autorun))\n__kernel void stencil_out"));
}

TEST(CodegenTest, IntrinsicsAndTernaries) {
  StencilProgram P;
  P.IterationSpace = Shape({8, 8});
  addInput(P, "a");
  addStencil(P, "out",
             "r = sqrt(fabs(a[0, 0]));"
             "out = a[0, 1] > 0.0 ? min(r, 1.0) : max(r, -1.0);");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Sources = emit(std::move(P));
  const std::string &S = Sources[0].Source;
  EXPECT_TRUE(contains(S, "sqrtf"));
  EXPECT_TRUE(contains(S, "fabsf"));
  EXPECT_TRUE(contains(S, "fminf"));
  EXPECT_TRUE(contains(S, "fmaxf"));
  EXPECT_TRUE(contains(S, "?"));
}

TEST(CodegenTest, MultiDeviceEmitsSmi) {
  StencilProgram P = jacobi3dChain(6, 4, 6, 6);
  auto Compiled = CompiledProgram::compile(P.clone());
  auto Dataflow = analyzeDataflow(*Compiled);
  PartitionOptions Options;
  Options.TargetUtilization = 1.0;
  Options.Device.DSPs = 7 * 3; // Three nodes per device.
  Options.MaxDevices = 8;
  auto Placement = partitionProgram(*Compiled, *Dataflow, Options);
  ASSERT_TRUE(Placement) << Placement.message();
  ASSERT_EQ(Placement->numDevices(), 2u);

  auto Sources = emitOpenCL(*Compiled, *Dataflow, &*Placement);
  ASSERT_TRUE(Sources);
  ASSERT_EQ(Sources->size(), 3u); // Two devices + host summary.
  EXPECT_TRUE(contains((*Sources)[0].Source, "SMI_Push"));
  EXPECT_TRUE(contains((*Sources)[1].Source, "SMI_Pop"));
  EXPECT_TRUE(contains((*Sources)[0].Source, "#include <smi.h>"));
  EXPECT_EQ((*Sources)[0].FileName, "jacobi3d_chain_6_device0.cl");
}

TEST(CodegenTest, HostSummaryListsBuffers) {
  auto Sources = emit(laplace2d(16, 16));
  const GeneratedSource &Host = Sources.back();
  EXPECT_NE(Host.FileName.find("_host.cpp"), std::string::npos);
  EXPECT_TRUE(contains(Host.Source, "input  a"));
  EXPECT_TRUE(contains(Host.Source, "output b"));
}

TEST(CodegenTest, FillDelaysScheduleChannelReads) {
  // Two inputs with different windows: the smaller one starts reading
  // later (fill-delay synchronization, Sec. IV-A).
  StencilProgram P;
  P.IterationSpace = Shape({8, 16});
  addInput(P, "a");
  addInput(P, "b");
  addStencil(P, "out", "out = a[-1, 0] + a[1, 0] + b[0, -1] + b[0, 1];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  auto Sources = emit(std::move(P));
  const std::string &S = Sources[0].Source;
  // a's window is 2 rows (32 cycles, delay 0); b's is 2 cells (delay 30).
  EXPECT_TRUE(contains(S, "if (it >= 0 && it < 128)"));
  EXPECT_TRUE(contains(S, "if (it >= 30 && it < 158)"));
}
