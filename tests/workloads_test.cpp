//===- tests/workloads_test.cpp - Workload program tests -----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RuntimeModel.h"
#include "runtime/Pipeline.h"
#include "sdfg/StencilFusion.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::workloads;

TEST(WorkloadsTest, JacobiChainOpCounts) {
  StencilProgram P = jacobi3dChain(3, 8, 8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  compute::OpCensus Census = Compiled->totalCensus();
  EXPECT_EQ(Census.Additions, 3 * 6);
  EXPECT_EQ(Census.Multiplications, 3 * 1);
}

TEST(WorkloadsTest, DiffusionOpCounts) {
  auto Compiled2D =
      CompiledProgram::compile(diffusion2dChain(2, 16, 16));
  auto Compiled3D =
      CompiledProgram::compile(diffusion3dChain(2, 8, 8, 8));
  ASSERT_TRUE(Compiled2D);
  ASSERT_TRUE(Compiled3D);
  // Diffusion 2D: 4 add + 5 mul; 3D: 6 add + 7 mul.
  EXPECT_EQ(Compiled2D->totalCensus().Additions, 2 * 4);
  EXPECT_EQ(Compiled2D->totalCensus().Multiplications, 2 * 5);
  EXPECT_EQ(Compiled3D->totalCensus().Additions, 2 * 6);
  EXPECT_EQ(Compiled3D->totalCensus().Multiplications, 2 * 7);
}

TEST(WorkloadsTest, HdiffStructureMatchesPaper) {
  // Sec. IX-A: 5 full 3D inputs + 5 1D inputs, 4 outputs; every
  // non-source stencil reads 2-6 other stencils/fields; contains square
  // roots, minima, maxima, and data-dependent branches.
  StencilProgram P = horizontalDiffusion(8, 16, 16);
  EXPECT_EQ(P.Inputs.size(), 10u);
  int FullRank = 0, Lines = 0;
  for (const Field &Input : P.Inputs) {
    FullRank += Input.isFullRank();
    Lines += Input.rank() == 1;
  }
  EXPECT_EQ(FullRank, 5);
  EXPECT_EQ(Lines, 5);
  EXPECT_EQ(P.Outputs.size(), 4u);

  auto Compiled = CompiledProgram::compile(P.clone());
  ASSERT_TRUE(Compiled) << Compiled.message();
  compute::OpCensus Census = Compiled->totalCensus();
  EXPECT_EQ(Census.SquareRoots, 2);
  EXPECT_EQ(Census.MinMax, 4); // 2 min + 2 max.
  EXPECT_EQ(Census.Branches, 20);
  EXPECT_GT(Census.Additions, 40);
  EXPECT_GT(Census.Multiplications, 20);
}

TEST(WorkloadsTest, HdiffMemoryVolumesMatchPaperForm) {
  // Reads 5*KJI (3D) + 5*J (1D) elements, writes 4*KJI (Sec. IX-A).
  int64_t K = 8, J = 16, I = 16;
  StencilProgram P = horizontalDiffusion(K, J, I);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  MemoryTraffic Traffic = computeMemoryTraffic(*Compiled);
  EXPECT_EQ(Traffic.ReadElements, 5 * K * J * I + 5 * J);
  EXPECT_EQ(Traffic.WriteElements, 4 * K * J * I);
  // 5 streamed inputs + 4 outputs = 9 operands per cycle.
  EXPECT_EQ(Traffic.OperandsPerCycle, 9);
}

TEST(WorkloadsTest, HdiffFanInMatchesPaper) {
  // "each non-source stencil receives data from 2-6 other stencil nodes"
  // — here: nodes that read at least one other node's output read 2-6
  // fields in total.
  StencilProgram P = horizontalDiffusion(8, 16, 16);
  for (const StencilNode &Node : P.Nodes) {
    bool ReadsStencil = false;
    for (const FieldAccesses &FA : Node.Accesses)
      ReadsStencil |= P.findNode(FA.Field) != nullptr;
    if (!ReadsStencil)
      continue;
    EXPECT_GE(Node.Accesses.size(), 2u) << Node.Name;
    EXPECT_LE(Node.Accesses.size(), 6u) << Node.Name;
  }
}

TEST(WorkloadsTest, HdiffRunsAndValidatesOnSimulator) {
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result = runPipeline(horizontalDiffusion(4, 16, 16), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Stats.Cycles,
            Result->Runtime.TotalCycles); // C = L + N holds.
}

TEST(WorkloadsTest, HdiffFusesAggressively) {
  StencilProgram P = horizontalDiffusion(4, 16, 16);
  size_t Before = P.Nodes.size();
  auto Report = fuseAllStencils(P);
  ASSERT_TRUE(Report) << Report.message();
  EXPECT_GT(Report->FusedPairs, 0);
  EXPECT_LT(P.Nodes.size(), Before);
  EXPECT_FALSE(P.validate());
}

TEST(WorkloadsTest, HdiffFusedStillValidates) {
  PipelineOptions Options;
  Options.FuseStencils = true;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result = runPipeline(horizontalDiffusion(4, 16, 16), Options);
  ASSERT_TRUE(Result) << Result.message();
  // Fusion computes through the halo; outputs whose producers fused at
  // non-zero offsets may differ at the fringe, so the pipeline-level
  // validation compares the simulator against the reference executor of
  // the *fused* program — which must agree exactly.
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_GT(Result->FusedPairs, 0);
}

TEST(WorkloadsTest, HdiffInitializationLatencyNegligible) {
  // Sec. IX: "initialization latency accounts for ~0.7% of the total
  // number of iterations" in the fused program. With the full 128x128x80
  // domain, L/N must be on the order of a percent.
  StencilProgram P = horizontalDiffusion(80, 128, 128);
  auto Report = fuseAllStencils(P);
  ASSERT_TRUE(Report);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  RuntimeEstimate Runtime = computeRuntimeEstimate(*Compiled, *Dataflow);
  double Fraction = static_cast<double>(Runtime.LatencyCycles) /
                    static_cast<double>(Runtime.StreamedCycles);
  EXPECT_LT(Fraction, 0.02);
  EXPECT_GT(Fraction, 0.0001);
}

TEST(WorkloadsTest, VectorizedWorkloadsValid) {
  EXPECT_FALSE(jacobi3dChain(2, 4, 8, 16, 4).validate());
  EXPECT_FALSE(diffusion2dChain(2, 8, 32, 8).validate());
  EXPECT_FALSE(horizontalDiffusion(4, 16, 16, 8).validate());
}
