//===- tests/workloads_test.cpp - Workload program tests -----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/RuntimeModel.h"
#include "runtime/InputData.h"
#include "runtime/Iterate.h"
#include "runtime/Pipeline.h"
#include "sdfg/StencilFusion.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace stencilflow;
using namespace stencilflow::workloads;

namespace {

/// Iterates the single-step \p Program \p Steps times through off-chip
/// memory with the reference executor — the parity oracle.
std::map<std::string, std::vector<double>>
referenceAfterSteps(const StencilProgram &Program, int Steps) {
  auto Compiled = CompiledProgram::compile(Program.clone(), {});
  EXPECT_TRUE(Compiled) << Compiled.message();
  auto Inputs = materializeInputs(Compiled->program());
  auto Result = iterateReference(*Compiled, Inputs,
                                 Compiled->program().TimeLoop, Steps);
  EXPECT_TRUE(Result) << Result.message();
  std::map<std::string, std::vector<double>> Fields;
  for (const std::string &Output : Program.Outputs)
    Fields[Output] = Result->field(Output);
  return Fields;
}

/// Largest absolute access offset over every node of \p Program.
int maxAccessRadius(const StencilProgram &Program) {
  int Max = 0;
  for (const StencilNode &Node : Program.Nodes)
    for (const FieldAccesses &FA : Node.Accesses)
      for (const Offset &Off : FA.Offsets)
        for (int C : Off)
          Max = std::max(Max, std::abs(C));
  return Max;
}

/// Runs \p Program under \p Engine/\p Tier at temporal degree \p T and
/// asserts bit-exact agreement with iterating the reference T times.
void expectHighOrderParity(const StencilProgram &Program, int T,
                           sim::SimEngine Engine,
                           compute::KernelEngine Tier,
                           const std::string &What) {
  PipelineOptions Options;
  Options.TemporalDegree = T;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Simulator.Engine = Engine;
  Options.Simulator.KernelExec = Tier;
  auto Result = runPipeline(Program.clone(), Options);
  ASSERT_TRUE(Result) << What << ": " << Result.message();
  EXPECT_TRUE(Result->ValidationPassed) << What;
  auto Want = referenceAfterSteps(Program, T);
  for (const std::string &Output : Program.Outputs) {
    const std::vector<double> &Got = Result->Simulation.Outputs.at(Output);
    const std::vector<double> &Ref = Want.at(Output);
    ASSERT_EQ(Got.size(), Ref.size()) << What << " output " << Output;
    for (size_t I = 0; I != Got.size(); ++I)
      ASSERT_EQ(Got[I], Ref[I]) << What << " output " << Output
                                << " diverges at element " << I;
  }
}

} // namespace

TEST(WorkloadsTest, JacobiChainOpCounts) {
  StencilProgram P = jacobi3dChain(3, 8, 8, 8);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  compute::OpCensus Census = Compiled->totalCensus();
  EXPECT_EQ(Census.Additions, 3 * 6);
  EXPECT_EQ(Census.Multiplications, 3 * 1);
}

TEST(WorkloadsTest, DiffusionOpCounts) {
  auto Compiled2D =
      CompiledProgram::compile(diffusion2dChain(2, 16, 16));
  auto Compiled3D =
      CompiledProgram::compile(diffusion3dChain(2, 8, 8, 8));
  ASSERT_TRUE(Compiled2D);
  ASSERT_TRUE(Compiled3D);
  // Diffusion 2D: 4 add + 5 mul; 3D: 6 add + 7 mul.
  EXPECT_EQ(Compiled2D->totalCensus().Additions, 2 * 4);
  EXPECT_EQ(Compiled2D->totalCensus().Multiplications, 2 * 5);
  EXPECT_EQ(Compiled3D->totalCensus().Additions, 2 * 6);
  EXPECT_EQ(Compiled3D->totalCensus().Multiplications, 2 * 7);
}

TEST(WorkloadsTest, HdiffStructureMatchesPaper) {
  // Sec. IX-A: 5 full 3D inputs + 5 1D inputs, 4 outputs; every
  // non-source stencil reads 2-6 other stencils/fields; contains square
  // roots, minima, maxima, and data-dependent branches.
  StencilProgram P = horizontalDiffusion(8, 16, 16);
  EXPECT_EQ(P.Inputs.size(), 10u);
  int FullRank = 0, Lines = 0;
  for (const Field &Input : P.Inputs) {
    FullRank += Input.isFullRank();
    Lines += Input.rank() == 1;
  }
  EXPECT_EQ(FullRank, 5);
  EXPECT_EQ(Lines, 5);
  EXPECT_EQ(P.Outputs.size(), 4u);

  auto Compiled = CompiledProgram::compile(P.clone());
  ASSERT_TRUE(Compiled) << Compiled.message();
  compute::OpCensus Census = Compiled->totalCensus();
  EXPECT_EQ(Census.SquareRoots, 2);
  EXPECT_EQ(Census.MinMax, 4); // 2 min + 2 max.
  EXPECT_EQ(Census.Branches, 20);
  EXPECT_GT(Census.Additions, 40);
  EXPECT_GT(Census.Multiplications, 20);
}

TEST(WorkloadsTest, HdiffMemoryVolumesMatchPaperForm) {
  // Reads 5*KJI (3D) + 5*J (1D) elements, writes 4*KJI (Sec. IX-A).
  int64_t K = 8, J = 16, I = 16;
  StencilProgram P = horizontalDiffusion(K, J, I);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  MemoryTraffic Traffic = computeMemoryTraffic(*Compiled);
  EXPECT_EQ(Traffic.ReadElements, 5 * K * J * I + 5 * J);
  EXPECT_EQ(Traffic.WriteElements, 4 * K * J * I);
  // 5 streamed inputs + 4 outputs = 9 operands per cycle.
  EXPECT_EQ(Traffic.OperandsPerCycle, 9);
}

TEST(WorkloadsTest, HdiffFanInMatchesPaper) {
  // "each non-source stencil receives data from 2-6 other stencil nodes"
  // — here: nodes that read at least one other node's output read 2-6
  // fields in total.
  StencilProgram P = horizontalDiffusion(8, 16, 16);
  for (const StencilNode &Node : P.Nodes) {
    bool ReadsStencil = false;
    for (const FieldAccesses &FA : Node.Accesses)
      ReadsStencil |= P.findNode(FA.Field) != nullptr;
    if (!ReadsStencil)
      continue;
    EXPECT_GE(Node.Accesses.size(), 2u) << Node.Name;
    EXPECT_LE(Node.Accesses.size(), 6u) << Node.Name;
  }
}

TEST(WorkloadsTest, HdiffRunsAndValidatesOnSimulator) {
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result = runPipeline(horizontalDiffusion(4, 16, 16), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Stats.Cycles,
            Result->Runtime.TotalCycles); // C = L + N holds.
}

TEST(WorkloadsTest, HdiffFusesAggressively) {
  StencilProgram P = horizontalDiffusion(4, 16, 16);
  size_t Before = P.Nodes.size();
  auto Report = fuseAllStencils(P);
  ASSERT_TRUE(Report) << Report.message();
  EXPECT_GT(Report->FusedPairs, 0);
  EXPECT_LT(P.Nodes.size(), Before);
  EXPECT_FALSE(P.validate());
}

TEST(WorkloadsTest, HdiffFusedStillValidates) {
  PipelineOptions Options;
  Options.FuseStencils = true;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result = runPipeline(horizontalDiffusion(4, 16, 16), Options);
  ASSERT_TRUE(Result) << Result.message();
  // Fusion computes through the halo; outputs whose producers fused at
  // non-zero offsets may differ at the fringe, so the pipeline-level
  // validation compares the simulator against the reference executor of
  // the *fused* program — which must agree exactly.
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_GT(Result->FusedPairs, 0);
}

TEST(WorkloadsTest, HdiffInitializationLatencyNegligible) {
  // Sec. IX: "initialization latency accounts for ~0.7% of the total
  // number of iterations" in the fused program. With the full 128x128x80
  // domain, L/N must be on the order of a percent.
  StencilProgram P = horizontalDiffusion(80, 128, 128);
  auto Report = fuseAllStencils(P);
  ASSERT_TRUE(Report);
  auto Compiled = CompiledProgram::compile(std::move(P));
  ASSERT_TRUE(Compiled);
  auto Dataflow = analyzeDataflow(*Compiled);
  ASSERT_TRUE(Dataflow);
  RuntimeEstimate Runtime = computeRuntimeEstimate(*Compiled, *Dataflow);
  double Fraction = static_cast<double>(Runtime.LatencyCycles) /
                    static_cast<double>(Runtime.StreamedCycles);
  EXPECT_LT(Fraction, 0.02);
  EXPECT_GT(Fraction, 0.0001);
}

TEST(WorkloadsTest, VectorizedWorkloadsValid) {
  EXPECT_FALSE(jacobi3dChain(2, 4, 8, 16, 4).validate());
  EXPECT_FALSE(diffusion2dChain(2, 8, 32, 8).validate());
  EXPECT_FALSE(horizontalDiffusion(4, 16, 16, 8).validate());
}

//===----------------------------------------------------------------------===//
// High-order family
//===----------------------------------------------------------------------===//

TEST(HighOrderTest, WaveStructure) {
  for (int Radius : {1, 2, 3, 4}) {
    StencilProgram P = wave2dChain(Radius, 2, 24, 24);
    // Two steps plus the pass-through for the second time level.
    EXPECT_EQ(P.Nodes.size(), 3u) << "radius " << Radius;
    EXPECT_EQ(maxAccessRadius(P), Radius);
    ASSERT_EQ(P.Outputs.size(), 2u);
    EXPECT_EQ(P.Outputs[0], "w2");
    EXPECT_EQ(P.Outputs[1], "up");
    ASSERT_EQ(P.TimeLoop.size(), 2u);
    EXPECT_EQ(P.TimeLoop[0].Output, "w2");
    EXPECT_EQ(P.TimeLoop[0].Input, "u1");
    EXPECT_EQ(P.TimeLoop[1].Output, "up");
    EXPECT_EQ(P.TimeLoop[1].Input, "u0");
    EXPECT_FALSE(P.validate());
  }
  // The 3D stencil reads 2*3*Radius ring points plus both centers.
  StencilProgram P3 = wave3dChain(2, 1, 8, 8, 8);
  EXPECT_EQ(maxAccessRadius(P3), 2);
  const StencilNode *W1 = P3.findNode("w1");
  ASSERT_NE(W1, nullptr);
  const FieldAccesses *Cur = W1->accessesFor("u1");
  ASSERT_NE(Cur, nullptr);
  EXPECT_EQ(Cur->Offsets.size(), 2u * 3u * 2u + 1u);
}

TEST(HighOrderTest, HotspotStructure) {
  StencilProgram P = hotspot2dChain(3, 16, 16);
  EXPECT_EQ(P.Nodes.size(), 3u);
  EXPECT_EQ(P.Inputs.size(), 2u); // temperature + static power
  EXPECT_EQ(maxAccessRadius(P), 1);
  ASSERT_EQ(P.TimeLoop.size(), 1u);
  EXPECT_EQ(P.TimeLoop[0].Output, "t3");
  EXPECT_EQ(P.TimeLoop[0].Input, "t0");
  // The power map is read by every step but never rebound.
  for (const StencilNode &Node : P.Nodes)
    EXPECT_NE(Node.accessesFor("p"), nullptr) << Node.Name;
  EXPECT_FALSE(P.validate());
}

TEST(HighOrderTest, AllRadiiRunAndValidate) {
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  for (int Radius : {1, 2, 3, 4}) {
    auto Result = runPipeline(wave2dChain(Radius, 1, 24, 24), Options);
    ASSERT_TRUE(Result) << "radius " << Radius << ": " << Result.message();
    EXPECT_TRUE(Result->ValidationPassed) << "radius " << Radius;
  }
  auto Result3d = runPipeline(wave3dChain(2, 1, 8, 8, 8), Options);
  ASSERT_TRUE(Result3d) << Result3d.message();
  EXPECT_TRUE(Result3d->ValidationPassed);
  auto Hotspot = runPipeline(hotspot2dChain(2, 16, 16), Options);
  ASSERT_TRUE(Hotspot) << Hotspot.message();
  EXPECT_TRUE(Hotspot->ValidationPassed);
}

TEST(HighOrderTest, ParityAcrossEnginesAndTiers) {
  StencilProgram Wave = wave2dChain(4, 1, 24, 24);
  StencilProgram Hotspot = hotspot2dChain(1, 16, 16);
  for (sim::SimEngine Engine :
       {sim::SimEngine::Serial, sim::SimEngine::Parallel})
    for (compute::KernelEngine Tier :
         {compute::KernelEngine::Scalar, compute::KernelEngine::Specialized,
          compute::KernelEngine::Jit}) {
      std::string What =
          std::string(Engine == sim::SimEngine::Parallel ? "parallel"
                                                         : "serial") +
          "/" + std::to_string(static_cast<int>(Tier));
      expectHighOrderParity(Wave, 2, Engine, Tier, "wave2d_r4 " + What);
      expectHighOrderParity(Hotspot, 2, Engine, Tier, "hotspot " + What);
    }
}

TEST(HighOrderTest, WaveTemporalDegreesMatchHostLoop) {
  // Two time levels per step stress the unroller's binding bookkeeping.
  StencilProgram P = wave2dChain(2, 1, 16, 16);
  for (int T : {1, 2, 4})
    expectHighOrderParity(P, T, sim::SimEngine::Serial,
                          compute::KernelEngine::Specialized,
                          "wave2d_r2 T=" + std::to_string(T));
  expectHighOrderParity(wave3dChain(2, 1, 8, 8, 8), 2,
                        sim::SimEngine::Serial,
                        compute::KernelEngine::Specialized, "wave3d_r2 T=2");
}

TEST(HighOrderTest, VectorizedHighOrderValid) {
  EXPECT_FALSE(wave2dChain(3, 1, 16, 16, 4).validate());
  EXPECT_FALSE(wave3dChain(2, 1, 6, 8, 8, 4).validate());
  EXPECT_FALSE(hotspot2dChain(2, 16, 16, 4).validate());
}
