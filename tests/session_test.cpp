//===- tests/session_test.cpp - Session facade tests ---------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The stencilflow::Session facade is the library's stable front door; these
// tests pin its contract:
//
//  - factory error handling (bad JSON, missing files) with typed errors;
//  - chainable configuration reaching the pipeline;
//  - fail-fast validation of inconsistent settings at run();
//  - repeatability: one Session sweeps engines and fault plans over one
//    loaded program, with identical results where the model says so;
//  - ownership: fault plans and tracers attached to the Session outlive
//    the run without caller-managed lifetimes.
//
//===----------------------------------------------------------------------===//

#include "StencilFlow.h"
#include "common/TestPrograms.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

namespace {

const char *LaplaceJson = R"({
  "name": "laplace2d",
  "dimensions": [16, 16],
  "inputs": {
    "a": {"data_type": "float32", "data": {"kind": "random", "seed": 42}}
  },
  "outputs": ["b"],
  "program": {
    "b": {
      "computation":
        "b = a[0,-1] + a[0,1] + a[-1,0] + a[1,0] - 4.0 * a[0,0];",
      "boundary_conditions": {"a": {"type": "constant", "value": 0.0}}
    }
  }
})";

} // namespace

TEST(SessionTest, FromJsonTextParsesAndRuns) {
  auto S = Session::fromJsonText(LaplaceJson);
  ASSERT_TRUE(S) << S.message();
  EXPECT_EQ(S->program().Name, "laplace2d");
  S->unconstrainedMemory(true);
  auto Result = S->run();
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Stats.Engine, "serial");
}

TEST(SessionTest, FromJsonTextRejectsGarbageWithContext) {
  auto S = Session::fromJsonText("{ not json");
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("session"), std::string::npos);
}

TEST(SessionTest, FromFileRejectsMissingFile) {
  auto S = Session::fromFile("/nonexistent/program.json");
  ASSERT_FALSE(S);
  EXPECT_NE(S.message().find("session"), std::string::npos);
}

TEST(SessionTest, ChainedSettersReachThePipeline) {
  Session S = Session::fromProgram(laplace2d(12, 12));
  S.fuseStencils(true)
      .simplifyCode(false)
      .emitCode(true)
      .validate(false)
      .unconstrainedMemory(true)
      .stallTimeout(4096)
      .engine(sim::SimEngine::Parallel, 2);
  const PipelineOptions &O =
      static_cast<const Session &>(S).pipelineOptions();
  EXPECT_TRUE(O.FuseStencils);
  EXPECT_FALSE(O.SimplifyCode);
  EXPECT_TRUE(O.EmitCode);
  EXPECT_FALSE(O.Validate);
  EXPECT_TRUE(O.Simulator.UnconstrainedMemory);
  EXPECT_EQ(O.Simulator.StallTimeoutCycles, 4096);
  EXPECT_EQ(O.Simulator.Engine, sim::SimEngine::Parallel);
  EXPECT_EQ(O.Simulator.Threads, 2);

  auto Result = S.run();
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Simulation.Stats.Engine, "parallel");
  EXPECT_FALSE(Result->Sources.empty());
  EXPECT_TRUE(Result->Validations.empty());
}

TEST(SessionTest, RunIsRepeatableAndSweepsEngines) {
  // One loaded program, three runs: serial, parallel, serial again.
  // The facade clones the program per run, so results are identical.
  auto S = Session::fromJsonText(LaplaceJson);
  ASSERT_TRUE(S) << S.message();
  S->unconstrainedMemory(true);

  auto First = S->run();
  ASSERT_TRUE(First) << First.message();

  S->engine(sim::SimEngine::Parallel);
  auto Second = S->run();
  ASSERT_TRUE(Second) << Second.message();
  EXPECT_EQ(Second->Simulation.Stats.Engine, "parallel");
  EXPECT_EQ(Second->Simulation.Stats.Cycles,
            First->Simulation.Stats.Cycles);

  S->engine(sim::SimEngine::Serial);
  auto Third = S->run();
  ASSERT_TRUE(Third) << Third.message();
  EXPECT_EQ(Third->Simulation.Stats.Cycles, First->Simulation.Stats.Cycles);
  for (const auto &[Name, Values] : First->Simulation.Outputs) {
    EXPECT_EQ(Values, Second->Simulation.Outputs.at(Name)) << Name;
    EXPECT_EQ(Values, Third->Simulation.Outputs.at(Name)) << Name;
  }
}

TEST(SessionTest, VectorizeOverridesProgramWidth) {
  Session S = Session::fromProgram(laplace2d(12, 16));
  S.unconstrainedMemory(true);
  auto Scalar = S.run();
  ASSERT_TRUE(Scalar) << Scalar.message();
  S.vectorize(4);
  auto Vector = S.run();
  ASSERT_TRUE(Vector) << Vector.message();
  EXPECT_LT(Vector->Simulation.Stats.Cycles, Scalar->Simulation.Stats.Cycles);
}

TEST(SessionTest, RunRejectsInconsistentConfigBeforeThePipeline) {
  Session S = Session::fromProgram(laplace2d(8, 8));
  // Tracing and the parallel engine are mutually exclusive; the facade's
  // fail-fast validation catches the combination at run().
  S.trace().engine(sim::SimEngine::Parallel);
  auto Result = S.run();
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::InvalidInput);
  EXPECT_NE(Result.message().find("session"), std::string::npos);

  // Dropping back to the serial engine makes the same Session run.
  S.engine(sim::SimEngine::Serial);
  auto Fixed = S.run();
  ASSERT_TRUE(Fixed) << Fixed.message();
}

TEST(SessionTest, OwnedTracerRecordsTheRun) {
  Session S = Session::fromProgram(laplace2d(8, 8));
  S.unconstrainedMemory(true).trace(/*SampleStride=*/4);
  ASSERT_NE(S.tracer(), nullptr);
  auto Result = S.run();
  ASSERT_TRUE(Result) << Result.message();
  // The recording is on the Session-owned tracer; no raw pointers were
  // handed around.
  std::string Json = S.tracer()->chromeTraceJson();
  EXPECT_NE(Json.find("traceEvents"), std::string::npos);
  EXPECT_GT(Json.size(), 100u);
}

TEST(SessionTest, OwnedFaultPlanOutlivesTheCaller) {
  Session S = Session::fromProgram(laplace2d(8, 8));
  S.unconstrainedMemory(true);
  // Disable the graceful-degradation retry so the injected loss surfaces
  // instead of being healed by re-partitioning onto a spare.
  S.pipelineOptions().RecoverFromDeviceLoss = false;
  {
    // The plan dies at the end of this scope; the Session keeps a copy,
    // so there is no dangling SimConfig::Faults pointer to misuse.
    sim::FaultPlan Doomed;
    sim::FaultEvent Death;
    Death.Kind = sim::FaultKind::DeviceFailure;
    Death.Device = 0;
    Death.StartCycle = 32;
    Doomed.Events.push_back(Death);
    S.faults(std::move(Doomed));
  }
  auto Result = S.run();
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::DeviceLost);

  // Detaching the plan restores the fault-free run.
  S.clearFaults();
  auto Clean = S.run();
  ASSERT_TRUE(Clean) << Clean.message();
  EXPECT_TRUE(Clean->ValidationPassed);
}

TEST(SessionTest, RunValidatesFaultPlan) {
  Session S = Session::fromProgram(laplace2d(8, 8));
  sim::FaultPlan Bad;
  sim::FaultEvent Event;
  Event.Kind = sim::FaultKind::LinkDegrade;
  Event.StartCycle = 100;
  Event.EndCycle = 50; // Ends before it starts.
  Bad.Events.push_back(Event);
  S.faults(std::move(Bad));
  auto Result = S.run();
  ASSERT_FALSE(Result);
  EXPECT_EQ(Result.code(), ErrorCode::InvalidInput);
  EXPECT_NE(Result.message().find("fault plan"), std::string::npos);
}

TEST(SessionTest, MultiDeviceParallelEndToEnd) {
  // The facade drives the whole multi-device story: partition a chain
  // across devices, simulate it on the parallel engine, validate.
  Session S = Session::fromProgram(jacobi3dChain(6, 4, 6, 6));
  S.unconstrainedMemory(true).engine(sim::SimEngine::Parallel);
  S.pipelineOptions().Partitioning.TargetUtilization = 1.0;
  S.pipelineOptions().Partitioning.Device.DSPs = 7 * 3;
  S.pipelineOptions().Partitioning.MaxDevices = 64;
  auto Result = S.run();
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Placement.numDevices(), 2u);
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Stats.Engine, "parallel");
  EXPECT_GT(Result->Simulation.Stats.ParallelEpochs, 0);
}
