//===- tests/tuner_test.cpp - Mapping autotuner tests --------------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The mapping autotuner (src/tuner/): design-space enumeration, the
// fusion-level knob, seeded-search determinism, Pareto-front invariants,
// feasibility of every emitted plan against the resource and deadlock
// analyses, the predicted-vs-simulated error bound, and tuned-vs-default
// speedups on the paper workloads.
//
//===----------------------------------------------------------------------===//

#include "tuner/Tuner.h"

#include "runtime/Session.h"
#include "sdfg/StencilFusion.h"
#include "support/Json.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace stencilflow;
using namespace stencilflow::tuner;

namespace {

/// Model error bound asserted on the paper workloads (documented in
/// docs/autotuner.md): with unconstrained memory the analytic model and
/// the simulator agree to within this percentage on every simulated
/// candidate, and exactly on single-device plans.
constexpr double ModelErrorBoundPct = 10.0;

/// Small paper workloads, sized so a full tuning run (search + top-K
/// simulation) stays in unit-test territory.
StencilProgram smallJacobi() {
  return workloads::jacobi3dChain(3, 4, 8, 16);
}
StencilProgram smallDiffusion() {
  return workloads::diffusion2dChain(3, 16, 32);
}

PipelineOptions baseOptions() {
  PipelineOptions Base;
  Base.Simulator.UnconstrainedMemory = true;
  return Base;
}

TuningOutcome tuneOrDie(StencilProgram Program, const TuneOptions &Options,
                        const PipelineOptions &Base = baseOptions()) {
  Expected<TuningOutcome> Out = tuneProgram(Program, Base, Options);
  EXPECT_TRUE(Out) << (Out ? "" : Out.message());
  return Out.takeValue();
}

/// Flattens the observable search trajectory for determinism comparisons.
std::string trajectoryOf(const TuningReport &Report) {
  std::string Out = Report.SearchKind + ";";
  for (const CandidateRecord &R : Report.Candidates)
    Out += R.Mapping.id() + ":" + std::to_string(R.Round) +
           (R.Cost.Feasible ? "" : "!") + (R.Simulated ? "*" : "") + ";";
  if (const CandidateRecord *Best = Report.best())
    Out += "best=" + Best->Mapping.id();
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fusion-level knob (sdfg::fuseStencilsUpTo)
//===----------------------------------------------------------------------===//

TEST(TunerTest, FusionLevelsArePrefixesOfAggressive) {
  // Level k must reproduce the first k steps of the aggressive pass;
  // level >= max degenerates to fuseAllStencils; level 0 is a no-op.
  StencilProgram Probe = smallDiffusion();
  Expected<FusionReport> All = fuseAllStencils(Probe);
  ASSERT_TRUE(All) << All.message();
  ASSERT_GT(All->FusedPairs, 1);

  StencilProgram None = smallDiffusion();
  Expected<FusionReport> Zero = fuseStencilsUpTo(None, 0);
  ASSERT_TRUE(Zero) << Zero.message();
  EXPECT_EQ(Zero->FusedPairs, 0);
  EXPECT_EQ(None.Nodes.size(), smallDiffusion().Nodes.size());

  for (int Level = 1; Level <= All->FusedPairs; ++Level) {
    StencilProgram Partial = smallDiffusion();
    Expected<FusionReport> Report = fuseStencilsUpTo(Partial, Level);
    ASSERT_TRUE(Report) << Report.message();
    EXPECT_EQ(Report->FusedPairs, Level);
    // The log must be a prefix of the aggressive trajectory.
    ASSERT_LE(Report->Log.size(), All->Log.size());
    for (size_t I = 0; I != Report->Log.size(); ++I)
      EXPECT_EQ(Report->Log[I], All->Log[I]) << "step " << I;
    EXPECT_EQ(Partial.Nodes.size(),
              smallDiffusion().Nodes.size() - static_cast<size_t>(Level));
  }
}

//===----------------------------------------------------------------------===//
// Design space
//===----------------------------------------------------------------------===//

TEST(TunerTest, DesignSpaceRespectsDivisibilityAndCaps) {
  StencilProgram P = workloads::diffusion2dChain(2, 16, 12); // I = 12.
  Expected<DesignSpace> Space =
      DesignSpace::enumerate(P, DesignSpaceOptions(), /*MaxDevicesCap=*/4);
  ASSERT_TRUE(Space) << Space.message();
  // Of {1,2,4,8} only the divisors of 12 survive.
  EXPECT_EQ(Space->vectorWidths(), (std::vector<int>{1, 2, 4}));
  for (int D : Space->deviceCounts())
    EXPECT_LE(D, 4);
  // Without an explicit engine or temporal axis the space keeps a single
  // tier and degree 1, so its size (and every candidate id) is unchanged
  // from the 4-axis days.
  EXPECT_EQ(Space->kernelEngines(),
            (std::vector<compute::KernelEngine>{
                compute::KernelEngine::Specialized}));
  EXPECT_EQ(Space->temporalDegrees(), (std::vector<int>{1}));
  EXPECT_EQ(Space->size(), Space->vectorWidths().size() *
                               Space->fusionLevels().size() *
                               Space->deviceCounts().size() *
                               Space->targetUtilizations().size() *
                               Space->temporalDegrees().size() *
                               Space->kernelEngines().size());
  // Enumeration order is deterministic lexicographic.
  std::vector<std::string> Ids;
  for (const CandidateMapping &M : Space->candidates())
    Ids.push_back(M.id());
  EXPECT_TRUE(std::adjacent_find(Ids.begin(), Ids.end()) == Ids.end());
}

TEST(TunerTest, KernelEngineAxisExpandsTheSpace) {
  StencilProgram P = workloads::diffusion2dChain(2, 16, 12);
  DesignSpaceOptions Options;
  Options.KernelEngines = {compute::KernelEngine::Specialized,
                           compute::KernelEngine::Jit,
                           compute::KernelEngine::Auto};
  Expected<DesignSpace> Space =
      DesignSpace::enumerate(P, Options, /*MaxDevicesCap=*/4);
  ASSERT_TRUE(Space) << Space.message();
  EXPECT_EQ(Space->kernelEngines().size(), 3u);
  EXPECT_EQ(Space->size(), Space->vectorWidths().size() *
                               Space->fusionLevels().size() *
                               Space->deviceCounts().size() *
                               Space->targetUtilizations().size() * 3u);
  // Ids stay unique, and only non-default engines carry the -K suffix —
  // the specialized candidates keep their golden 4-axis ids.
  std::vector<std::string> Ids;
  size_t Suffixed = 0;
  for (const CandidateMapping &M : Space->candidates()) {
    Ids.push_back(M.id());
    bool HasSuffix = M.id().find("-K") != std::string::npos;
    EXPECT_EQ(HasSuffix,
              M.KernelExec != compute::KernelEngine::Specialized)
        << M.id();
    Suffixed += HasSuffix ? 1 : 0;
  }
  EXPECT_EQ(Suffixed, Space->size() / 3 * 2);
  std::sort(Ids.begin(), Ids.end());
  EXPECT_TRUE(std::adjacent_find(Ids.begin(), Ids.end()) == Ids.end());

  // closestIndices snaps the engine axis to an exact match.
  size_t Index[6];
  Space->closestIndices(
      CandidateMapping{1, 0, 1, 0.85, 1, compute::KernelEngine::Auto},
      Index);
  EXPECT_EQ(Space->at(Index[0], Index[1], Index[2], Index[3], Index[4],
                      Index[5]).KernelExec,
            compute::KernelEngine::Auto);
}

TEST(TunerTest, TemporalDegreeAxisExpandsTheSpace) {
  StencilProgram P = workloads::diffusion2dChain(2, 16, 12);
  DesignSpaceOptions Options;
  Options.TemporalDegrees = {1, 2, 4};
  Expected<DesignSpace> Space =
      DesignSpace::enumerate(P, Options, /*MaxDevicesCap=*/4);
  ASSERT_TRUE(Space) << Space.message();
  EXPECT_EQ(Space->temporalDegrees(), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(Space->size(), Space->vectorWidths().size() *
                               Space->fusionLevels().size() *
                               Space->deviceCounts().size() *
                               Space->targetUtilizations().size() * 3u);
  // Ids stay unique, and only degrees above 1 carry the -T suffix — the
  // degree-1 candidates keep their golden ids from the smaller spaces.
  std::vector<std::string> Ids;
  size_t Suffixed = 0;
  for (const CandidateMapping &M : Space->candidates()) {
    Ids.push_back(M.id());
    bool HasSuffix = M.id().find("-T") != std::string::npos;
    EXPECT_EQ(HasSuffix, M.TemporalDegree > 1) << M.id();
    Suffixed += HasSuffix ? 1 : 0;
  }
  EXPECT_EQ(Suffixed, Space->size() / 3 * 2);
  std::sort(Ids.begin(), Ids.end());
  EXPECT_TRUE(std::adjacent_find(Ids.begin(), Ids.end()) == Ids.end());

  // closestIndices snaps the degree axis to the nearest value.
  size_t Index[6];
  Space->closestIndices(
      CandidateMapping{1, 0, 1, 0.85, 4, compute::KernelEngine::Specialized},
      Index);
  EXPECT_EQ(Space->at(Index[0], Index[1], Index[2], Index[3], Index[4],
                      Index[5]).TemporalDegree,
            4);

  // applyMapping unrolls: a degree-4 mapping quadruples the node count
  // (diffusion2dChain(2) has no dead copies — both steps feed the chain).
  CandidateMapping Unrolled;
  Unrolled.TemporalDegree = 4;
  Expected<StencilProgram> Applied = applyMapping(P, Unrolled);
  ASSERT_TRUE(Applied) << Applied.message();
  EXPECT_EQ(Applied->Nodes.size(), P.Nodes.size() * 4);
  EXPECT_EQ(Applied->TimeLoop.size(), P.TimeLoop.size());
}

TEST(TunerTest, TemporalAxisRequiresTimeLoopBindings) {
  StencilProgram P = workloads::diffusion2dChain(2, 16, 12);
  P.TimeLoop.clear();
  DesignSpaceOptions Options;
  Options.TemporalDegrees = {1, 2};
  Expected<DesignSpace> Space =
      DesignSpace::enumerate(P, Options, /*MaxDevicesCap=*/4);
  ASSERT_FALSE(Space);
  EXPECT_EQ(Space.code(), ErrorCode::InvalidInput);
  // Degree 1 alone stays legal on a loop-free program.
  Options.TemporalDegrees = {1};
  EXPECT_TRUE(DesignSpace::enumerate(P, Options, 4));
}

TEST(TunerTest, ExplicitAxisVectorsRejectMalformedEntries) {
  // Satellite contract: explicitly provided axis vectors are validated —
  // non-positive entries and duplicates are typed InvalidInput errors,
  // not silently enumerated (or silently dropped like derived defaults).
  StencilProgram P = workloads::diffusion2dChain(2, 16, 12);
  auto Enumerate = [&](const DesignSpaceOptions &O) {
    return DesignSpace::enumerate(P, O, /*MaxDevicesCap=*/4);
  };

  struct BadCase {
    const char *Label;
    DesignSpaceOptions Options;
  };
  std::vector<BadCase> Bad;
  Bad.push_back({"zero width", {}});
  Bad.back().Options.VectorWidths = {0, 1};
  Bad.push_back({"duplicate width", {}});
  Bad.back().Options.VectorWidths = {2, 2};
  Bad.push_back({"negative fusion level", {}});
  Bad.back().Options.FusionLevels = {-1};
  Bad.push_back({"duplicate fusion level", {}});
  Bad.back().Options.FusionLevels = {0, 0};
  Bad.push_back({"zero device count", {}});
  Bad.back().Options.DeviceCounts = {0};
  Bad.push_back({"duplicate device count", {}});
  Bad.back().Options.DeviceCounts = {2, 2};
  Bad.push_back({"zero utilization", {}});
  Bad.back().Options.TargetUtilizations = {0.0};
  Bad.push_back({"utilization above one", {}});
  Bad.back().Options.TargetUtilizations = {1.5};
  Bad.push_back({"duplicate utilization", {}});
  Bad.back().Options.TargetUtilizations = {0.85, 0.85};
  Bad.push_back({"zero temporal degree", {}});
  Bad.back().Options.TemporalDegrees = {0};
  Bad.push_back({"negative temporal degree", {}});
  Bad.back().Options.TemporalDegrees = {-2};
  Bad.push_back({"duplicate temporal degree", {}});
  Bad.back().Options.TemporalDegrees = {2, 2};
  for (const BadCase &C : Bad) {
    Expected<DesignSpace> Space = Enumerate(C.Options);
    EXPECT_FALSE(Space) << C.Label;
    if (!Space)
      EXPECT_EQ(Space.code(), ErrorCode::InvalidInput) << C.Label;
  }

  // Out-of-range-but-positive entries in explicit vectors keep the silent
  // per-program filtering (a width of 5 does not divide 12; a device
  // count above the cap is dropped) — those are program facts, not
  // malformed configuration.
  DesignSpaceOptions Filtered;
  Filtered.VectorWidths = {1, 5};
  Filtered.DeviceCounts = {1, 8};
  Expected<DesignSpace> Space = Enumerate(Filtered);
  ASSERT_TRUE(Space) << Space.message();
  EXPECT_EQ(Space->vectorWidths(), (std::vector<int>{1}));
  EXPECT_EQ(Space->deviceCounts(), (std::vector<int>{1}));
}

TEST(TunerTest, TunesAcrossKernelEngineAxis) {
  // End-to-end with the engine axis opted in: the tuned plan must carry a
  // concrete engine, the report serializes it per candidate, and the run
  // validates. The axis multiplies the space, so keep the budget small.
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 12;
  Opts.TopK = 2;
  Opts.Space.KernelEngines = {compute::KernelEngine::Specialized,
                              compute::KernelEngine::Auto};
  TuningOutcome Out = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_TRUE(Out.BestRun.ValidationPassed);
  bool SawEngine = false;
  for (const CandidateRecord &R : Out.Report.Candidates)
    SawEngine |= R.Mapping.KernelExec != compute::KernelEngine::Specialized;
  // The beam explores both engine values of at least one neighborhood.
  EXPECT_TRUE(SawEngine);

  Expected<json::Value> Doc = json::parse(Out.Report.toJson());
  ASSERT_TRUE(Doc) << Doc.message();
  for (const json::Value &V :
       Doc->getObject().get("candidates")->getArray())
    EXPECT_TRUE(V.getObject().contains("kernel_engine"));
}

TEST(TunerTest, TunesAcrossTemporalDegreeAxis) {
  // End-to-end with the temporal axis opted in under the constrained
  // memory model (where blocking actually pays): the search explores
  // degrees above 1, the winning plan validates bit-exactly, the report
  // serializes temporal_degree per candidate, and reruns with the same
  // seed are bit-identical.
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 16;
  Opts.TopK = 3;
  Opts.Space.TemporalDegrees = {1, 2, 4};
  PipelineOptions Base = baseOptions();
  Base.Simulator.UnconstrainedMemory = false;
  TuningOutcome Out = tuneOrDie(smallDiffusion(), Opts, Base);
  EXPECT_TRUE(Out.BestRun.ValidationPassed);
  bool SawDegree = false;
  for (const CandidateRecord &R : Out.Report.Candidates) {
    SawDegree |= R.Mapping.TemporalDegree > 1;
    // The ranking objective is per-timestep: feasible degree-T
    // candidates report PredictedCycles amortized over T in seconds.
    if (R.Cost.Feasible)
      EXPECT_NEAR(R.Cost.PredictedSeconds,
                  static_cast<double>(R.Cost.PredictedCycles) /
                      (R.Cost.FrequencyMHz * 1e6 *
                       R.Mapping.TemporalDegree),
                  1e-12)
          << R.Mapping.id();
  }
  EXPECT_TRUE(SawDegree);

  Expected<json::Value> Doc = json::parse(Out.Report.toJson());
  ASSERT_TRUE(Doc) << Doc.message();
  for (const json::Value &V :
       Doc->getObject().get("candidates")->getArray()) {
    const json::Object &Obj = V.getObject();
    ASSERT_TRUE(Obj.contains("temporal_degree"));
    int Degree = static_cast<int>(Obj.get("temporal_degree")->getInteger());
    std::string Id = Obj.get("id")->getString();
    EXPECT_EQ(Degree > 1, Id.find("-T") != std::string::npos) << Id;
  }

  TuningOutcome Again = tuneOrDie(smallDiffusion(), Opts, Base);
  EXPECT_EQ(Out.Best.id(), Again.Best.id());
  EXPECT_EQ(trajectoryOf(Out.Report), trajectoryOf(Again.Report));
  EXPECT_EQ(Out.Report.toJson(), Again.Report.toJson());
}

TEST(TunerTest, ApplyMappingRejectsIllegalWidth) {
  StencilProgram P = workloads::diffusion2dChain(2, 16, 12);
  Expected<StencilProgram> Applied =
      applyMapping(P, CandidateMapping{/*W=*/5, 0, 1, 0.85});
  EXPECT_FALSE(Applied);
}

//===----------------------------------------------------------------------===//
// Seeded-search determinism
//===----------------------------------------------------------------------===//

TEST(TunerTest, SameSeedSameSpaceSamePlanAndReport) {
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 24; // Below the space size: beam search.
  Opts.Search.Seed = 1234;
  TuningOutcome A = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_EQ(A.Report.SearchKind, "beam");

  // Re-run with the same seed but a different worker count: the plan, the
  // trajectory, and the serialized report must be bit-identical.
  Opts.Workers = 3;
  TuningOutcome B = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_EQ(A.Best.id(), B.Best.id());
  EXPECT_EQ(trajectoryOf(A.Report), trajectoryOf(B.Report));
  EXPECT_EQ(A.Report.toJson(), B.Report.toJson());

  // The seed reaches the report (the CLI plumbs --seed/--tune-seed into
  // Search.Seed; a hardcoded seed would make those flags silent no-ops).
  EXPECT_EQ(A.Report.Seed, 1234u);
  Opts.Workers = 0;
  Opts.Search.Seed = 4321;
  TuningOutcome C = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_EQ(C.Report.Seed, 4321u);
  // And identical (seed, space) stays deterministic for the new seed too.
  TuningOutcome D = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_EQ(trajectoryOf(C.Report), trajectoryOf(D.Report));
  EXPECT_EQ(C.Report.toJson(), D.Report.toJson());
}

TEST(TunerTest, ExhaustiveSweepCoversTheWholeSpace) {
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 4096;
  TuningOutcome Out = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_EQ(Out.Report.SearchKind, "exhaustive");
  EXPECT_EQ(Out.Report.Explored, Out.Report.SpaceSize);
  // Exhaustive runs are trivially seed-independent (the report still
  // records the seed, so compare the trajectory, not the raw JSON).
  Opts.Search.Seed = 999;
  TuningOutcome Again = tuneOrDie(smallDiffusion(), Opts);
  EXPECT_EQ(Out.Best.id(), Again.Best.id());
  EXPECT_EQ(trajectoryOf(Out.Report), trajectoryOf(Again.Report));
}

//===----------------------------------------------------------------------===//
// Pareto-front invariants
//===----------------------------------------------------------------------===//

TEST(TunerTest, ParetoFrontHasNoDominatedCandidate) {
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 4096;
  TuningOutcome Out = tuneOrDie(smallJacobi(), Opts);
  const std::vector<CandidateRecord> &C = Out.Report.Candidates;
  const std::vector<size_t> &Front = Out.Report.ParetoFront;
  ASSERT_FALSE(Front.empty());

  auto Dominates = [](const CandidateCost &A, const CandidateCost &B) {
    return A.PredictedSeconds <= B.PredictedSeconds &&
           A.Devices <= B.Devices &&
           A.PeakUtilization <= B.PeakUtilization &&
           (A.PredictedSeconds < B.PredictedSeconds ||
            A.Devices < B.Devices || A.PeakUtilization < B.PeakUtilization);
  };
  for (size_t I : Front) {
    ASSERT_LT(I, C.size());
    EXPECT_TRUE(C[I].Cost.Feasible);
    for (const CandidateRecord &Other : C)
      if (Other.Cost.Feasible) {
        EXPECT_FALSE(Dominates(Other.Cost, C[I].Cost))
            << Other.Mapping.id() << " dominates front member "
            << C[I].Mapping.id();
      }
  }
  // Conversely, every feasible non-member is dominated by someone.
  for (size_t I = 0; I != C.size(); ++I) {
    if (!C[I].Cost.Feasible ||
        std::find(Front.begin(), Front.end(), I) != Front.end())
      continue;
    bool Dominated = false;
    for (const CandidateRecord &Other : C)
      Dominated |= Other.Cost.Feasible && Dominates(Other.Cost, C[I].Cost);
    EXPECT_TRUE(Dominated) << C[I].Mapping.id();
  }
}

//===----------------------------------------------------------------------===//
// Every emitted plan is feasible
//===----------------------------------------------------------------------===//

TEST(TunerTest, FeasibleCandidatesPassResourceAndDeadlockChecks) {
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 4096;
  PipelineOptions Base = baseOptions();
  StencilProgram Program = smallJacobi();
  TuningOutcome Out = tuneOrDie(Program.clone(), Opts, Base);

  for (const CandidateRecord &R : Out.Report.Candidates) {
    if (!R.Cost.Feasible)
      continue;
    // Re-derive the plan from scratch: the mapping must re-apply, the
    // buffer analysis must prove deadlock freedom, and the partition must
    // respect the ResourceModel capacity on every device.
    Expected<StencilProgram> Applied = applyMapping(Program, R.Mapping);
    ASSERT_TRUE(Applied) << R.Mapping.id() << ": " << Applied.message();
    Expected<CompiledProgram> Compiled =
        CompiledProgram::compile(Applied.takeValue(), Base.Kernel);
    ASSERT_TRUE(Compiled) << R.Mapping.id() << ": " << Compiled.message();
    Expected<DataflowAnalysis> Dataflow =
        analyzeDataflow(*Compiled, Base.Latencies);
    ASSERT_TRUE(Dataflow) << R.Mapping.id() << ": " << Dataflow.message();

    PartitionOptions PartOpts = Base.Partitioning;
    PartOpts.MaxDevices = R.Mapping.MaxDevices;
    PartOpts.TargetUtilization = R.Mapping.TargetUtilization;
    Expected<Partition> Placement =
        partitionProgram(*Compiled, *Dataflow, PartOpts);
    ASSERT_TRUE(Placement) << R.Mapping.id() << ": " << Placement.message();
    EXPECT_EQ(static_cast<int>(Placement->numDevices()), R.Cost.Devices)
        << R.Mapping.id();
    EXPECT_LE(R.Cost.Devices, R.Mapping.MaxDevices) << R.Mapping.id();
    for (const DevicePlacement &Device : Placement->Devices)
      EXPECT_TRUE(Device.Resources.fitsWithin(PartOpts.Device))
          << R.Mapping.id();
    EXPECT_LE(R.Cost.PeakUtilization, 1.0) << R.Mapping.id();
  }
}

//===----------------------------------------------------------------------===//
// Predicted vs simulated, tuned vs default
//===----------------------------------------------------------------------===//

TEST(TunerTest, ModelErrorWithinBoundAndTunedBeatsDefault) {
  // Acceptance criteria on two paper workloads: the tuned plan's
  // simulated cycles beat the default (W=1, unfused) mapping, the winning
  // plan validates bit-exactly (Tolerance = 0) against the reference
  // executor, and the model error stays within the documented bound.
  struct Case {
    const char *Name;
    StencilProgram Program;
  } Cases[] = {{"jacobi3d", smallJacobi()},
               {"diffusion2d", smallDiffusion()}};
  for (Case &C : Cases) {
    TuneOptions Opts;
    Opts.TopK = 3;
    TuningOutcome Out = tuneOrDie(std::move(C.Program), Opts);
    const CandidateRecord *Best = Out.Report.best();
    const CandidateRecord *Default = Out.Report.defaultCandidate();
    ASSERT_NE(Best, nullptr) << C.Name;
    ASSERT_NE(Default, nullptr) << C.Name;
    ASSERT_TRUE(Default->Simulated) << C.Name;

    EXPECT_TRUE(Best->ValidationPassed) << C.Name;
    EXPECT_TRUE(Out.BestRun.ValidationPassed) << C.Name;
    EXPECT_LT(Best->SimulatedCycles, Default->SimulatedCycles) << C.Name;

    for (const CandidateRecord &R : Out.Report.Candidates) {
      if (!R.Simulated || !R.SimulationError.empty())
        continue;
      EXPECT_LE(R.ModelErrorPct, ModelErrorBoundPct)
          << C.Name << " " << R.Mapping.id();
      // Single-device plans under unconstrained memory are predicted
      // exactly (the Eq. 1 invariant the simulator asserts).
      if (R.Cost.Devices == 1) {
        EXPECT_EQ(R.Cost.PredictedCycles, R.SimulatedCycles)
            << C.Name << " " << R.Mapping.id();
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Slowdown calibration
//===----------------------------------------------------------------------===//

namespace {

/// A synthetic simulated candidate for calibration fitting.
CandidateRecord calibrationSample(double MemorySlowdown,
                                  double NetworkSlowdown,
                                  int64_t ModelCycles,
                                  int64_t PredictedCycles,
                                  int64_t SimulatedCycles) {
  CandidateRecord R;
  R.Cost.Feasible = true;
  R.Cost.ModelCycles = ModelCycles;
  R.Cost.PredictedCycles = PredictedCycles;
  R.Cost.MemorySlowdown = MemorySlowdown;
  R.Cost.NetworkSlowdown = NetworkSlowdown;
  R.Simulated = true;
  R.SimulatedCycles = SimulatedCycles;
  R.ModelErrorPct = 100.0 *
                    std::abs(static_cast<double>(PredictedCycles) -
                             static_cast<double>(SimulatedCycles)) /
                    static_cast<double>(SimulatedCycles);
  return R;
}

} // namespace

TEST(TunerTest, CalibrationFitsSyntheticResiduals) {
  // Two memory-bound samples whose simulator needs exactly half the
  // model's correction, and one network-bound sample needing a quarter:
  // the closed-form fit must recover 0.5 / 0.25 and drive the calibrated
  // error to zero.
  TuningReport Report;
  Report.Candidates.push_back(calibrationSample(2.0, 1.0, 1000, 2000, 1500));
  Report.Candidates.push_back(calibrationSample(2.0, 1.0, 2000, 3000, 2500));
  Report.Candidates.push_back(calibrationSample(1.0, 3.0, 1000, 1400, 1100));
  calibrateSlowdowns(Report);

  const SlowdownCalibration &C = Report.Calibration;
  EXPECT_TRUE(C.Fitted);
  EXPECT_EQ(C.MemorySamples, 2);
  EXPECT_EQ(C.NetworkSamples, 1);
  EXPECT_NEAR(C.MemoryFactor, 0.5, 1e-9);
  EXPECT_NEAR(C.NetworkFactor, 0.25, 1e-9);
  EXPECT_GT(C.MeanErrorPctBefore, 10.0);
  EXPECT_NEAR(C.MeanErrorPctAfter, 0.0, 1e-9);
  EXPECT_NEAR(Report.Candidates[0].CalibratedPredictedCycles, 1500.0, 1e-9);
  EXPECT_NEAR(Report.Candidates[2].CalibratedPredictedCycles, 1100.0, 1e-9);
}

TEST(TunerTest, CalibrationClampsNegativeFits) {
  // A simulator *faster* than the uncorrected model would fit a negative
  // factor; the calibration clamps to 0 (drop the correction entirely).
  TuningReport Report;
  Report.Candidates.push_back(calibrationSample(2.0, 1.0, 1000, 2000, 800));
  calibrateSlowdowns(Report);
  EXPECT_TRUE(Report.Calibration.Fitted);
  EXPECT_EQ(Report.Calibration.MemoryFactor, 0.0);
  EXPECT_NEAR(Report.Candidates[0].CalibratedPredictedCycles, 1000.0, 1e-9);
}

TEST(TunerTest, CalibrationSkipsReportsWithoutSimulations) {
  TuningReport Report;
  CandidateRecord R;
  R.Cost.Feasible = true;
  R.Cost.ModelCycles = 100;
  R.Cost.PredictedCycles = 150;
  Report.Candidates.push_back(std::move(R)); // Never simulated.
  calibrateSlowdowns(Report);
  EXPECT_FALSE(Report.Calibration.Fitted);
  EXPECT_EQ(Report.Calibration.MemorySamples, 0);
  EXPECT_EQ(Report.Candidates[0].CalibratedPredictedCycles, 0.0);
}

TEST(TunerTest, CalibrationPopulatesHighOrderTuningReport) {
  // End to end on a high-order workload: tuneProgram calibrates
  // automatically, fills per-candidate calibrated predictions, and
  // serializes the calibration block.
  TuneOptions Opts;
  Opts.TopK = 3;
  TuningOutcome Out =
      tuneOrDie(workloads::wave2dChain(2, 1, 16, 32), Opts);
  for (const CandidateRecord &R : Out.Report.Candidates) {
    if (!R.Simulated || !R.SimulationError.empty())
      continue;
    EXPECT_GT(R.CalibratedPredictedCycles, 0.0) << R.Mapping.id();
  }
  Expected<json::Value> Doc = json::parse(Out.Report.toJson());
  ASSERT_TRUE(Doc) << Doc.message();
  const json::Object &Root = Doc->getObject();
  ASSERT_TRUE(Root.contains("calibration"));
  const json::Object &Cal = Root.get("calibration")->getObject();
  EXPECT_TRUE(Cal.contains("fitted"));
  EXPECT_TRUE(Cal.contains("memory_factor"));
  EXPECT_TRUE(Cal.contains("network_factor"));
  EXPECT_TRUE(Cal.contains("mean_error_pct_before"));
  EXPECT_TRUE(Cal.contains("mean_error_pct_after"));
}

//===----------------------------------------------------------------------===//
// Report serialization and facade
//===----------------------------------------------------------------------===//

TEST(TunerTest, JsonReportParsesAndMatchesTheReport) {
  TuneOptions Opts;
  Opts.Search.CandidateBudget = 24;
  TuningOutcome Out = tuneOrDie(smallDiffusion(), Opts);

  Expected<json::Value> Doc = json::parse(Out.Report.toJson());
  ASSERT_TRUE(Doc) << Doc.message();
  ASSERT_TRUE(Doc->isObject());
  const json::Object &Root = Doc->getObject();
  EXPECT_EQ(Root.get("program")->getString(), Out.Report.ProgramName);
  EXPECT_EQ(Root.get("search")->getString(), Out.Report.SearchKind);
  ASSERT_TRUE(Root.get("candidates")->isArray());
  EXPECT_EQ(Root.get("candidates")->getArray().size(),
            Out.Report.Explored);
  EXPECT_EQ(Root.get("best")->getString(), Out.Best.id());
  EXPECT_EQ(static_cast<int>(Root.get("best_index")->getInteger()),
            Out.Report.BestIndex);
  // Prune reasons are serialized for infeasible candidates.
  for (const json::Value &V : Root.get("candidates")->getArray()) {
    const json::Object &Obj = V.getObject();
    if (!Obj.get("feasible")->getBoolean())
      EXPECT_TRUE(Obj.contains("prune_reason"));
    else
      EXPECT_TRUE(Obj.contains("predicted_cycles"));
  }
}

TEST(TunerTest, SessionFacadeTunes) {
  Session S = Session::fromProgram(smallDiffusion());
  S.unconstrainedMemory(true);
  TuneOptions Opts;
  Opts.TopK = 2;
  Expected<TuningOutcome> Out = S.tune(Opts);
  ASSERT_TRUE(Out) << Out.message();
  EXPECT_TRUE(Out->BestRun.ValidationPassed);
  EXPECT_GT(Out->Report.SimulatedCount, 0u);
  // The no-simulate path ranks analytically and leaves BestRun empty.
  Opts.Simulate = false;
  Expected<TuningOutcome> Analytic = S.tune(Opts);
  ASSERT_TRUE(Analytic) << Analytic.message();
  EXPECT_EQ(Analytic->Report.SimulatedCount, 0u);
  EXPECT_GE(Analytic->Report.BestIndex, 0);
}
