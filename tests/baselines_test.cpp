//===- tests/baselines_test.cpp - Comparator model tests -----------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/Comparators.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::baselines;

TEST(PlatformTest, SpecsMatchPaperDatasheets) {
  EXPECT_DOUBLE_EQ(PlatformSpec::xeon12c().PeakBandwidthBytesPerSec, 68e9);
  EXPECT_DOUBLE_EQ(PlatformSpec::p100().PeakBandwidthBytesPerSec, 732e9);
  EXPECT_DOUBLE_EQ(PlatformSpec::v100().PeakBandwidthBytesPerSec, 900e9);
  EXPECT_DOUBLE_EQ(PlatformSpec::p100().DieAreaMM2, 610.0);
  EXPECT_DOUBLE_EQ(PlatformSpec::v100().DieAreaMM2, 815.0);
  EXPECT_DOUBLE_EQ(PlatformSpec::stratix10DieAreaMM2(), 700.0);
}

TEST(PlatformTest, RooflineOrderingMatchesTab2) {
  // At the horizontal-diffusion intensity (65/18 Op/B) the paper measures
  // V100 > P100 > Xeon; the model must reproduce that ordering and the
  // rough magnitudes (Tab. II: 849 / 210 / 32 GOp/s).
  double Intensity = 65.0 / 18.0;
  double TotalOps = 170e9 * 1e-3; // Arbitrary scale; ordering matters.
  PlatformResult Xeon =
      modelPlatform(PlatformSpec::xeon12c(), TotalOps, Intensity);
  PlatformResult P100 =
      modelPlatform(PlatformSpec::p100(), TotalOps, Intensity);
  PlatformResult V100 =
      modelPlatform(PlatformSpec::v100(), TotalOps, Intensity);
  EXPECT_GT(V100.OpsPerSecond, P100.OpsPerSecond);
  EXPECT_GT(P100.OpsPerSecond, Xeon.OpsPerSecond);
  EXPECT_NEAR(Xeon.OpsPerSecond / 1e9, 32.0, 5.0);
  EXPECT_NEAR(P100.OpsPerSecond / 1e9, 210.0, 15.0);
  EXPECT_NEAR(V100.OpsPerSecond / 1e9, 849.0, 40.0);
}

TEST(PlatformTest, RuntimeScalesWithWork) {
  double Intensity = 65.0 / 18.0;
  PlatformResult Small =
      modelPlatform(PlatformSpec::v100(), 1e9, Intensity);
  PlatformResult Large =
      modelPlatform(PlatformSpec::v100(), 2e9, Intensity);
  EXPECT_NEAR(Large.RuntimeSeconds / Small.RuntimeSeconds, 2.0, 1e-9);
}

TEST(PlatformTest, ComputeRoofCapsHighIntensity) {
  // At very high intensity the compute peak binds, not bandwidth.
  PlatformResult Result =
      modelPlatform(PlatformSpec::v100(), 1e9, 1e6);
  EXPECT_DOUBLE_EQ(Result.RooflineBound,
                   PlatformSpec::v100().PeakOpsPerSec);
}

TEST(PlatformTest, SiliconEfficiencyMatchesSec9C) {
  // V100 at 849 GOp/s over 815 mm^2 = 1.04 GOp/s/mm^2 (Sec. IX-C).
  double Intensity = 65.0 / 18.0;
  PlatformResult V100 =
      modelPlatform(PlatformSpec::v100(), 1e9, Intensity);
  EXPECT_NEAR(V100.SiliconEfficiency, 1.04, 0.08);
}

TEST(PublishedTest, LiteratureRowsPresent) {
  auto Rows = publishedStencilResults();
  ASSERT_GE(Rows.size(), 6u);
  bool FoundZohouri2D = false, FoundSODA = false;
  for (const PublishedResult &Row : Rows) {
    if (Row.Name.find("Zohouri") != std::string::npos &&
        Row.GOpPerSecond == 913.0)
      FoundZohouri2D = true;
    if (Row.Name.find("SODA") != std::string::npos)
      FoundSODA = true;
  }
  EXPECT_TRUE(FoundZohouri2D);
  EXPECT_TRUE(FoundSODA);
}

TEST(TemporalBlockingTest, ProducesHundredsOfGops) {
  // Diffusion 2D with W=16: the baseline should land in the high hundreds
  // of GOp/s, the regime of Zohouri et al.'s published 913 GOp/s.
  TemporalBlockingEstimate Estimate =
      estimateTemporalBlocking(/*FlopsPerCell=*/9, /*DSPsPerCell=*/9,
                               /*ALMsPerCell=*/900, /*Dimensions=*/2);
  EXPECT_GT(Estimate.EffectiveGOpPerSecond, 300.0);
  EXPECT_LT(Estimate.EffectiveGOpPerSecond, 2000.0);
  EXPECT_GT(Estimate.TemporalDegree, 4);
  EXPECT_GT(Estimate.RedundancyFactor, 1.0);
}

TEST(TemporalBlockingTest, ResourcesBounded) {
  TemporalBlockingEstimate Estimate =
      estimateTemporalBlocking(9, 9, 900, 2);
  DeviceResources Device = DeviceResources::stratix10GX2800();
  EXPECT_LE(Estimate.Resources.DSPs, Device.DSPs);
  EXPECT_LE(Estimate.Resources.ALMs, Device.ALMs);
}

TEST(TemporalBlockingTest, RedundancyGrowsWithDepth) {
  TemporalBlockingConfig Small;
  Small.BlockEdge = 128;
  TemporalBlockingConfig Large;
  Large.BlockEdge = 2048;
  TemporalBlockingEstimate WithSmallBlocks =
      estimateTemporalBlocking(9, 9, 900, 2, Small);
  TemporalBlockingEstimate WithLargeBlocks =
      estimateTemporalBlocking(9, 9, 900, 2, Large);
  // Smaller blocks waste a larger halo fraction.
  EXPECT_GT(WithSmallBlocks.RedundancyFactor,
            WithLargeBlocks.RedundancyFactor);
}
