//===- tests/pipeline_test.cpp - End-to-end pipeline tests ---------------------==//
//
// Part of the StencilFlow reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "common/TestPrograms.h"
#include "frontend/ProgramLoader.h"
#include "runtime/Pipeline.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace stencilflow;
using namespace stencilflow::testing;

TEST(PipelineTest, QuickstartFromJson) {
  const char *Json = R"({
    "name": "quickstart",
    "dimensions": [32, 32],
    "inputs": {"a": {"data": {"kind": "random", "seed": 3}}},
    "outputs": ["b"],
    "program": {
      "b": {
        "computation":
          "b = a[0,-1] + a[0,1] + a[-1,0] + a[1,0] - 4.0 * a[0,0];",
        "boundary_conditions": {"a": {"type": "constant", "value": 0.0}}
      }
    }
  })";
  auto Program = programFromJsonText(Json);
  ASSERT_TRUE(Program) << Program.message();
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.EmitCode = true;
  auto Result = runPipeline(Program.takeValue(), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Stats.Cycles, Result->Runtime.TotalCycles);
  EXPECT_FALSE(Result->Sources.empty());
  EXPECT_GT(Result->FrequencyMHz, 250.0);
  EXPECT_GT(Result->simulatedOpsPerSecond(), 0.0);
}

TEST(PipelineTest, RandomProgramsEndToEnd) {
  for (uint64_t Seed = 200; Seed <= 212; ++Seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << Seed);
    PipelineOptions Options;
    Options.Simulator.UnconstrainedMemory = true;
    auto Result = runPipeline(randomProgram(Seed), Options);
    ASSERT_TRUE(Result) << Result.message();
    EXPECT_TRUE(Result->ValidationPassed);
    EXPECT_EQ(Result->Simulation.Stats.Cycles,
              Result->Runtime.TotalCycles);
  }
}

TEST(PipelineTest, FusionOptionShrinksProgram) {
  PipelineOptions Plain;
  Plain.Simulator.UnconstrainedMemory = true;
  PipelineOptions Fused = Plain;
  Fused.FuseStencils = true;
  auto A = runPipeline(workloads::jacobi3dChain(4, 4, 8, 8), Plain);
  auto B = runPipeline(workloads::jacobi3dChain(4, 4, 8, 8), Fused);
  ASSERT_TRUE(A);
  ASSERT_TRUE(B) << B.message();
  EXPECT_EQ(A->Compiled.program().Nodes.size(), 4u);
  EXPECT_EQ(B->Compiled.program().Nodes.size(), 1u);
  EXPECT_EQ(B->FusedPairs, 3);
  EXPECT_TRUE(B->ValidationPassed);
}

TEST(PipelineTest, MultiDevicePathExercised) {
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  Options.Partitioning.TargetUtilization = 1.0;
  Options.Partitioning.Device.DSPs = 7 * 2; // Two Jacobi nodes per device.
  Options.Partitioning.MaxDevices = 8;
  Options.EmitCode = true;
  auto Result = runPipeline(workloads::jacobi3dChain(6, 4, 6, 6), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_EQ(Result->Placement.numDevices(), 3u);
  EXPECT_TRUE(Result->ValidationPassed);
  // One source per device plus the host summary.
  EXPECT_EQ(Result->Sources.size(), 4u);
}

TEST(PipelineTest, SingleDeviceOnlyFailsWhenTooLarge) {
  PipelineOptions Options;
  Options.AllowMultiDevice = false;
  Options.Partitioning.Device.DSPs = 7; // One node fits.
  Options.Partitioning.TargetUtilization = 1.0;
  auto Result = runPipeline(workloads::jacobi3dChain(4, 4, 6, 6), Options);
  ASSERT_FALSE(Result);
  EXPECT_NE(Result.message().find("partitioning"), std::string::npos);
}

TEST(PipelineTest, ConstrainedMemorySlowsHdiff) {
  // With DDR4-class bandwidth the 9-operand/cycle horizontal diffusion is
  // memory bound (Sec. IX-B); unconstrained memory must be faster.
  PipelineOptions Constrained;
  Constrained.Simulator.UnconstrainedMemory = false;
  PipelineOptions Unconstrained;
  Unconstrained.Simulator.UnconstrainedMemory = true;
  // Use W=4 so the demand (36 operands/cycle = 144 B/cycle data + 9
  // transactions of overhead) approaches the 256 B/cycle peak.
  StencilProgram P = workloads::horizontalDiffusion(4, 16, 16, 4);
  auto Slow = runPipeline(P.clone(), Constrained);
  auto Fast = runPipeline(std::move(P), Unconstrained);
  ASSERT_TRUE(Slow) << Slow.message();
  ASSERT_TRUE(Fast) << Fast.message();
  EXPECT_TRUE(Slow->ValidationPassed);
  EXPECT_GE(Slow->Simulation.Stats.Cycles, Fast->Simulation.Stats.Cycles);
}

TEST(PipelineTest, SimplifyOptionPreservesResults) {
  // A program with removable identities: simplified and plain pipelines
  // agree on the outputs, and simplification prunes operations.
  StencilProgram P;
  P.IterationSpace = Shape({12, 12});
  addInput(P, "a");
  addStencil(P, "mid", "mid = a[0, 0] * 1.0 + a[0, 1] + 0.0;");
  addStencil(P, "out", "out = 1.0 ? mid[0, 0] - 0.0 : a[0, 0];");
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));

  PipelineOptions Plain;
  Plain.Simulator.UnconstrainedMemory = true;
  PipelineOptions Simplified = Plain;
  Simplified.SimplifyCode = true;

  auto A = runPipeline(P.clone(), Plain);
  auto B = runPipeline(std::move(P), Simplified);
  ASSERT_TRUE(A) << A.message();
  ASSERT_TRUE(B) << B.message();
  EXPECT_TRUE(A->ValidationPassed);
  EXPECT_TRUE(B->ValidationPassed);
  EXPECT_LT(B->Compiled.totalCensus().total(),
            A->Compiled.totalCensus().total());
  // Identical output values.
  EXPECT_EQ(A->Simulation.Outputs.at("out"),
            B->Simulation.Outputs.at("out"));
}

TEST(PipelineTest, Float64ProgramsRunEndToEnd) {
  StencilProgram P;
  P.IterationSpace = Shape({10, 10});
  Field Input;
  Input.Name = "a";
  Input.Type = DataType::Float64;
  Input.DimensionMask = {true, true};
  Input.Source = DataSource::random(5);
  P.Inputs.push_back(std::move(Input));
  addStencil(P, "out",
             "out = a[0,-1] + a[0,1] + a[-1,0] + a[1,0] - 4.0 * a[0,0];",
             DataType::Float64,
             {{"a", BoundaryCondition::constant(0.0)}});
  P.Outputs = {"out"};
  ASSERT_FALSE(analyzeProgram(P));
  PipelineOptions Options;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result = runPipeline(std::move(P), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
}

TEST(PipelineTest, HdiffVectorized8EndToEnd) {
  PipelineOptions Options;
  Options.FuseStencils = true;
  Options.Simulator.UnconstrainedMemory = true;
  auto Result =
      runPipeline(workloads::horizontalDiffusion(4, 16, 16, 8), Options);
  ASSERT_TRUE(Result) << Result.message();
  EXPECT_TRUE(Result->ValidationPassed);
  EXPECT_EQ(Result->Simulation.Stats.Cycles, Result->Runtime.TotalCycles);
}
