#!/usr/bin/env python3
"""Perf smoke check: compare a google-benchmark JSON run against the
checked-in baseline and fail on regressions.

Because CI runners and developer machines differ in absolute speed, the
default comparison is *relative*: each benchmark's cpu_time is normalized
by the geometric mean of all benchmarks common to both runs, and the
normalized value must not exceed the baseline's by more than the
threshold (default 20%). A uniform machine-speed difference cancels out;
a single benchmark regressing against its peers does not. Use
--absolute when both runs come from the same machine.

Usage:
  check_perf.py [--threshold 0.20] [--absolute] BASELINE CURRENT
  check_perf.py --update BASELINE CURRENT     # rewrite the baseline

Exit codes: 0 ok, 1 regression found, 2 usage/IO error.
"""

import argparse
import json
import math
import os
import sys


def load_times(path):
    """Returns {benchmark name: cpu_time} from either a raw
    google-benchmark JSON dump or a baseline file written by --update."""
    try:
        with open(path) as fp:
            data = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")
    if isinstance(data.get("benchmarks"), dict):  # Baseline format.
        return {name: entry["cpu_time"]
                for name, entry in data["benchmarks"].items()}
    benches = data.get("benchmarks", [])
    # With --benchmark_repetitions the median aggregate is the robust
    # statistic; fall back to plain iterations otherwise.
    medians = {b.get("run_name", b["name"]): b["cpu_time"]
               for b in benches
               if b.get("run_type") == "aggregate"
               and b.get("aggregate_name") == "median"}
    if medians:
        return medians
    return {b["name"]: b["cpu_time"]
            for b in benches
            if b.get("run_type", "iteration") == "iteration"}


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def check_positive(times, path):
    """A zero, negative, or non-finite cpu_time (a fresh/empty/hand-edited
    BENCH file, or a benchmark that divided by zero) would crash the
    geomean or poison every ratio below — NaN in particular compares False
    against the threshold and would silently pass the whole check. Fail
    with a clear message instead."""
    bad = sorted(name for name, t in times.items()
                 if not math.isfinite(t) or t <= 0)
    if bad:
        sys.exit(f"error: non-positive or non-finite cpu_time in {path} "
                 "for: " + ", ".join(bad)
                 + " (regenerate the file; every median must be a finite "
                 "value > 0)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed slowdown fraction (default 0.20)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw cpu_time instead of "
                             "geomean-normalized values")
    parser.add_argument("--update", action="store_true",
                        help="rewrite BASELINE from CURRENT and exit")
    args = parser.parse_args()

    current = load_times(args.current)
    if not current:
        sys.exit("error: no benchmarks in " + args.current)

    if args.update:
        bench = os.path.basename(args.baseline)
        if bench.endswith("_baseline.json"):
            bench = bench[:-len("_baseline.json")]
        out = {
            "note": "Checked-in perf baseline for tools/check_perf.py. "
                    f"Regenerate with: ./build/bench/{bench} "
                    "--benchmark_format=json --benchmark_min_time=0.2 "
                    "--benchmark_repetitions=3 "
                    "--benchmark_report_aggregates_only=true > out.json && "
                    "python3 tools/check_perf.py --update "
                    f"{args.baseline} out.json",
            "benchmarks": {name: {"cpu_time": t, "time_unit": "ns"}
                           for name, t in sorted(current.items())},
        }
        with open(args.baseline, "w") as fp:
            json.dump(out, fp, indent=2)
            fp.write("\n")
        print(f"updated {args.baseline} with {len(current)} benchmarks")
        return 0

    baseline = load_times(args.baseline)
    if not baseline:
        sys.exit("error: no benchmarks in " + args.baseline)
    common = sorted(set(baseline) & set(current))
    if not common:
        sys.exit("error: no common benchmarks between baseline and current")
    check_positive({n: baseline[n] for n in common}, args.baseline)
    check_positive({n: current[n] for n in common}, args.current)
    # A name-set mismatch in either direction is a hard failure, not a
    # warning: a benchmark silently dropped from the current run is a
    # regression that would otherwise never be measured again, and a new
    # benchmark missing from the baseline skews the geomean normalization
    # for every other entry until someone notices.
    missing = sorted(set(baseline) - set(current))
    extra = sorted(set(current) - set(baseline))
    if missing or extra:
        parts = []
        if missing:
            parts.append("in baseline but not in current run: "
                         + ", ".join(missing))
        if extra:
            parts.append("in current run but not in baseline: "
                         + ", ".join(extra))
        sys.exit("error: benchmark name sets differ ("
                 + "; ".join(parts)
                 + "). Re-run the full suite, or refresh the baseline "
                 "with --update.")

    if args.absolute:
        base_norm, cur_norm = 1.0, 1.0
    else:
        base_norm = geomean([baseline[n] for n in common])
        cur_norm = geomean([current[n] for n in common])

    failed = []
    print(f"{'benchmark':<40} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name in common:
        base = baseline[name] / base_norm
        cur = current[name] / cur_norm
        ratio = cur / base
        marker = ""
        if ratio > 1.0 + args.threshold:
            failed.append(name)
            marker = "  <-- REGRESSION"
        print(f"{name:<40} {baseline[name]:>12.1f} {current[name]:>12.1f} "
              f"{ratio:>7.2f}x{marker}")

    mode = "absolute" if args.absolute else "geomean-normalized"
    if failed:
        print(f"\nFAIL: {len(failed)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} ({mode}): " + ", ".join(failed))
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"({mode}, {len(common)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
