file(REMOVE_RECURSE
  "libsf_compute.a"
)
