
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compute/Bytecode.cpp" "src/compute/CMakeFiles/sf_compute.dir/Bytecode.cpp.o" "gcc" "src/compute/CMakeFiles/sf_compute.dir/Bytecode.cpp.o.d"
  "/root/repo/src/compute/Kernel.cpp" "src/compute/CMakeFiles/sf_compute.dir/Kernel.cpp.o" "gcc" "src/compute/CMakeFiles/sf_compute.dir/Kernel.cpp.o.d"
  "/root/repo/src/compute/LatencyConfig.cpp" "src/compute/CMakeFiles/sf_compute.dir/LatencyConfig.cpp.o" "gcc" "src/compute/CMakeFiles/sf_compute.dir/LatencyConfig.cpp.o.d"
  "/root/repo/src/compute/Simplify.cpp" "src/compute/CMakeFiles/sf_compute.dir/Simplify.cpp.o" "gcc" "src/compute/CMakeFiles/sf_compute.dir/Simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/sf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
