# Empty dependencies file for sf_compute.
# This may be replaced when dependencies are built.
