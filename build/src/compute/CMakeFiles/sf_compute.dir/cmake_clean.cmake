file(REMOVE_RECURSE
  "CMakeFiles/sf_compute.dir/Bytecode.cpp.o"
  "CMakeFiles/sf_compute.dir/Bytecode.cpp.o.d"
  "CMakeFiles/sf_compute.dir/Kernel.cpp.o"
  "CMakeFiles/sf_compute.dir/Kernel.cpp.o.d"
  "CMakeFiles/sf_compute.dir/LatencyConfig.cpp.o"
  "CMakeFiles/sf_compute.dir/LatencyConfig.cpp.o.d"
  "CMakeFiles/sf_compute.dir/Simplify.cpp.o"
  "CMakeFiles/sf_compute.dir/Simplify.cpp.o.d"
  "libsf_compute.a"
  "libsf_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
