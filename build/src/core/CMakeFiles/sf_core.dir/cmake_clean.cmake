file(REMOVE_RECURSE
  "CMakeFiles/sf_core.dir/BufferAnalysis.cpp.o"
  "CMakeFiles/sf_core.dir/BufferAnalysis.cpp.o.d"
  "CMakeFiles/sf_core.dir/CompiledProgram.cpp.o"
  "CMakeFiles/sf_core.dir/CompiledProgram.cpp.o.d"
  "CMakeFiles/sf_core.dir/DataflowAnalysis.cpp.o"
  "CMakeFiles/sf_core.dir/DataflowAnalysis.cpp.o.d"
  "CMakeFiles/sf_core.dir/Partitioner.cpp.o"
  "CMakeFiles/sf_core.dir/Partitioner.cpp.o.d"
  "CMakeFiles/sf_core.dir/ResourceModel.cpp.o"
  "CMakeFiles/sf_core.dir/ResourceModel.cpp.o.d"
  "CMakeFiles/sf_core.dir/RuntimeModel.cpp.o"
  "CMakeFiles/sf_core.dir/RuntimeModel.cpp.o.d"
  "CMakeFiles/sf_core.dir/ValidRegion.cpp.o"
  "CMakeFiles/sf_core.dir/ValidRegion.cpp.o.d"
  "libsf_core.a"
  "libsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
