
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BufferAnalysis.cpp" "src/core/CMakeFiles/sf_core.dir/BufferAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/BufferAnalysis.cpp.o.d"
  "/root/repo/src/core/CompiledProgram.cpp" "src/core/CMakeFiles/sf_core.dir/CompiledProgram.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/CompiledProgram.cpp.o.d"
  "/root/repo/src/core/DataflowAnalysis.cpp" "src/core/CMakeFiles/sf_core.dir/DataflowAnalysis.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/DataflowAnalysis.cpp.o.d"
  "/root/repo/src/core/Partitioner.cpp" "src/core/CMakeFiles/sf_core.dir/Partitioner.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/Partitioner.cpp.o.d"
  "/root/repo/src/core/ResourceModel.cpp" "src/core/CMakeFiles/sf_core.dir/ResourceModel.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/ResourceModel.cpp.o.d"
  "/root/repo/src/core/RuntimeModel.cpp" "src/core/CMakeFiles/sf_core.dir/RuntimeModel.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/RuntimeModel.cpp.o.d"
  "/root/repo/src/core/ValidRegion.cpp" "src/core/CMakeFiles/sf_core.dir/ValidRegion.cpp.o" "gcc" "src/core/CMakeFiles/sf_core.dir/ValidRegion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compute/CMakeFiles/sf_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
