file(REMOVE_RECURSE
  "libsf_runtime.a"
)
