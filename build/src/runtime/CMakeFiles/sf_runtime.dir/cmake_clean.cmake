file(REMOVE_RECURSE
  "CMakeFiles/sf_runtime.dir/InputData.cpp.o"
  "CMakeFiles/sf_runtime.dir/InputData.cpp.o.d"
  "CMakeFiles/sf_runtime.dir/Iterate.cpp.o"
  "CMakeFiles/sf_runtime.dir/Iterate.cpp.o.d"
  "CMakeFiles/sf_runtime.dir/Pipeline.cpp.o"
  "CMakeFiles/sf_runtime.dir/Pipeline.cpp.o.d"
  "CMakeFiles/sf_runtime.dir/ReferenceExecutor.cpp.o"
  "CMakeFiles/sf_runtime.dir/ReferenceExecutor.cpp.o.d"
  "CMakeFiles/sf_runtime.dir/SpatialTiling.cpp.o"
  "CMakeFiles/sf_runtime.dir/SpatialTiling.cpp.o.d"
  "CMakeFiles/sf_runtime.dir/Validation.cpp.o"
  "CMakeFiles/sf_runtime.dir/Validation.cpp.o.d"
  "libsf_runtime.a"
  "libsf_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
