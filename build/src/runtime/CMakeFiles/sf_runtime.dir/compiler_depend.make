# Empty compiler generated dependencies file for sf_runtime.
# This may be replaced when dependencies are built.
