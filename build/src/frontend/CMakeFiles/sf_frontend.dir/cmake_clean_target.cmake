file(REMOVE_RECURSE
  "libsf_frontend.a"
)
