# Empty compiler generated dependencies file for sf_frontend.
# This may be replaced when dependencies are built.
