file(REMOVE_RECURSE
  "CMakeFiles/sf_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/sf_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/sf_frontend.dir/Parser.cpp.o"
  "CMakeFiles/sf_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/sf_frontend.dir/ProgramLoader.cpp.o"
  "CMakeFiles/sf_frontend.dir/ProgramLoader.cpp.o.d"
  "CMakeFiles/sf_frontend.dir/SemanticAnalysis.cpp.o"
  "CMakeFiles/sf_frontend.dir/SemanticAnalysis.cpp.o.d"
  "libsf_frontend.a"
  "libsf_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
