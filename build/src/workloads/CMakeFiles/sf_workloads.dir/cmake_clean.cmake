file(REMOVE_RECURSE
  "CMakeFiles/sf_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/sf_workloads.dir/Workloads.cpp.o.d"
  "libsf_workloads.a"
  "libsf_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
