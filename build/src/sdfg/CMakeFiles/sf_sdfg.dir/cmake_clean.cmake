file(REMOVE_RECURSE
  "CMakeFiles/sf_sdfg.dir/Graph.cpp.o"
  "CMakeFiles/sf_sdfg.dir/Graph.cpp.o.d"
  "CMakeFiles/sf_sdfg.dir/Lowering.cpp.o"
  "CMakeFiles/sf_sdfg.dir/Lowering.cpp.o.d"
  "CMakeFiles/sf_sdfg.dir/StencilFusion.cpp.o"
  "CMakeFiles/sf_sdfg.dir/StencilFusion.cpp.o.d"
  "CMakeFiles/sf_sdfg.dir/Transforms.cpp.o"
  "CMakeFiles/sf_sdfg.dir/Transforms.cpp.o.d"
  "libsf_sdfg.a"
  "libsf_sdfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_sdfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
