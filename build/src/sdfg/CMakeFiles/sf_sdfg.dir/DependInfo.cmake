
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdfg/Graph.cpp" "src/sdfg/CMakeFiles/sf_sdfg.dir/Graph.cpp.o" "gcc" "src/sdfg/CMakeFiles/sf_sdfg.dir/Graph.cpp.o.d"
  "/root/repo/src/sdfg/Lowering.cpp" "src/sdfg/CMakeFiles/sf_sdfg.dir/Lowering.cpp.o" "gcc" "src/sdfg/CMakeFiles/sf_sdfg.dir/Lowering.cpp.o.d"
  "/root/repo/src/sdfg/StencilFusion.cpp" "src/sdfg/CMakeFiles/sf_sdfg.dir/StencilFusion.cpp.o" "gcc" "src/sdfg/CMakeFiles/sf_sdfg.dir/StencilFusion.cpp.o.d"
  "/root/repo/src/sdfg/Transforms.cpp" "src/sdfg/CMakeFiles/sf_sdfg.dir/Transforms.cpp.o" "gcc" "src/sdfg/CMakeFiles/sf_sdfg.dir/Transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sf_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/sf_compute.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
