# Empty dependencies file for sf_sdfg.
# This may be replaced when dependencies are built.
