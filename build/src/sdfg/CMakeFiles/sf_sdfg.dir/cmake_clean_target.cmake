file(REMOVE_RECURSE
  "libsf_sdfg.a"
)
