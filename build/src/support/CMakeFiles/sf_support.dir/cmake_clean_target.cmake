file(REMOVE_RECURSE
  "libsf_support.a"
)
