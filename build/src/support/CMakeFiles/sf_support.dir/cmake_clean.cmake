file(REMOVE_RECURSE
  "CMakeFiles/sf_support.dir/CommandLine.cpp.o"
  "CMakeFiles/sf_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/sf_support.dir/Json.cpp.o"
  "CMakeFiles/sf_support.dir/Json.cpp.o.d"
  "CMakeFiles/sf_support.dir/StringUtils.cpp.o"
  "CMakeFiles/sf_support.dir/StringUtils.cpp.o.d"
  "libsf_support.a"
  "libsf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
