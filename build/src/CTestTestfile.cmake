# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("frontend")
subdirs("compute")
subdirs("core")
subdirs("sdfg")
subdirs("codegen")
subdirs("sim")
subdirs("runtime")
subdirs("baselines")
subdirs("workloads")
