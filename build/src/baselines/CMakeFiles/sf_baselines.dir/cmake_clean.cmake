file(REMOVE_RECURSE
  "CMakeFiles/sf_baselines.dir/Comparators.cpp.o"
  "CMakeFiles/sf_baselines.dir/Comparators.cpp.o.d"
  "libsf_baselines.a"
  "libsf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
