file(REMOVE_RECURSE
  "CMakeFiles/sf_codegen.dir/OpenCLEmitter.cpp.o"
  "CMakeFiles/sf_codegen.dir/OpenCLEmitter.cpp.o.d"
  "libsf_codegen.a"
  "libsf_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
