# Empty compiler generated dependencies file for sf_ir.
# This may be replaced when dependencies are built.
