file(REMOVE_RECURSE
  "CMakeFiles/sf_ir.dir/Boundary.cpp.o"
  "CMakeFiles/sf_ir.dir/Boundary.cpp.o.d"
  "CMakeFiles/sf_ir.dir/DataType.cpp.o"
  "CMakeFiles/sf_ir.dir/DataType.cpp.o.d"
  "CMakeFiles/sf_ir.dir/Expr.cpp.o"
  "CMakeFiles/sf_ir.dir/Expr.cpp.o.d"
  "CMakeFiles/sf_ir.dir/Shape.cpp.o"
  "CMakeFiles/sf_ir.dir/Shape.cpp.o.d"
  "CMakeFiles/sf_ir.dir/StencilProgram.cpp.o"
  "CMakeFiles/sf_ir.dir/StencilProgram.cpp.o.d"
  "libsf_ir.a"
  "libsf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
