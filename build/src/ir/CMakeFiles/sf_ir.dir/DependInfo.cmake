
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Boundary.cpp" "src/ir/CMakeFiles/sf_ir.dir/Boundary.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/Boundary.cpp.o.d"
  "/root/repo/src/ir/DataType.cpp" "src/ir/CMakeFiles/sf_ir.dir/DataType.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/DataType.cpp.o.d"
  "/root/repo/src/ir/Expr.cpp" "src/ir/CMakeFiles/sf_ir.dir/Expr.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/Expr.cpp.o.d"
  "/root/repo/src/ir/Shape.cpp" "src/ir/CMakeFiles/sf_ir.dir/Shape.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/Shape.cpp.o.d"
  "/root/repo/src/ir/StencilProgram.cpp" "src/ir/CMakeFiles/sf_ir.dir/StencilProgram.cpp.o" "gcc" "src/ir/CMakeFiles/sf_ir.dir/StencilProgram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
