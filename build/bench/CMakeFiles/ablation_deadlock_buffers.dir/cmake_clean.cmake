file(REMOVE_RECURSE
  "CMakeFiles/ablation_deadlock_buffers.dir/ablation_deadlock_buffers.cpp.o"
  "CMakeFiles/ablation_deadlock_buffers.dir/ablation_deadlock_buffers.cpp.o.d"
  "ablation_deadlock_buffers"
  "ablation_deadlock_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadlock_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
