file(REMOVE_RECURSE
  "CMakeFiles/fig15_vectorized_scaling.dir/fig15_vectorized_scaling.cpp.o"
  "CMakeFiles/fig15_vectorized_scaling.dir/fig15_vectorized_scaling.cpp.o.d"
  "fig15_vectorized_scaling"
  "fig15_vectorized_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_vectorized_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
