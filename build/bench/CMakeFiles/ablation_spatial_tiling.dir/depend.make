# Empty dependencies file for ablation_spatial_tiling.
# This may be replaced when dependencies are built.
