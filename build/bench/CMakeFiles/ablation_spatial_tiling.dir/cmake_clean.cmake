file(REMOVE_RECURSE
  "CMakeFiles/ablation_spatial_tiling.dir/ablation_spatial_tiling.cpp.o"
  "CMakeFiles/ablation_spatial_tiling.dir/ablation_spatial_tiling.cpp.o.d"
  "ablation_spatial_tiling"
  "ablation_spatial_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_spatial_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
