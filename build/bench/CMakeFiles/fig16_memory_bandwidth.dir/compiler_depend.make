# Empty compiler generated dependencies file for fig16_memory_bandwidth.
# This may be replaced when dependencies are built.
