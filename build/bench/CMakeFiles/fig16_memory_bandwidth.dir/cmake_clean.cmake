file(REMOVE_RECURSE
  "CMakeFiles/fig16_memory_bandwidth.dir/fig16_memory_bandwidth.cpp.o"
  "CMakeFiles/fig16_memory_bandwidth.dir/fig16_memory_bandwidth.cpp.o.d"
  "fig16_memory_bandwidth"
  "fig16_memory_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_memory_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
