# Empty dependencies file for tab1_peak_kernels.
# This may be replaced when dependencies are built.
