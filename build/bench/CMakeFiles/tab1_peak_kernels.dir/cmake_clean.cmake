file(REMOVE_RECURSE
  "CMakeFiles/tab1_peak_kernels.dir/tab1_peak_kernels.cpp.o"
  "CMakeFiles/tab1_peak_kernels.dir/tab1_peak_kernels.cpp.o.d"
  "tab1_peak_kernels"
  "tab1_peak_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_peak_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
