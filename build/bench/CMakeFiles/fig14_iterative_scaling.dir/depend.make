# Empty dependencies file for fig14_iterative_scaling.
# This may be replaced when dependencies are built.
