file(REMOVE_RECURSE
  "CMakeFiles/fig14_iterative_scaling.dir/fig14_iterative_scaling.cpp.o"
  "CMakeFiles/fig14_iterative_scaling.dir/fig14_iterative_scaling.cpp.o.d"
  "fig14_iterative_scaling"
  "fig14_iterative_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_iterative_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
