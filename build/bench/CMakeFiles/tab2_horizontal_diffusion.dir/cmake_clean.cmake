file(REMOVE_RECURSE
  "CMakeFiles/tab2_horizontal_diffusion.dir/tab2_horizontal_diffusion.cpp.o"
  "CMakeFiles/tab2_horizontal_diffusion.dir/tab2_horizontal_diffusion.cpp.o.d"
  "tab2_horizontal_diffusion"
  "tab2_horizontal_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_horizontal_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
