# Empty compiler generated dependencies file for tab2_horizontal_diffusion.
# This may be replaced when dependencies are built.
