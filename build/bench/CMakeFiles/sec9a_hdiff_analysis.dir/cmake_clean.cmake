file(REMOVE_RECURSE
  "CMakeFiles/sec9a_hdiff_analysis.dir/sec9a_hdiff_analysis.cpp.o"
  "CMakeFiles/sec9a_hdiff_analysis.dir/sec9a_hdiff_analysis.cpp.o.d"
  "sec9a_hdiff_analysis"
  "sec9a_hdiff_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec9a_hdiff_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
