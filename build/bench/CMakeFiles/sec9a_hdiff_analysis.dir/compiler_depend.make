# Empty compiler generated dependencies file for sec9a_hdiff_analysis.
# This may be replaced when dependencies are built.
