
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/frontend_test.cpp" "tests/CMakeFiles/frontend_test.dir/frontend_test.cpp.o" "gcc" "tests/CMakeFiles/frontend_test.dir/frontend_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/sf_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sdfg/CMakeFiles/sf_sdfg.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/sf_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compute/CMakeFiles/sf_compute.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/sf_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/sf_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/sf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
