file(REMOVE_RECURSE
  "CMakeFiles/sdfg_test.dir/sdfg_test.cpp.o"
  "CMakeFiles/sdfg_test.dir/sdfg_test.cpp.o.d"
  "sdfg_test"
  "sdfg_test.pdb"
  "sdfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
