# Empty dependencies file for sdfg_test.
# This may be replaced when dependencies are built.
