# Empty compiler generated dependencies file for run_program.
# This may be replaced when dependencies are built.
