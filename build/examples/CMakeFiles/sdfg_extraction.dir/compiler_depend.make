# Empty compiler generated dependencies file for sdfg_extraction.
# This may be replaced when dependencies are built.
