file(REMOVE_RECURSE
  "CMakeFiles/sdfg_extraction.dir/sdfg_extraction.cpp.o"
  "CMakeFiles/sdfg_extraction.dir/sdfg_extraction.cpp.o.d"
  "sdfg_extraction"
  "sdfg_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdfg_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
