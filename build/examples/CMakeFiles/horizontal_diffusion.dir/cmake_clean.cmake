file(REMOVE_RECURSE
  "CMakeFiles/horizontal_diffusion.dir/horizontal_diffusion.cpp.o"
  "CMakeFiles/horizontal_diffusion.dir/horizontal_diffusion.cpp.o.d"
  "horizontal_diffusion"
  "horizontal_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizontal_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
