# Empty dependencies file for horizontal_diffusion.
# This may be replaced when dependencies are built.
