file(REMOVE_RECURSE
  "CMakeFiles/jacobi_multidevice.dir/jacobi_multidevice.cpp.o"
  "CMakeFiles/jacobi_multidevice.dir/jacobi_multidevice.cpp.o.d"
  "jacobi_multidevice"
  "jacobi_multidevice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi_multidevice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
