# Empty dependencies file for jacobi_multidevice.
# This may be replaced when dependencies are built.
